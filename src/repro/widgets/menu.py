"""Menu and menubutton widgets.

The second of the two widget types the paper (section 7) lists as
still to be implemented.  A menu is a window holding entries (command,
checkbutton, radiobutton, separator); it stays unmapped until *posted*.
A menubutton posts its associated menu when pressed.  Entry actions
are, as everywhere in Tk, Tcl commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..tcl.errors import TclError
from ..tcl.strings import _to_int
from ..tk.widget import OptionSpec, Widget
from ..x11 import events as ev
from .buttons import Button


@dataclass
class MenuEntry:
    """One entry of a menu."""

    type: str                       # command/checkbutton/radiobutton/separator
    options: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.options.get("label", "")


_ENTRY_OPTIONS = {"label", "command", "variable", "value", "onvalue",
                  "offvalue", "state"}


class Menu(Widget):
    widget_class = "Menu"
    option_specs = (
        OptionSpec("activebackground", "activeBackground", "Foreground",
                   "#eeeeee"),
        OptionSpec("background", "background", "Background", "#dddddd",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
                   synonyms=("bd",)),
        OptionSpec("font", "font", "Font", "fixed"),
        OptionSpec("foreground", "foreground", "Foreground", "black",
                   synonyms=("fg",)),
        OptionSpec("relief", "relief", "Relief", "raised"),
    )

    def __init__(self, app, path: str, argv):
        self.entries: List[MenuEntry] = []
        self.active_index: Optional[int] = None
        self.posted = False
        super().__init__(app, path, argv)
        self.window.add_event_handler(
            ev.BUTTON_RELEASE_MASK | ev.POINTER_MOTION_MASK,
            self._on_event)

    # -- widget commands ----------------------------------------------------

    def cmd_add(self, args: List[str]) -> str:
        """add type ?-label x -command c ...?"""
        if not args:
            raise TclError(
                'wrong # args: should be "%s add type ?options?"'
                % self.path)
        entry_type = args[0]
        if entry_type not in ("command", "checkbutton", "radiobutton",
                              "separator"):
            raise TclError(
                'bad menu entry type "%s": must be command, checkbutton, '
                'radiobutton, or separator' % entry_type)
        entry = MenuEntry(entry_type)
        entry.options.update(self._parse_entry_options(args[1:]))
        self.entries.append(entry)
        self.update_geometry()
        self.schedule_redraw()
        return ""

    def _parse_entry_options(self, args: List[str]) -> dict:
        if len(args) % 2 != 0:
            raise TclError('value for "%s" missing' % args[-1])
        options = {}
        for position in range(0, len(args), 2):
            switch = args[position]
            if not switch.startswith("-") or \
                    switch[1:] not in _ENTRY_OPTIONS:
                raise TclError('unknown menu entry option "%s"' % switch)
            options[switch[1:]] = args[position + 1]
        return options

    def cmd_entryconfigure(self, args: List[str]) -> str:
        if len(args) < 1:
            raise TclError(
                'wrong # args: should be "%s entryconfigure index '
                '?options?"' % self.path)
        entry = self._entry(args[0])
        entry.options.update(self._parse_entry_options(args[1:]))
        self.schedule_redraw()
        return ""

    def cmd_delete(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s delete index"'
                           % self.path)
        index = self._entry_index(args[0])
        del self.entries[index]
        self.update_geometry()
        self.schedule_redraw()
        return ""

    def cmd_index(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s index string"'
                           % self.path)
        return str(self._entry_index(args[0]))

    def cmd_invoke(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s invoke index"'
                           % self.path)
        return self.invoke(self._entry_index(args[0]))

    def cmd_activate(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s activate index"'
                           % self.path)
        self.active_index = self._entry_index(args[0])
        self.schedule_redraw()
        return ""

    def cmd_post(self, args: List[str]) -> str:
        """post x y — display the menu at root coordinates x, y."""
        if len(args) != 2:
            raise TclError('wrong # args: should be "%s post x y"'
                           % self.path)
        self.post(_to_int(args[0]), _to_int(args[1]))
        return ""

    def cmd_unpost(self, args: List[str]) -> str:
        self.unpost()
        return ""

    def cmd_size(self, args: List[str]) -> str:
        return str(len(self.entries))

    # -- entry lookup --------------------------------------------------------

    def _entry_index(self, text: str) -> int:
        if text == "last":
            index = len(self.entries) - 1
        elif text == "active":
            if self.active_index is None:
                raise TclError("no active menu entry")
            index = self.active_index
        else:
            for position, entry in enumerate(self.entries):
                if entry.label == text:
                    return position
            index = _to_int(text)
        if not 0 <= index < len(self.entries):
            raise TclError('bad menu entry index "%s"' % text)
        return index

    def _entry(self, text: str) -> MenuEntry:
        return self.entries[self._entry_index(text)]

    # -- posting and invoking --------------------------------------------

    def post(self, x: int, y: int) -> None:
        parent_x, parent_y = (0, 0)
        if self.window.parent is not None:
            parent_x, parent_y = self.window.parent.root_position()
        self.window.move_resize(x - parent_x, y - parent_y,
                                self.window.requested_width,
                                self.window.requested_height)
        self.posted = True
        self.window.map()
        self.schedule_redraw()

    def unpost(self) -> None:
        self.posted = False
        self.active_index = None
        self.window.unmap()

    def invoke(self, index: int) -> str:
        entry = self.entries[index]
        interp = self.app.interp
        if entry.type == "separator" or \
                entry.options.get("state") == "disabled":
            return ""
        if entry.type == "checkbutton":
            variable = entry.options.get("variable", entry.label)
            onvalue = entry.options.get("onvalue", "1")
            offvalue = entry.options.get("offvalue", "0")
            current = interp.get_global_var(variable) \
                if interp.var_exists(variable) else offvalue
            interp.set_global_var(
                variable, offvalue if current == onvalue else onvalue)
        elif entry.type == "radiobutton":
            variable = entry.options.get("variable", "selectedButton")
            interp.set_global_var(variable,
                                  entry.options.get("value", entry.label))
        command = entry.options.get("command", "")
        result = ""
        if command:
            result = interp.eval_global(command)
        self.schedule_redraw()
        return result

    # -- behaviour -------------------------------------------------------

    def _on_event(self, event) -> None:
        if not self.posted:
            return
        index = self._entry_at(event.y)
        if event.type == ev.MOTION_NOTIFY:
            if index != self.active_index:
                self.active_index = index
                self.schedule_redraw()
        elif event.type == ev.BUTTON_RELEASE:
            self.unpost()
            if index is not None:
                self.invoke(index)

    def _entry_at(self, y: int) -> Optional[int]:
        font = self.font()
        index = y // max(1, font.line_height + 2)
        if 0 <= index < len(self.entries):
            return index
        return None

    # -- geometry ----------------------------------------------------------

    def preferred_size(self) -> Tuple[int, int]:
        font = self.font()
        width = max([font.text_width(entry.label)
                     for entry in self.entries] or [20]) + 24
        height = max(1, len(self.entries)) * (font.line_height + 2) + 4
        return (width, height)

    # -- drawing ----------------------------------------------------------

    def draw(self) -> None:
        display = self.app.display
        font = self.font()
        gc = self.app.cache.gc(foreground=self.color("foreground"),
                               font=font.name)
        active_gc = self.app.cache.gc(
            foreground=self.color("activebackground"))
        for position, entry in enumerate(self.entries):
            y = 2 + position * (font.line_height + 2)
            if position == self.active_index:
                display.fill_rectangle(self.window.id, active_gc, 1, y,
                                       self.window.width - 2,
                                       font.line_height)
            if entry.type == "separator":
                display.draw_line(self.window.id, gc, 2,
                                  y + font.line_height // 2,
                                  self.window.width - 2,
                                  y + font.line_height // 2)
            else:
                marker = ""
                if entry.type in ("checkbutton", "radiobutton"):
                    marker = "* " if self._entry_selected(entry) else "  "
                display.draw_string(self.window.id, gc, 12, y,
                                    marker + entry.label)
        self.draw_border()

    def _entry_selected(self, entry: MenuEntry) -> bool:
        interp = self.app.interp
        variable = entry.options.get("variable",
                                     entry.label if entry.type ==
                                     "checkbutton" else "selectedButton")
        if not interp.var_exists(variable):
            return False
        current = interp.get_global_var(variable)
        if entry.type == "checkbutton":
            return current == entry.options.get("onvalue", "1")
        return current == entry.options.get("value", entry.label)

    def map_unposted(self) -> None:  # pragma: no cover - test helper
        self.window.map()


class Menubutton(Button):
    """A button that posts an associated menu when pressed."""

    widget_class = "Menubutton"
    option_specs = Button.option_specs + (
        OptionSpec("menu", "menu", "Menu", ""),
    )

    def _on_event(self, event) -> None:
        if self.options["state"] == "disabled":
            return
        if event.type == ev.BUTTON_PRESS and event.button == 1:
            self._post_menu()
        else:
            super()._on_event(event)

    def invoke(self) -> None:
        self._post_menu()

    def _post_menu(self) -> None:
        menu_path = self.options["menu"]
        if not menu_path:
            return
        menu_window = self.app.window(menu_path)
        menu = menu_window.widget
        if menu is None:
            raise TclError('"%s" is not a menu' % menu_path)
        root_x, root_y = self.window.root_position()
        menu.post(root_x, root_y + self.window.height)
