"""wish — the windowing shell (paper section 5).

wish consists of Tcl, Tk, and a main program that reads Tcl commands
from standard input or from a file.  Entire windowing applications can
be written as wish scripts, just as UNIX commands can be written as
scripts for sh or csh; the paper's Figure 9 directory browser is a
21-line wish script.

A :class:`Wish` can be embedded (tests create several on one simulated
server) or run from the command line via :func:`main`.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from ..tcl.errors import TclError
from ..tcl.lists import format_list
from ..tk.app import TkApp
from ..x11.xserver import XServer
from .procs import ProcessRegistry


class Wish:
    """One windowing-shell application."""

    def __init__(self, server: Optional[XServer] = None,
                 name: str = "wish", stdout=None,
                 registry: Optional[ProcessRegistry] = None,
                 argv: Optional[List[str]] = None,
                 cache_enabled: bool = True,
                 compile_enabled: bool = True,
                 buffering_enabled: bool = True,
                 bytecode_enabled: bool = True):
        self.server = server if server is not None else XServer()
        from ..tcl.interp import Interp
        interp = Interp(compile_enabled=compile_enabled,
                        bytecode_enabled=bytecode_enabled)
        self.app = TkApp(self.server, name=name, interp=interp,
                         cache_enabled=cache_enabled,
                         buffering_enabled=buffering_enabled)
        self.interp = self.app.interp
        self.interp.stdout = stdout if stdout is not None else sys.stdout
        self.registry = registry if registry is not None \
            else ProcessRegistry()
        self.interp.exec_handler = self.registry
        self._set_argv(argv or [])
        self._load_library()

    def _load_library(self) -> None:
        """Source wish's Tcl support library (mkdialog and friends)."""
        import os
        library = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "library.tcl")
        with open(library, "r") as handle:
            self.interp.eval(handle.read())

    def _set_argv(self, argv: List[str]) -> None:
        self.interp.set_global_var("argc", str(len(argv)))
        self.interp.set_global_var("argv", format_list(argv))

    # -- running scripts ---------------------------------------------------

    def run_script(self, script: str) -> str:
        """Evaluate a whole script, then process pending events."""
        result = self.interp.eval_top(script)
        self.app.update()
        return result

    def run_file(self, filename: str) -> str:
        with open(filename, "r") as handle:
            return self.run_script(handle.read())

    def mainloop(self, until=None, max_iterations: int = 1000000) -> None:
        self.app.mainloop(until, max_iterations)

    @property
    def destroyed(self) -> bool:
        return self.app.destroyed


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point:
    ``wish ?-f script? ?-name name? ?--no-bytecode? ?--trace?
    ?--metrics-out file? ?--journal file?
    ?--replay file ?--replay-mode mode?? ?args?``.

    ``--no-bytecode`` runs the interpreter with the bytecode VM
    disabled (the tree-walking ablation), and is recorded in the
    journal header so replays rebuild the same configuration.

    ``--trace`` starts the span tracer (wire mode) before the script
    runs and prints the span tree to stderr on exit; ``--metrics-out
    FILE`` writes the full observability dump (metrics + trace +
    profile) as JSON when the shell exits.  ``--journal FILE`` records
    the whole session (inputs, requests, batches, round trips, faults,
    sends) to FILE as it runs; ``--replay FILE`` re-runs a recorded
    session against a fresh shell and reports wire divergence
    (``--replay-mode`` selects an ablation mode; exit status 1 on
    divergence).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    script_file = None
    name = "wish"
    trace = False
    metrics_out = None
    journal_out = None
    replay_file = None
    replay_modes: List[str] = []
    bytecode_enabled = True
    while argv:
        if argv[0] == "-f" and len(argv) > 1:
            script_file = argv[1]
            argv = argv[2:]
        elif argv[0] == "--no-bytecode":
            bytecode_enabled = False
            argv = argv[1:]
        elif argv[0] == "-name" and len(argv) > 1:
            name = argv[1]
            argv = argv[2:]
        elif argv[0] == "--trace":
            trace = True
            argv = argv[1:]
        elif argv[0] == "--metrics-out" and len(argv) > 1:
            metrics_out = argv[1]
            argv = argv[2:]
        elif argv[0] == "--journal" and len(argv) > 1:
            journal_out = argv[1]
            argv = argv[2:]
        elif argv[0] == "--replay" and len(argv) > 1:
            replay_file = argv[1]
            argv = argv[2:]
        elif argv[0] == "--replay-mode" and len(argv) > 1:
            replay_modes.append(argv[1])
            argv = argv[2:]
        else:
            break
    if replay_file is not None:
        return _replay_main(replay_file, replay_modes or ["default"])

    server = None
    journal = None
    script_text = ""
    if journal_out is not None:
        # Attach the journal before the shell exists so the recording
        # covers application construction — the replay rebuilds the
        # shell the same way, against its own fresh server.
        from ..obs.replay import start_recording
        from ..x11.xserver import XServer as _XServer
        server = _XServer()
        if script_file is not None:
            with open(script_file, "r") as handle:
                script_text = handle.read()
        journal = start_recording(server, name=name, script=script_text,
                                  bytecode_enabled=bytecode_enabled,
                                  sink=journal_out)
    shell = Wish(server=server, name=name, argv=argv,
                 bytecode_enabled=bytecode_enabled)
    obs = shell.app.obs
    if trace or metrics_out is not None:
        obs.tracer.start(wire=trace)
    try:
        if script_file is not None:
            if script_text:
                shell.run_script(script_text)
            else:
                shell.run_file(script_file)
            shell.mainloop()
        else:
            _interactive(shell)
    except TclError as error:
        sys.stderr.write("Error: %s\n" % error.message)
        return 1
    finally:
        obs.tracer.stop()
        if journal is not None:
            shell.server.detach_journal()
            journal.close_sink()
        if trace:
            sys.stderr.write(obs.tracer.format_tree() + "\n")
        if metrics_out is not None:
            with open(metrics_out, "w") as handle:
                handle.write(obs.dump_json() + "\n")
    return 0


def _replay_main(path: str, modes: List[str]) -> int:
    """``wish --replay FILE``: re-run a journal, report divergence."""
    import io as _io
    from ..obs.journal import Journal
    from ..obs.replay import MODES, replay_journal

    journal = Journal.load(path)
    header = journal.meta or {}
    status = 0
    for mode in modes:
        if mode not in MODES:
            sys.stderr.write(
                'wish: unknown replay mode "%s" (choose from %s)\n'
                % (mode, ", ".join(sorted(MODES))))
            return 2
        flags = dict(header.get("flags") or {})
        flags.setdefault("cache_enabled", True)
        flags.setdefault("compile_enabled", True)
        flags.setdefault("buffering_enabled", True)
        flags.setdefault("bytecode_enabled", True)
        flags.update(MODES[mode]["flags"])

        def setup(server):
            shell = Wish(server=server,
                         name=header.get("name") or "wish",
                         stdout=_io.StringIO(), **flags)
            script = header.get("script") or ""
            if script:
                shell.run_script(script)
            else:
                shell.app.update()
            return shell.app

        result = replay_journal(journal, mode=mode, setup=setup)
        sys.stderr.write(result.report() + "\n")
        if not result.matched:
            status = 1
    return status


def _interactive(shell: Wish) -> None:
    """Read commands from standard input, one logical line at a time."""
    buffer = ""
    while not shell.destroyed:
        try:
            prompt = "% " if not buffer else "> "
            line = input(prompt)
        except EOFError:
            return
        buffer += line + "\n"
        if _script_complete(buffer):
            jrec = shell.server._jrec
            if jrec is not None:
                # Interactive input is session input: journal it so a
                # replay re-evaluates the same script at the same point.
                jrec.input("eval", (buffer, shell.app.name))
            try:
                result = shell.run_script(buffer)
                if result:
                    print(result)
            except TclError as error:
                print("Error: %s" % error.message)
            buffer = ""


def _script_complete(text: str) -> bool:
    """Heuristic: all braces/brackets/quotes are balanced."""
    depth = 0
    in_quote = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            i += 2
            continue
        if in_quote:
            if ch == '"':
                in_quote = False
        elif ch == '"':
            in_quote = True
        elif ch in "{[":
            depth += 1
        elif ch in "}]":
            depth -= 1
        i += 1
    return depth <= 0 and not in_quote


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
