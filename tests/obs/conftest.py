import io

import pytest

from repro.tk import TkApp
from repro.x11 import XServer


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def app(server):
    application = TkApp(server, name="obstest")
    application.interp.stdout = io.StringIO()
    yield application
    application.obs.tracer.stop()


def click(server, app, path, button=1):
    """Press and release a button inside a widget's window."""
    window = app.window(path)
    root_x, root_y = window.root_position()
    server.warp_pointer(root_x + 2, root_y + 2)
    server.press_button(button)
    server.release_button(button)
    app.update()
