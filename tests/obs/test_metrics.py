"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import metric_key


class TestCounters:
    def test_counter_starts_at_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("tcl.commands").value == 0

    def test_handles_are_shared(self):
        registry = MetricsRegistry()
        first = registry.counter("x11.requests", type="map_window")
        second = registry.counter("x11.requests", type="map_window")
        first.value += 3
        assert second is first
        assert second.value == 3

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("tk.cache.hits", kind="color").inc(2)
        registry.counter("tk.cache.hits", kind="font").inc(5)
        assert registry.value("tk.cache.hits", kind="color") == 2
        assert registry.value("tk.cache.hits", kind="font") == 5

    def test_total_sums_across_labels(self):
        registry = MetricsRegistry()
        registry.counter("x11.requests", type="a").inc(2)
        registry.counter("x11.requests", type="b").inc(3)
        registry.counter("x11.round_trips").inc(7)
        assert registry.total("x11.requests") == 5

    def test_value_of_absent_metric_is_zero(self):
        assert MetricsRegistry().value("no.such.metric") == 0

    def test_metric_key_format(self):
        assert metric_key("a.b", ()) == "a.b"
        assert metric_key("a.b", (("kind", "color"),)) == \
            "a.b{kind=color}"

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("send.rpcs")
        with pytest.raises(TypeError):
            registry.gauge("send.rpcs")
        with pytest.raises(TypeError):
            registry.histogram("send.rpcs")


class TestGauges:
    def test_gauge_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("tk.windows")
        gauge.set(12)
        gauge.set(9)
        assert registry.value("tk.windows") == 9


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("send.wait_ms", buckets=(1, 10))
        for value in (0, 1, 5, 11, 400):
            histogram.observe(value)
        assert histogram.value == 5            # observation count
        assert histogram.total == 417
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"<=1": 2, "<=10": 1, ">10": 2}

    def test_histogram_value_in_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("send.wait_ms").observe(3)
        snapshot = registry.snapshot()
        assert snapshot["send.wait_ms"]["count"] == 1


class TestComposition:
    def test_mount_reads_through(self):
        server_side = MetricsRegistry()
        app_side = MetricsRegistry()
        app_side.mount(server_side)
        # Metrics created on the mounted registry AFTER the mount are
        # visible too — the x11 per-type counters appear lazily.
        server_side.counter("x11.requests", type="create_window").inc(4)
        assert app_side.value("x11.requests", type="create_window") == 4
        assert "x11.requests{type=create_window}" in app_side.names()

    def test_own_metrics_shadow_mounted(self):
        inner = MetricsRegistry()
        outer = MetricsRegistry()
        outer.mount(inner)
        inner.counter("n").inc(1)
        outer.counter("n").inc(10)
        assert outer.value("n") == 10

    def test_absorb_keeps_existing_handles_live(self):
        component = MetricsRegistry()
        handle = component.counter("tcl.commands")
        handle.value += 2
        hub = MetricsRegistry()
        hub.absorb(component)
        handle.value += 3
        assert hub.value("tcl.commands") == 5
        assert hub.counter("tcl.commands") is handle

    def test_snapshot_merges_mounts(self):
        inner = MetricsRegistry()
        inner.counter("a").inc(1)
        outer = MetricsRegistry()
        outer.counter("b").inc(2)
        outer.mount(inner)
        assert outer.snapshot() == {"a": 1, "b": 2}


class TestOutput:
    def test_format_filters_by_pattern(self):
        registry = MetricsRegistry()
        registry.counter("tk.cache.hits", kind="color").inc(1)
        registry.counter("x11.round_trips").inc(2)
        text = registry.format("tk.*")
        assert "tk.cache.hits{kind=color}" in text
        assert "x11.round_trips" not in text

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("x11.round_trips").inc(3)
        assert json.loads(registry.to_json()) == {"x11.round_trips": 3}


class TestPercentiles:
    def _loaded(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram("t", (), buckets=(1, 10, 100))
        for value in [1] * 90 + [50] * 9 + [500]:
            histogram.observe(value)
        return histogram

    def test_bucket_upper_bound_estimates(self):
        histogram = self._loaded()
        assert histogram.percentile(0.50) == 1
        assert histogram.percentile(0.95) == 100
        assert histogram.percentile(0.99) == 100

    def test_overflow_reports_last_bound(self):
        histogram = self._loaded()
        # the p100 observation sits past every bucket; the estimate
        # saturates at the histogram's resolution
        assert histogram.percentile(1.0) == 100

    def test_empty_histogram_has_no_percentiles(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram("t", ())
        assert histogram.percentile(0.5) is None
        assert "p50" not in histogram.snapshot()

    def test_snapshot_carries_p50_p95_p99(self):
        snapshot = self._loaded().snapshot()
        assert snapshot["p50"] == 1
        assert snapshot["p95"] == 100
        assert snapshot["p99"] == 100

    def test_format_shows_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("send.wait_ms", buckets=(1, 10))
        for value in (1, 1, 5):
            histogram.observe(value)
        line = registry.format("send.wait_ms")
        assert "p50=1" in line and "p95=10" in line and "p99=10" in line

    def test_format_omits_percentiles_when_empty(self):
        registry = MetricsRegistry()
        registry.histogram("send.wait_ms")
        assert "p50" not in registry.format("send.wait_ms")
