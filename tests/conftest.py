"""Crash forensics for CI: journal every X server, dump on failure.

When ``REPRO_JOURNAL_DIR`` is set (the CI test jobs set it), every
:class:`~repro.x11.xserver.XServer` built by any test records its
session into a bounded in-memory journal ring.  If a test fails, the
rings of the servers it created are written to that directory as
``*.journal`` files and uploaded as build artifacts — so a red CI run
ships the exact wire history that produced it, replayable locally with
``python -m repro.obs.replay`` (script-driven sessions) or readable
with ``Journal.load(...).format()``.

When ``REPRO_FLIGHT_DIR`` is additionally set, a failing test also
writes one flight-recorder artifact per server it created — the last
virtual seconds of spans, wire entries, recorder samples, and the full
metrics snapshot (see
:meth:`repro.obs.core.Observability.flight_dump`) — next to the
journals, giving the red run its telemetry timeline, not just its
wire history.

Without the environment variables this module does nothing: local runs
pay no overhead and keep their exact hot-path behavior.
"""

import os
import re

import pytest

_JOURNAL_DIR = os.environ.get("REPRO_JOURNAL_DIR")

if _JOURNAL_DIR:
    from repro.obs.journal import Journal
    from repro.x11.xserver import XServer

    #: servers created by the currently running test
    _servers = []
    _original_init = XServer.__init__

    def _journaling_init(self, *args, **kwargs):
        _original_init(self, *args, **kwargs)
        journal = Journal(clock=lambda: self.time_ms, maxlen=4096)
        journal.set_header(name="pytest")
        self.attach_journal(journal)
        _servers.append(self)

    XServer.__init__ = _journaling_init

    @pytest.fixture(autouse=True)
    def _fresh_journal_capture():
        _servers.clear()
        yield

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_makereport(item, call):
        outcome = yield
        report = outcome.get_result()
        if report.when == "call" and report.failed and _servers:
            os.makedirs(_JOURNAL_DIR, exist_ok=True)
            stem = re.sub(r"[^A-Za-z0-9_.-]+", "-", item.nodeid)
            for index, server in enumerate(_servers):
                if server.journal is not None and len(server.journal):
                    path = os.path.join(_JOURNAL_DIR, "%s-%d.journal"
                                        % (stem, index))
                    server.journal.save(path)
                # Flight artifact next to the journal: autodump is a
                # no-op unless REPRO_FLIGHT_DIR is set, and never
                # raises — forensics must not mask the test failure.
                server.obs.flight_autodump("test-%s-%d" % (stem, index))
