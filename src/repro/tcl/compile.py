"""Compile-once evaluation structures for the Tcl core.

The paper's performance argument (section 2, Table II) rests on Tcl
values being immutable strings: the parse result of a script can be
cached and re-evaluated cheaply.  The seed interpreter cached only the
raw parse and still re-dispatched on fragment types, re-joined literal
pieces, and re-looked-up the command procedure on every evaluation.
This module goes one step further, in the spirit of Tcl 8.0's
bytecode compiler: a script is compiled *once* into structures that
pre-resolve everything that cannot change between evaluations.

* Words made only of literal fragments are pre-joined into plain
  strings at compile time.
* Commands whose words are all literal carry a precomputed ``argv``;
  evaluating them is a list copy plus a command invocation.
* Words that do need substitution become :class:`CompiledWord` plans
  whose steps are plain strings (adjacent literals merged), variable
  reads (:class:`_VarStep`), or nested compiled scripts
  (:class:`_CmdStep`) — no per-evaluation ``isinstance`` dispatch over
  parser fragments.
* The command procedure named by a literal first word is memoized on
  the compiled command, guarded by the interpreter's
  ``commands_epoch`` so that ``proc`` redefinition, ``rename``, and
  command deletion invalidate it immediately.

Compiled objects hold no variable values and no call-frame state, so a
:class:`CompiledScript` is safely re-entrant: the same compiled proc
body can be executing at several stack depths at once.
"""

from __future__ import annotations

from typing import List, Optional, Union

from . import parser
from .errors import TclError


class _VarStep:
    """A ``$name`` / ``$name(index)`` plan step."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: Optional[object]):
        self.name = name
        #: None, a literal index string, or a CompiledWord plan.
        self.index = index

    def resolve(self, interp) -> str:
        index = self.index
        if index is not None and type(index) is not str:
            index = index.substitute(interp)
        return interp.get_var(self.name, index)


class _CmdStep:
    """A ``[script]`` plan step; the inner script compiles on first use
    and stays attached to the step (it never touches the interpreter's
    bounded cache)."""

    __slots__ = ("script", "compiled")

    def __init__(self, script: str):
        self.script = script
        self.compiled: Optional[CompiledScript] = None

    def resolve(self, interp) -> str:
        compiled = self.compiled
        if compiled is None:
            compiled = self.compiled = compile_script(self.script)
        return interp.eval(compiled)


class CompiledWord:
    """Substitution plan for one word that mixes literal and dynamic
    fragments."""

    __slots__ = ("steps",)

    def __init__(self, steps: tuple):
        self.steps = steps

    def substitute(self, interp) -> str:
        pieces: List[str] = []
        for step in self.steps:
            if type(step) is str:
                pieces.append(step)
            else:
                pieces.append(step.resolve(interp))
        return "".join(pieces)


class CompiledCommand:
    """One compiled command: plans per word, plus fast paths.

    ``argv`` is the precomputed word list when every word is a pure
    literal (the overwhelmingly common case: ``set a 1``, ``incr i``).

    ``_cmd_state`` memoizes the resolved command procedure as
    ``(interp, epoch, proc)``; it is only consulted while the
    interpreter's command table is unchanged (same epoch) and only ever
    populated when the first word is literal, so ``rename``, ``proc``
    redefinition, and command deletion take effect immediately.

    ``_fast`` is an optional *argument specialization*: a command
    procedure may carry a ``specialize`` attribute — a function taking
    a literal argv and returning either None or a closure
    ``fast(interp) -> str`` with the arguments pre-parsed (``set``
    pre-splits its variable name, ``incr`` pre-parses its increment).
    The closure is memoized under the same epoch guard as the command
    procedure itself.
    """

    __slots__ = ("source", "words", "argv", "_cmd_state", "_fast")

    def __init__(self, source: str, words: List[Union[str, CompiledWord]]):
        self.source = source
        self.words = words
        all_literal = all(type(word) is str for word in words)
        self.argv: Optional[List[str]] = list(words) if all_literal else None
        self._cmd_state = None
        self._fast = None

    def execute(self, interp) -> str:
        if interp._trace_on:
            tracer = interp._tracer
            argv = self.argv
            widget = None
            if argv is not None:
                if argv[0].startswith("."):
                    widget = argv[0]
                elif len(argv) > 1 and argv[1].startswith("."):
                    widget = argv[1]
                name = argv[0]
            else:
                word = self.words[0]
                name = word if type(word) is str else \
                    (self.source.split() or ["?"])[0]
            span = tracer.begin("cmd", name, widget)
            try:
                return self._execute(interp)
            finally:
                tracer.finish(span)
        return self._execute(interp)

    def _execute(self, interp) -> str:
        state = self._cmd_state
        if state is not None and state[1] == interp.commands_epoch and \
                state[0] is interp:
            fast = self._fast
            if fast is not None:
                interp._m_commands.value += 1
                try:
                    return fast(interp)
                except TclError as error:
                    _append_error_info(error, self.source)
                    raise
                except interp.native_error_types as error:
                    converted = TclError(str(error))
                    _append_error_info(converted, self.source)
                    raise converted from error
            proc = state[2]
        else:
            proc = None
        argv = self.argv
        if argv is not None:
            # Copy so a command procedure that mutates its argv cannot
            # corrupt later evaluations of the cached command.
            argv = argv[:]
        else:
            argv = [word if type(word) is str else word.substitute(interp)
                    for word in self.words]
        if proc is None:
            proc = interp.commands.get(argv[0])
            if proc is None:
                # Missing command: fall back to the interpreter's
                # ``unknown`` handling.  Never memoized, so a handler
                # that defines the command is picked up next time.
                return interp._invoke(argv, self.source)
            if type(self.words[0]) is str:
                fast = None
                if self.argv is not None:
                    special = getattr(proc, "specialize", None)
                    if special is not None:
                        fast = special(list(self.argv))
                self._fast = fast
                self._cmd_state = (interp, interp.commands_epoch, proc)
        interp._m_commands.value += 1
        try:
            result = proc(interp, argv)
        except TclError as error:
            _append_error_info(error, self.source)
            raise
        except interp.native_error_types as error:
            converted = TclError(str(error))
            _append_error_info(converted, self.source)
            raise converted from error
        return result if result is not None else ""


class CompiledScript:
    """A script compiled to a sequence of :class:`CompiledCommand`.

    ``single`` names the only command of a one-command script (the
    normal shape for widget ``-command`` strings and simple
    benchmarks), letting the interpreter skip the command loop.
    """

    __slots__ = ("source", "commands", "single", "vm_code")

    def __init__(self, source: str, commands: List[CompiledCommand]):
        self.source = source
        self.commands = commands
        self.single: Optional[CompiledCommand] = \
            commands[0] if len(commands) == 1 else None
        #: Bytecode form, built lazily by the VM on first execution.
        self.vm_code = None

    def execute(self, interp) -> str:
        result = ""
        for command in self.commands:
            result = command.execute(interp)
        return result


def compile_word(word: parser.Word) -> Union[str, CompiledWord]:
    """Compile one parsed word into a string or a substitution plan."""
    parts = word.parts
    if all(type(part) is parser.Literal for part in parts):
        if len(parts) == 1:
            return parts[0].text
        return "".join(part.text for part in parts)
    steps: List[object] = []
    buffered: List[str] = []
    for part in parts:
        if type(part) is parser.Literal:
            buffered.append(part.text)
            continue
        if buffered:
            steps.append("".join(buffered))
            del buffered[:]
        if type(part) is parser.VarSub:
            index = None
            if part.index is not None:
                index = compile_word(part.index)
            steps.append(_VarStep(part.name, index))
        else:
            steps.append(_CmdStep(part.script))
    if buffered:
        steps.append("".join(buffered))
    return CompiledWord(tuple(steps))


def compile_command(command: parser.Command) -> CompiledCommand:
    return CompiledCommand(command.source,
                           [compile_word(word) for word in command.words])


def compile_script(script: str) -> CompiledScript:
    """Compile a script string into a :class:`CompiledScript`."""
    return CompiledScript(
        script, [compile_command(command)
                 for command in parser.parse_script(script)])


def _append_error_info(error: TclError, source: str) -> None:
    """Accumulate a human-readable trace as the error propagates.

    Identical to the interpreter's own accumulation so compiled and
    interpreted evaluation produce the same ``errorInfo``.
    """
    info = getattr(error, "info", None)
    if info is None:
        error.info = [error.message]
        info = error.info
    if len(info) >= 40:
        return
    shown = source if len(source) <= 150 else source[:147] + "..."
    info.append('    while executing\n"%s"' % shown)
