"""Tests for entry, scale, message, frame, and menu widgets."""

import pytest

from repro.tcl import TclError
from repro.x11 import events as ev


class TestEntry:
    def test_insert_and_get(self, app, packed):
        packed("entry .e", ".e")
        app.interp.eval(".e insert 0 hello")
        assert app.interp.eval(".e get") == "hello"

    def test_insert_at_position(self, app, packed):
        packed("entry .e", ".e")
        app.interp.eval(".e insert 0 held")
        app.interp.eval(".e insert 3 lo-wor")
        assert app.interp.eval(".e get") == "hello-word"

    def test_delete(self, app, packed):
        packed("entry .e", ".e")
        app.interp.eval(".e insert 0 abcdef")
        app.interp.eval(".e delete 1 3")
        assert app.interp.eval(".e get") == "aef"

    def test_typing_with_focus(self, app, packed, server):
        packed("entry .e", ".e")
        app.interp.eval("focus .e")
        for key in "tcl":
            server.press_key(key, window_id=app.main.id)
        app.update()
        assert app.interp.eval(".e get") == "tcl"

    def test_backspace(self, app, packed, server):
        packed("entry .e", ".e")
        app.interp.eval("focus .e")
        for key in ["a", "b", "BackSpace"]:
            server.press_key(key, window_id=app.main.id)
        app.update()
        assert app.interp.eval(".e get") == "a"

    def test_cursor_movement(self, app, packed, server):
        packed("entry .e", ".e")
        app.interp.eval("focus .e")
        for key in ["a", "c", "Left", "b"]:
            server.press_key(key, window_id=app.main.id)
        app.update()
        assert app.interp.eval(".e get") == "abc"

    def test_icursor_and_index(self, app, packed):
        packed("entry .e", ".e")
        app.interp.eval(".e insert 0 abcdef")
        app.interp.eval(".e icursor 2")
        assert app.interp.eval(".e index insert") == "2"

    def test_backspace_over_word_binding(self, app, packed, server):
        """Section 5's example: implement Control-w entirely in Tcl —
        the widget itself is not modified."""
        packed("entry .e", ".e")
        app.interp.eval("focus .e")
        app.interp.eval("""
            proc backWord {w} {
                set text [$w get]
                set trimmed [string trimright $text]
                set cut [string last " " $trimmed]
                if {$cut < 0} {set cut 0}
                $w delete $cut [expr [string length $text]-1]
                $w icursor end
            }
        """)
        app.interp.eval("bind .e <Control-w> {backWord %W}")
        app.interp.eval('.e insert 0 "several words here"')
        server.press_key("w", state=ev.CONTROL_MASK,
                         window_id=app.main.id)
        app.update()
        assert app.interp.eval(".e get") == "several words"

    def test_control_chars_not_inserted(self, app, packed, server):
        packed("entry .e", ".e")
        app.interp.eval("focus .e")
        server.press_key("x", state=ev.CONTROL_MASK,
                         window_id=app.main.id)
        app.update()
        assert app.interp.eval(".e get") == ""


class TestScale:
    def test_set_and_get(self, app, packed):
        packed("scale .s -from 0 -to 100", ".s")
        app.interp.eval(".s set 42")
        assert app.interp.eval(".s get") == "42"

    def test_value_clamped_to_range(self, app, packed):
        packed("scale .s -from 10 -to 20", ".s")
        app.interp.eval(".s set 99")
        assert app.interp.eval(".s get") == "20"
        app.interp.eval(".s set 1")
        assert app.interp.eval(".s get") == "10"

    def test_click_sets_value_and_runs_command(self, app, packed,
                                               server):
        packed("scale .s -from 0 -to 100 -length 100 "
               "-command {set picked}", ".s")
        window = app.window(".s")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 50, root_y + window.height - 5)
        server.press_button(1)
        app.update()
        assert app.interp.eval("set picked") == "50"
        assert app.interp.eval(".s get") == "50"

    def test_set_does_not_run_command(self, app, packed):
        packed("scale .s -command {set picked}", ".s")
        app.interp.eval(".s set 10")
        assert app.interp.eval("info exists picked") == "0"


class TestMessage:
    def test_wraps_to_width(self, app, packed):
        window = packed(
            'message .m -width 60 -text "some words that need wrapping '
            'to fit"', ".m")
        lines = window.widget.wrapped_lines()
        assert len(lines) > 1
        font = app.cache.font("fixed")
        assert all(font.text_width(line) <= 60 for line in lines)

    def test_respects_newlines(self, app, packed):
        window = packed('message .m -text "one\\ntwo"', ".m")
        assert window.widget.wrapped_lines() == ["one", "two"]

    def test_aspect_controls_shape(self, app, packed):
        long_text = " ".join(["word"] * 30)
        wide = packed('message .wide -aspect 400 -text "%s"' % long_text,
                      ".wide")
        tall = packed('message .tall -aspect 50 -text "%s"' % long_text,
                      ".tall")
        wide_ratio = wide.requested_width / wide.requested_height
        tall_ratio = tall.requested_width / tall.requested_height
        assert wide_ratio > tall_ratio

    def test_empty_message(self, app, packed):
        window = packed("message .m -text {}", ".m")
        assert window.requested_width >= 1


class TestFrame:
    def test_explicit_geometry(self, app, packed):
        window = packed("frame .f -geometry 123x45", ".f")
        assert (window.width, window.height) == (123, 45)

    def test_bad_geometry_is_error(self, app):
        with pytest.raises(TclError, match="bad geometry"):
            app.interp.eval("frame .f -geometry wide")

    def test_frame_is_container(self, app, packed):
        packed("frame .f -geometry 100x100", ".f")
        app.interp.eval("button .f.inner -text x")
        app.interp.eval("pack append .f .f.inner {top}")
        app.update()
        assert app.interp.eval("winfo ismapped .f.inner") == "1"


class TestMenu:
    def make_menu(self, app):
        app.interp.eval("menu .m")
        app.interp.eval('.m add command -label Open -command {set did open}')
        app.interp.eval('.m add command -label Save -command {set did save}')
        app.interp.eval(".m add separator")
        app.interp.eval('.m add checkbutton -label Wrap -variable wrap')
        app.interp.eval('.m add radiobutton -label Left -variable side '
                        '-value left')

    def test_add_and_size(self, app):
        self.make_menu(app)
        assert app.interp.eval(".m size") == "5"

    def test_invoke_by_index(self, app):
        self.make_menu(app)
        app.interp.eval(".m invoke 0")
        assert app.interp.eval("set did") == "open"

    def test_invoke_by_label(self, app):
        self.make_menu(app)
        app.interp.eval(".m invoke Save")
        assert app.interp.eval("set did") == "save"

    def test_checkbutton_entry_toggles(self, app):
        self.make_menu(app)
        app.interp.eval(".m invoke Wrap")
        assert app.interp.eval("set wrap") == "1"
        app.interp.eval(".m invoke Wrap")
        assert app.interp.eval("set wrap") == "0"

    def test_radiobutton_entry_sets_value(self, app):
        self.make_menu(app)
        app.interp.eval(".m invoke Left")
        assert app.interp.eval("set side") == "left"

    def test_separator_invoke_is_noop(self, app):
        self.make_menu(app)
        app.interp.eval(".m invoke 2")  # no error

    def test_post_maps_menu(self, app):
        self.make_menu(app)
        app.interp.eval(".m post 50 60")
        assert app.window(".m").mapped
        app.interp.eval(".m unpost")
        assert not app.window(".m").mapped

    def test_menubutton_posts_menu(self, app, packed, server):
        self.make_menu(app)
        packed("menubutton .mb -text File -menu .m", ".mb")
        window = app.window(".mb")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 2, root_y + 2)
        server.press_button(1)
        app.update()
        assert app.window(".m").mapped

    def test_release_over_entry_invokes(self, app, packed, server):
        self.make_menu(app)
        app.interp.eval(".m post 10 10")
        app.update()
        menu = app.window(".m")
        font = app.cache.font("fixed")
        root_x, root_y = menu.root_position()
        server.warp_pointer(root_x + 5,
                            root_y + font.line_height + 4)
        server.release_button(1)
        app.update()
        assert app.interp.eval("set did") == "save"
        assert not menu.mapped

    def test_entryconfigure(self, app):
        self.make_menu(app)
        app.interp.eval(".m entryconfigure 0 -command {set did changed}")
        app.interp.eval(".m invoke 0")
        assert app.interp.eval("set did") == "changed"

    def test_delete_entry(self, app):
        self.make_menu(app)
        app.interp.eval(".m delete 0")
        assert app.interp.eval(".m size") == "4"
        assert app.interp.eval(".m index Save") == "0"

    def test_bad_entry_type_is_error(self, app):
        app.interp.eval("menu .m")
        with pytest.raises(TclError, match="bad menu entry type"):
            app.interp.eval(".m add pizza")


class TestTextvariable:
    def test_label_follows_variable(self, app, packed):
        app.interp.eval("set status idle")
        window = packed("label .l -textvariable status", ".l")
        assert window.widget.display_text() == "idle"
        app.interp.eval("set status busy")
        assert window.widget.display_text() == "busy"
        assert window.widget._redraw_pending

    def test_label_variable_created_with_text_default(self, app, packed):
        packed("label .l -textvariable fresh -text start", ".l")
        assert app.interp.eval("set fresh") == "start"

    def test_label_size_tracks_variable(self, app, packed):
        app.interp.eval("set msg short")
        window = packed("label .l -textvariable msg", ".l")
        before = window.requested_width
        app.interp.eval("set msg {a much longer message now}")
        app.update()
        assert window.requested_width > before

    def test_entry_writes_variable(self, app, packed, server):
        packed("entry .e -textvariable typed", ".e")
        app.interp.eval("focus .e")
        for key in "hi":
            server.press_key(key, window_id=app.main.id)
        app.update()
        assert app.interp.eval("set typed") == "hi"

    def test_entry_reads_variable(self, app, packed):
        packed("entry .e -textvariable field", ".e")
        app.interp.eval("set field preset")
        assert app.interp.eval(".e get") == "preset"

    def test_entry_adopts_existing_value(self, app, packed):
        app.interp.eval("set field existing")
        packed("entry .e -textvariable field", ".e")
        assert app.interp.eval(".e get") == "existing"

    def test_two_widgets_share_variable(self, app, packed, server):
        """A label mirrors an entry with no glue code at all."""
        packed("entry .e -textvariable shared", ".e")
        packed("label .l -textvariable shared", ".l")
        app.interp.eval("focus .e")
        server.press_key("x", window_id=app.main.id)
        app.update()
        assert app.window(".l").widget.display_text() == "x"

    def test_trace_removed_on_destroy(self, app, packed):
        packed("entry .e -textvariable gone", ".e")
        app.interp.eval("destroy .e")
        app.interp.eval("set gone later")   # must not error
