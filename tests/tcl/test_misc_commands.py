"""Gap-filling tests for less-travelled built-in command paths."""

import io

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def interp():
    return Interp(stdout=io.StringIO())


class TestCaseCommand:
    def test_single_list_form(self, interp):
        interp.eval("proc kind {x} {case $x {"
                    "  {[0-9]*} {return number}"
                    "  {[a-z]*} {return word}"
                    "  default  {return other}"
                    "}}")
        assert interp.eval("kind 42") == "number"
        assert interp.eval("kind hello") == "word"
        assert interp.eval("kind %%") == "other"

    def test_multiple_patterns_per_body(self, interp):
        result = interp.eval('case b in {a b} {format matched} '
                             'default {format no}')
        assert result == "matched"

    def test_in_keyword_optional(self, interp):
        assert interp.eval("case x x {format hit}") == "hit"

    def test_no_match_no_default(self, interp):
        assert interp.eval("case zzz a {format hit}") == ""


class TestInfoEdges:
    def test_info_level_zero(self, interp):
        assert interp.eval("info level") == "0"

    def test_info_level_in_proc(self, interp):
        interp.eval("proc outer {} {inner}")
        interp.eval("proc inner {} {global depth\n"
                    "set depth [info level]}")
        interp.eval("outer")
        assert interp.eval("set depth") == "2"

    def test_info_level_n_returns_invocation(self, interp):
        interp.eval("proc probe {a b} {info level 1}")
        assert interp.eval("probe x y") == "probe x y"

    def test_info_commands_pattern(self, interp):
        names = interp.eval("info commands l*")
        assert "lindex" in names
        assert "set" not in names

    def test_info_vars_includes_links(self, interp):
        interp.eval("set g 1")
        interp.eval("proc peek {} {global g\ninfo vars}")
        assert "g" in interp.eval("peek")

    def test_tclversion(self, interp):
        assert interp.eval("info tclversion") == "6.1"


class TestUplevelEdges:
    def test_numeric_level(self, interp):
        interp.eval("proc level2 {} {uplevel 2 {set made-at-top 1}}")
        interp.eval("proc level1 {} {level2}")
        interp.eval("level1")
        assert interp.eval("set made-at-top") == "1"

    def test_uplevel_concatenates_args(self, interp):
        interp.eval("proc setter {} {uplevel set joined value}")
        interp.eval("setter")
        assert interp.eval("set joined") == "value"

    def test_bad_level(self, interp):
        interp.eval("proc f {} {uplevel 5 {set x 1}}")
        with pytest.raises(TclError, match="bad level"):
            interp.eval("f")


class TestOutputChannels:
    def test_print_to_open_file(self, interp, tmp_path):
        target = tmp_path / "out"
        interp.eval("set f [open %s w]" % target)
        interp.eval('print "direct text" $f')
        interp.eval("close $f")
        assert target.read_text() == "direct text"

    def test_puts_stderr_goes_to_stdout_stream(self, interp):
        interp.eval("puts stderr warning")
        assert "warning" in interp.stdout.getvalue()

    def test_flush_stdout_is_safe(self, interp):
        interp.eval("flush stdout")


class TestRenameEdges:
    def test_rename_to_empty_deletes(self, interp):
        interp.eval("proc temp {} {}")
        interp.eval("rename temp {}")
        with pytest.raises(TclError, match="invalid command"):
            interp.eval("temp")

    def test_rename_missing_command(self, interp):
        with pytest.raises(TclError, match="can't rename"):
            interp.eval("rename nosuch other")

    def test_rename_over_existing_fails(self, interp):
        with pytest.raises(TclError, match="already exists"):
            interp.eval("rename set format")

    def test_builtin_wrappable(self, interp):
        """The classic trick: wrap a builtin by renaming it."""
        interp.eval("rename expr original-expr")
        interp.eval("proc expr args {global count\n"
                    "incr count\n"
                    "eval original-expr $args}")
        interp.eval("set count 0")
        assert interp.eval("expr 1+1") == "2"
        assert interp.eval("set count") >= "1"


class TestErrorCommandExtras:
    def test_error_with_info_seeds_error_info(self, interp):
        try:
            interp.eval_top("error msg {custom trace}")
        except TclError:
            pass
        assert "custom trace" in interp.get_global_var("errorInfo")

    def test_error_code_stored(self, interp):
        try:
            interp.eval("error msg {} {POSIX ENOENT}")
        except TclError:
            pass
        assert interp.get_global_var("errorCode") == "POSIX ENOENT"
