"""The observability hub: one metrics registry + one tracer per scope.

Every component that wants instrumentation owns (or is handed) an
:class:`Observability` hub.  A standalone :class:`~repro.x11.XServer`
or :class:`~repro.tcl.Interp` creates its own; a Tk application builds
a unified hub on the server's virtual clock, mounts the server's
registry (the server may be shared between applications, so ``x11.*``
metrics are deliberately server-wide) and rebinds its interpreter into
it, so one ``obs dump`` covers the whole stack.
"""

from __future__ import annotations

import json
import os
import re
from typing import Callable, Optional

from .metrics import MetricsRegistry
from .profile import Profile
from .timeseries import TimeSeriesRecorder
from .trace import Tracer

#: Environment variable naming a directory for automatic flight dumps.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Default trailing window of a flight dump, in virtual milliseconds.
FLIGHT_WINDOW_MS = 10_000


class Observability:
    """A metrics registry and a tracer sharing one virtual clock."""

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        if clock is None:
            # Standalone components (a bare Interp in tests) have no
            # server clock; spans then have zero duration but keep
            # their structure and request attribution.
            clock = lambda: 0
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock)
        # Ring evictions are telemetry loss; count them where every
        # other metric of this scope lives.
        self.tracer.bind_metrics(self.metrics)
        #: the XServer this hub observes, when there is one — set by
        #: TkApp/XServer so ``obs journal`` and remote introspection
        #: can reach the session journal.
        self.server = None
        #: the time-series flight recorder, created on first
        #: :meth:`start_recorder`
        self.recorder: Optional[TimeSeriesRecorder] = None
        #: directory for automatic flight dumps; falls back to the
        #: REPRO_FLIGHT_DIR environment variable when None
        self.flight_dir: Optional[str] = None
        self._flight_seq = 0

    def profile(self) -> Profile:
        return Profile(self.tracer.spans)

    # -- flight recorder -----------------------------------------------

    def start_recorder(self, cadence_ms: Optional[int] = None,
                       ring: Optional[int] = None) -> TimeSeriesRecorder:
        """Start (or reconfigure and restart) the time-series recorder.

        The recorder is sampled from the observed server's tick hot
        paths, so it only advances with virtual time.
        """
        recorder = self.recorder
        if recorder is None:
            kwargs = {}
            if cadence_ms is not None:
                kwargs["cadence_ms"] = cadence_ms
            if ring is not None:
                kwargs["ring"] = ring
            recorder = self.recorder = TimeSeriesRecorder(
                self.clock, self.metrics, **kwargs)
        else:
            recorder.configure(cadence_ms, ring)
        recorder.start()
        server = self.server
        if server is not None:
            server._recorder = recorder
        return recorder

    def stop_recorder(self) -> None:
        """Stop sampling; recorded series stay readable."""
        if self.recorder is not None:
            self.recorder.stop()
        server = self.server
        if server is not None:
            server._recorder = None

    # -- flight dumps --------------------------------------------------

    def flight_dump(self, window_ms: int = FLIGHT_WINDOW_MS,
                    reason: str = "manual") -> dict:
        """The last ``window_ms`` of telemetry as one self-contained
        artifact: spans, wire log, recorder samples, and a full
        metrics snapshot, all in virtual time."""
        now = self.clock()
        horizon = now - window_ms
        tracer = self.tracer
        data = {
            "kind": "flight",
            "reason": reason,
            "virtual_ms": now,
            "window_ms": window_ms,
            "metrics": self.metrics.snapshot(),
            "spans": [span.to_dict() for span in tracer.spans
                      if span.end >= horizon],
            "wire": [{"tick": tick, "request": name, "widget": widget}
                     for tick, name, widget in tracer.wire_log
                     if tick >= horizon],
        }
        if self.recorder is not None:
            data["samples"] = self.recorder.window(window_ms, now)
            data["recorder"] = {
                "cadence_ms": self.recorder.cadence_ms,
                "samples": self.recorder.samples_taken,
                "evicted": self.recorder.evicted,
            }
        journal = self.journal()
        if journal is not None:
            data["journal"] = {"entries": len(journal),
                               "dropped": journal.dropped,
                               "recording": journal.recording}
        return data

    def save_flight(self, path: str,
                    window_ms: int = FLIGHT_WINDOW_MS,
                    reason: str = "manual") -> str:
        """Write a flight dump to ``path`` as JSON; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.flight_dump(window_ms, reason), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def flight_autodump(self, reason: str,
                        window_ms: int = FLIGHT_WINDOW_MS
                        ) -> Optional[str]:
        """Save a flight artifact if a dump directory is configured.

        The failure-path hook (bgerror, invariant-oracle violation, SLO
        breach): a no-op returning None unless :attr:`flight_dir` or
        ``REPRO_FLIGHT_DIR`` names a directory.  Never raises — a
        forensics dump must not mask the failure being dumped.
        """
        directory = self.flight_dir or os.environ.get(FLIGHT_DIR_ENV)
        if not directory:
            return None
        try:
            os.makedirs(directory, exist_ok=True)
            slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", reason)[:60] or "dump"
            self._flight_seq += 1
            path = os.path.join(
                directory, "flight-%s-%d-%d.json"
                % (slug, self.clock(), self._flight_seq))
            return self.save_flight(path, window_ms, reason)
        except OSError:
            return None

    def journal(self):
        """The attached session journal, or None."""
        server = self.server
        return server.journal if server is not None else None

    def dump(self) -> dict:
        """Everything — metrics, trace, profile — as one dict.

        A ``journal`` summary rides along only when a journal is
        attached, so journal-less dumps keep their historical shape.
        """
        data = {
            "metrics": self.metrics.snapshot(),
            "trace": self.tracer.to_dict(),
            "profile": self.profile().to_dict(),
        }
        journal = self.journal()
        if journal is not None:
            data["journal"] = {
                "entries": len(journal),
                "dropped": journal.dropped,
                "recording": journal.recording,
                "counts": journal.counts(),
            }
        if self.recorder is not None:
            data["recorder"] = self.recorder.to_dict()
        return data

    def dump_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.dump(), indent=indent, sort_keys=True)


__all__ = ["Observability"]
