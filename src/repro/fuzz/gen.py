"""Seeded scenario generation for the adversarial session fuzzer.

A :class:`Scenario` is a complete, self-contained session description:
a step list (each step is exactly one journal *input* — see
:data:`repro.obs.journal.INPUT_KINDS`), the setup script, the ablation
flags, an optional serialized fault plan, and the name of any armed
planted bug.  Because steps are journal inputs, the journal a run
records *is* the scenario's durable form: a checked-in regression
artifact needs no side files, and ``python -m repro.fuzz --repro``
rebuilds the scenario straight from a journal's header and inputs.

The generator (:func:`generate_scenario`) draws everything from one
``random.Random(seed)``: widget trees across every widget class,
random bindings and ``-command`` scripts (including scripts that
``destroy`` their own widget or an ancestor mid-dispatch), selection
ownership, multi-interpreter ``send`` traffic (sync and ``-async``),
timers, raw device input, event-loop pumps, clock advances, extra
applications on the shared server, ablation-flag choices, and a
randomized :class:`~repro.x11.faults.FaultPlan` spec layered over
roughly half of all sessions.  The same seed always yields the same
scenario, so a fuzzing campaign is reproducible from its seed list
alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..widgets import WIDGET_TYPES

#: Setup script evaluated in every application (main and extra): a
#: ``bgerror`` that counts instead of printing, plus the counters the
#: generated scripts increment.
SETUP_SCRIPT = (
    "set errs 0\n"
    "set hits 0\n"
    "proc bgerror msg {global errs; incr errs}\n")

#: Every widget class the toolkit registers; menus are created but not
#: packed (they are not children of the packer in real Tk either).
ALL_CLASSES: Tuple[str, ...] = tuple(sorted(WIDGET_TYPES))

#: Classes that take a ``-text`` option in this toolkit.
TEXT_CLASSES = frozenset((
    "label", "button", "checkbutton", "radiobutton", "message",
    "menubutton"))

#: Classes whose instances accept ``-command`` scripts.
COMMAND_CLASSES = frozenset(("button", "checkbutton", "radiobutton"))

#: Event sequences the generated bindings use.
BIND_SEQUENCES = ("<ButtonPress-1>", "<ButtonRelease-1>", "<Enter>",
                  "<Leave>", "<Key>", "<Double-Button-1>", "<Destroy>")

#: Keysyms for generated key input.
KEYSYMS = ("a", "b", "x", "space", "Return", "Escape")

#: Most applications one scenario connects to the shared server.
MAX_APPS = 3

#: Default number of steps per generated scenario.
DEFAULT_LENGTH = 40


class Scenario:
    """One fuzz session: seeded steps plus the journal-header config."""

    def __init__(self, seed: int, steps: List[Tuple[str, list]],
                 setup_script: str = SETUP_SCRIPT,
                 flags: Optional[dict] = None,
                 fault_spec: Optional[dict] = None,
                 planted: Optional[str] = None,
                 name: str = "fuzz"):
        self.seed = seed
        self.steps = [(kind, list(args)) for kind, args in steps]
        self.setup_script = setup_script
        self.flags = dict(flags or {})
        self.fault_spec = fault_spec
        self.planted = planted
        self.name = name

    def with_steps(self, steps: List[Tuple[str, list]]) -> "Scenario":
        """The same session configuration over a different step list
        (the shrinker's candidate constructor)."""
        return Scenario(self.seed, steps, self.setup_script, self.flags,
                        self.fault_spec, self.planted, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Scenario seed=%d steps=%d faults=%s planted=%s>" % (
            self.seed, len(self.steps),
            "yes" if self.fault_spec else "no", self.planted)


def _fault_spec(rng: random.Random) -> Optional[dict]:
    """A randomized FaultPlan spec for roughly half of all sessions.

    Rates are kept low and ``max_faults`` bounded so faulted sessions
    stay mostly alive — a server that kills every client in ten
    requests exercises nothing.
    """
    if rng.random() < 0.5:
        return None
    spec: dict = {"seed": rng.randrange(1 << 16)}
    # Spare application startup (~25 requests): an injected error
    # inside TkApp construction is fatal — legitimate, but a session
    # that dies before its first step exercises nothing.
    spec["warmup"] = rng.randrange(30, 80)
    if rng.random() < 0.6:
        spec["error_rate"] = rng.choice((0.002, 0.005, 0.02))
    if rng.random() < 0.3:
        spec["drop_rate"] = rng.choice((0.002, 0.01))
    if rng.random() < 0.3:
        spec["delay_rate"] = rng.choice((0.005, 0.02))
        spec["delay_ms"] = rng.choice((5, 25, 60))
    if rng.random() < 0.15:
        spec["disconnect_rate"] = 0.0005
    if rng.random() < 0.35:
        triggers = []
        for _ in range(rng.randrange(1, 3)):
            if rng.random() < 0.6:
                triggers.append({
                    "kind": "error",
                    "error": rng.choice(("BadWindow", "BadAtom",
                                         "BadProperty")),
                    "after": rng.randrange(40, 400),
                    "count": rng.randrange(1, 3)})
            else:
                triggers.append({
                    "kind": "disconnect",
                    "client": rng.randrange(1, MAX_APPS + 1),
                    "after": rng.randrange(50, 600),
                    "count": 1})
        spec["request_triggers"] = triggers
    spec["max_faults"] = rng.randrange(2, 10)
    return spec


def _flags(rng: random.Random) -> dict:
    flags = {}
    if rng.random() < 0.2:
        flags["cache_enabled"] = False
    if rng.random() < 0.2:
        flags["compile_enabled"] = False
    if rng.random() < 0.1:
        flags["buffering_enabled"] = False
    if rng.random() < 0.2:
        flags["bytecode_enabled"] = False
    return flags


class _Generator:
    """Stateful step generation: tracks the widget paths and apps it
    has created so later steps can reference (and destroy) them."""

    def __init__(self, rng: random.Random, name: str):
        self.rng = rng
        self.name = name
        #: app name -> every widget path ever created there (paths may
        #: be dead by the time a later step references them — a
        #: TclError from a stale path is a legitimate outcome)
        self.paths = {name: []}
        self.counter = 0
        self.clock = 0
        self.steps: List[Tuple[str, list]] = []

    def app(self) -> str:
        return self.rng.choice(sorted(self.paths))

    def other_app(self, not_name: str) -> Optional[str]:
        candidates = [name for name in sorted(self.paths)
                      if name != not_name]
        return self.rng.choice(candidates) if candidates else None

    def path(self, app: str) -> Optional[str]:
        paths = self.paths.get(app)
        return self.rng.choice(paths) if paths else None

    def script(self, app: str, percent: bool = False,
               depth: int = 0) -> str:
        """One binding/-command/after/send payload."""
        rng = self.rng
        choices = ["incr hits", "incr hits", "set last fuzz",
                   "error {fuzz boom}"]
        target = self.path(app)
        if target is not None:
            choices.append("destroy %s" % target)
            choices.append("catch {%s configure -text {zap}}" % target)
        if percent:
            choices.append("set last %W")
            choices.append("destroy %W")
        if depth < 1:
            peer = self.other_app(app)
            if peer is not None:
                inner = self.script(peer, percent=False, depth=depth + 1)
                choices.append("send -async {%s} {%s}" % (peer, inner))
                if rng.random() < 0.5:
                    choices.append("send {%s} {%s}" % (peer, inner))
            inner = self.script(app, percent=False, depth=depth + 1)
            choices.append("after %d {%s}"
                           % (rng.randrange(5, 80), inner))
        return rng.choice(choices)

    # -- step makers ----------------------------------------------------

    def make_widget(self) -> None:
        rng = self.rng
        app = self.app()
        cls = rng.choice(ALL_CLASSES)
        parent = ""
        if self.paths[app] and rng.random() < 0.3:
            parent = rng.choice(self.paths[app])
        self.counter += 1
        path = "%s.w%d" % (parent, self.counter)
        lines = []
        options = ""
        if cls in TEXT_CLASSES:
            options += " -text {fz %d}" % self.counter
        if cls in COMMAND_CLASSES and rng.random() < 0.7:
            options += " -command {%s}" % self.script(app)
        lines.append("%s %s%s" % (cls, path, options))
        if cls == "listbox":
            lines.append("%s insert end alpha beta gamma" % path)
        if cls != "menu":
            lines.append("pack append %s %s {top}"
                         % (parent or ".", path))
        self.paths[app].append(path)
        self.steps.append(("eval", ["\n".join(lines), app]))

    def make_bind(self) -> None:
        app = self.app()
        path = self.path(app)
        if path is None:
            return self.make_widget()
        sequence = self.rng.choice(BIND_SEQUENCES)
        script = self.script(app, percent=True)
        self.steps.append(("eval", [
            "bind %s %s {%s}" % (path, sequence, script), app]))

    def make_action(self) -> None:
        rng = self.rng
        app = self.app()
        path = self.path(app)
        choices = []
        if path is not None:
            choices.extend([
                "catch {%s configure -text {poke %d}}"
                % (path, rng.randrange(100)),
                "focus %s" % path,
                "winfo exists %s" % path,
            ])
        peer = self.other_app(app)
        if peer is not None:
            inner = self.script(peer, depth=1)
            choices.append("send -async {%s} {%s}" % (peer, inner))
            choices.append("send {%s} {%s}" % (peer, inner))
            choices.append("winfo interps")
        choices.append("after %d {%s}"
                       % (rng.randrange(5, 120), self.script(app, depth=1)))
        choices.append("error {fuzz boom}")
        self.steps.append(("eval", [rng.choice(choices), app]))

    def make_selection(self) -> None:
        app = self.app()
        path = self.path(app)
        if path is None:
            return self.make_widget()
        pick = self.rng.random()
        if pick < 0.35:
            self.steps.append(("eval", [
                "selection handle %s {concat fuzzdata}" % path, app]))
        elif pick < 0.85:
            # Owning without a handler claims nothing server-side, so
            # pair them — that is how real clients export data anyway.
            self.steps.append(("eval", [
                "selection handle %s {concat fuzzdata}\n"
                "selection own %s" % (path, path), app]))
        else:
            self.steps.append(("eval", [
                "catch {selection get}", app]))

    def make_destroy(self) -> None:
        app = self.app()
        if self.rng.random() < 0.06:
            self.steps.append(("eval", ["destroy .", app]))
            return
        path = self.path(app)
        if path is None:
            return self.make_widget()
        self.steps.append(("eval", ["destroy %s" % path, app]))

    def make_input(self) -> None:
        rng = self.rng
        pick = rng.random()
        if pick < 0.4:
            self.steps.append(("warp_pointer",
                               [rng.randrange(0, 420),
                                rng.randrange(0, 360), 0]))
        elif pick < 0.7:
            button = rng.choice((1, 2, 3))
            self.steps.append(("press_button", [button, 0]))
            self.steps.append(("release_button", [button, 0]))
        else:
            key = rng.choice(KEYSYMS)
            self.steps.append(("press_key", [key, 0, None]))
            self.steps.append(("release_key", [key, 0, None]))

    def make_update(self) -> None:
        self.steps.append(("update", [self.app()]))

    def make_advance(self) -> None:
        self.clock += self.rng.randrange(40, 600)
        self.steps.append(("advance", [self.clock, self.app()]))

    def make_new_app(self) -> None:
        if len(self.paths) >= MAX_APPS:
            return self.make_widget()
        name = "fz%d" % len(self.paths)
        self.paths[name] = []
        self.steps.append(("new_app", [name, SETUP_SCRIPT]))


#: (maker name, weight) — the step mix of one generated session.
_STEP_MIX = (
    ("make_widget", 22),
    ("make_bind", 10),
    ("make_input", 16),
    ("make_update", 12),
    ("make_advance", 6),
    ("make_action", 14),
    ("make_selection", 6),
    ("make_destroy", 8),
    ("make_new_app", 4),
)


def generate_scenario(seed: int, length: int = DEFAULT_LENGTH,
                      name: str = "fuzz",
                      planted: Optional[str] = None) -> Scenario:
    """The scenario for ``seed``: same seed, same scenario, always."""
    rng = random.Random(seed)
    fault_spec = _fault_spec(rng)
    flags = _flags(rng)
    generator = _Generator(rng, name)
    makers = [maker for maker, weight in _STEP_MIX for _ in range(weight)]
    # Always open with a widget so early input steps land on something.
    generator.make_widget()
    while len(generator.steps) < length:
        getattr(generator, rng.choice(makers))()
    # A closing pump lets pending timers/sends settle on the record.
    generator.steps.append(("update", [name]))
    return Scenario(seed, generator.steps[:length + 1],
                    setup_script=SETUP_SCRIPT, flags=flags,
                    fault_spec=fault_spec, planted=planted, name=name)


__all__ = ["Scenario", "generate_scenario", "SETUP_SCRIPT",
           "ALL_CLASSES", "BIND_SEQUENCES", "MAX_APPS", "DEFAULT_LENGTH"]
