"""Resource caches (paper section 3.3).

Allocating X resources such as pixel values or fonts is expensive
because it requires inter-process communication with the X server.  The
cache is indexed by *textual descriptions* (``MediumSeaGreen``,
``coffee_mug``, ``@star``) rather than binary values, which makes it
easy to name resources in Tcl commands and in the option database; the
reverse mapping (id -> name) lets widgets report their configuration in
human-readable form.

Only the first request for a given name costs a server round trip;
later requests share the existing resource.  ``enabled=False`` turns
the cache off for the ablation benchmark.

Effectiveness is recorded per resource type in the metrics registry:
``tk.cache.hits{kind=color|font|cursor|bitmap|gc}`` and matching
``tk.cache.misses``.  A *miss* is a successful allocation the cache
could not serve; a request whose allocation fails (unknown color name,
bad font) raises :class:`CacheError` and counts as
``tk.cache.errors{kind=...}``, not as a miss — a failed lookup says
nothing about cache effectiveness.  The legacy ``hits``/``misses``
integers are read-only sums across kinds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..obs import MetricsRegistry
from ..x11.display import Display
from ..x11.resources import Bitmap, Color, Cursor, Font, GraphicsContext
from ..x11.xserver import XProtocolError

#: Resource kinds the cache tracks, in reporting order.
KINDS = ("color", "font", "cursor", "bitmap", "gc")


class ResourceCache:
    """Client-side cache of colors, fonts, cursors, bitmaps, and GCs."""

    def __init__(self, display: Display, enabled: bool = True,
                 metrics: Optional[MetricsRegistry] = None):
        self.display = display
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_hits = {kind: self.metrics.counter("tk.cache.hits",
                                                   kind=kind)
                        for kind in KINDS}
        self._m_misses = {kind: self.metrics.counter("tk.cache.misses",
                                                     kind=kind)
                          for kind in KINDS}
        self._m_errors = {kind: self.metrics.counter("tk.cache.errors",
                                                     kind=kind)
                          for kind in KINDS}
        self._colors: Dict[str, Color] = {}
        self._fonts: Dict[str, Font] = {}
        self._cursors: Dict[str, Cursor] = {}
        self._bitmaps: Dict[str, Bitmap] = {}
        self._gcs: Dict[Tuple, GraphicsContext] = {}
        self._names: Dict[int, str] = {}

    # -- colors ----------------------------------------------------------

    def color(self, name: str) -> Color:
        """Resolve a textual color name to an allocated color."""
        if self.enabled:
            cached = self._colors.get(name)
            if cached is not None:
                self._m_hits["color"].value += 1
                return cached
        try:
            color = self.display.alloc_named_color(name)
        except XProtocolError:
            self._m_errors["color"].value += 1
            raise CacheError('unknown color name "%s"' % name)
        self._m_misses["color"].value += 1
        if self.enabled:
            self._colors[name] = color
        self._names[color.pixel] = name
        return color

    def pixel(self, name: str) -> int:
        return self.color(name).pixel

    # -- fonts -------------------------------------------------------------

    def font(self, name: str) -> Font:
        if self.enabled:
            cached = self._fonts.get(name)
            if cached is not None:
                self._m_hits["font"].value += 1
                return cached
        try:
            font = self.display.load_font(name)
        except XProtocolError:
            self._m_errors["font"].value += 1
            raise CacheError('font "%s" doesn\'t exist' % name)
        self._m_misses["font"].value += 1
        if self.enabled:
            self._fonts[name] = font
        self._names[font.fid] = name
        return font

    # -- cursors -------------------------------------------------------------

    def cursor(self, name: str) -> Cursor:
        if self.enabled:
            cached = self._cursors.get(name)
            if cached is not None:
                self._m_hits["cursor"].value += 1
                return cached
        try:
            cursor = self.display.create_cursor(name)
        except XProtocolError:
            self._m_errors["cursor"].value += 1
            raise CacheError('bad cursor spec "%s"' % name)
        self._m_misses["cursor"].value += 1
        if self.enabled:
            self._cursors[name] = cursor
        self._names[cursor.cid] = name
        return cursor

    # -- bitmaps -----------------------------------------------------------

    def bitmap(self, name: str) -> Bitmap:
        """Resolve a bitmap: a built-in name or ``@filename``."""
        if self.enabled:
            cached = self._bitmaps.get(name)
            if cached is not None:
                self._m_hits["bitmap"].value += 1
                return cached
        if name.startswith("@"):
            try:
                width, height = _read_bitmap_file(name[1:])
            except CacheError:
                self._m_errors["bitmap"].value += 1
                raise
            bitmap = self.display.create_bitmap(name, width, height)
        else:
            try:
                bitmap = self.display.create_bitmap(name)
            except XProtocolError:
                self._m_errors["bitmap"].value += 1
                raise CacheError('bitmap "%s" not defined' % name)
        self._m_misses["bitmap"].value += 1
        if self.enabled:
            self._bitmaps[name] = bitmap
        self._names[bitmap.bid] = name
        return bitmap

    # -- graphics contexts ---------------------------------------------------

    def gc(self, **values) -> GraphicsContext:
        """Share graphics contexts with identical values."""
        key = tuple(sorted(values.items()))
        if self.enabled:
            cached = self._gcs.get(key)
            if cached is not None:
                self._m_hits["gc"].value += 1
                return cached
        gc = self.display.create_gc(**values)
        self._m_misses["gc"].value += 1
        if self.enabled:
            self._gcs[key] = gc
        return gc

    # -- reverse lookup ------------------------------------------------------

    def name_of(self, resource_id: int) -> Optional[str]:
        """The textual name a resource was allocated under, if any."""
        return self._names.get(resource_id)

    # -- statistics ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(counter.value for counter in self._m_hits.values())

    @property
    def misses(self) -> int:
        return sum(counter.value for counter in self._m_misses.values())

    @property
    def errors(self) -> int:
        return sum(counter.value for counter in self._m_errors.values())

    def stats(self) -> Tuple[int, int]:
        return (self.hits, self.misses)

    def stats_by_kind(self) -> Dict[str, Tuple[int, int, int]]:
        """``{kind: (hits, misses, errors)}`` for every resource kind."""
        return {kind: (self._m_hits[kind].value,
                       self._m_misses[kind].value,
                       self._m_errors[kind].value)
                for kind in KINDS}


class CacheError(Exception):
    """A textual resource description could not be resolved."""


def _read_bitmap_file(filename: str) -> Tuple[int, int]:
    """Parse the width/height out of an X11 bitmap (.xbm) file."""
    try:
        with open(filename, "r") as handle:
            text = handle.read()
    except OSError:
        raise CacheError(
            'error reading bitmap file "%s"' % filename)
    width = height = 0
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("#define") and line.split():
            fields = line.split()
            if len(fields) >= 3 and fields[1].endswith("_width"):
                width = int(fields[2])
            elif len(fields) >= 3 and fields[1].endswith("_height"):
                height = int(fields[2])
    if width <= 0 or height <= 0:
        raise CacheError('file "%s" isn\'t a valid bitmap' % filename)
    return width, height
