"""The placer — a second geometry manager.

Section 3.4's design point is that widgets never position themselves,
so any number of geometry managers can exist and "widgets can be used
with a variety of geometry managers".  The placer proves the point: it
pins windows at fixed or fractional positions inside their parent::

    place .x -x 10 -y 20                    ;# absolute pixels
    place .y -relx 0.5 -rely 0.5            ;# fractions of the parent
    place .z -x 10 -relwidth 1.0 -height 30 ;# mix of both

It coexists with the packer: different children of one parent may use
different managers, and a window claimed by one manager is released by
the other (Tk's one-manager-per-window rule, enforced by
:func:`repro.tk.geometry.claim`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..tcl.errors import TclError
from . import geometry


@dataclass
class PlaceInfo:
    """The placement of one window."""

    x: int = 0
    y: int = 0
    relx: Optional[float] = None
    rely: Optional[float] = None
    width: Optional[int] = None
    height: Optional[int] = None
    relwidth: Optional[float] = None
    relheight: Optional[float] = None
    anchor: str = "nw"


_ANCHORS = {
    "nw": (0.0, 0.0), "n": (0.5, 0.0), "ne": (1.0, 0.0),
    "w": (0.0, 0.5), "center": (0.5, 0.5), "e": (1.0, 0.5),
    "sw": (0.0, 1.0), "s": (0.5, 1.0), "se": (1.0, 1.0),
}

_FLOAT_OPTIONS = ("relx", "rely", "relwidth", "relheight")
_INT_OPTIONS = ("x", "y", "width", "height")


class Placer(geometry.GeometryManager):
    """Fixed/fractional placement manager."""

    name = "place"

    def __init__(self):
        self._info: Dict[object, PlaceInfo] = {}
        self._parent_of: Dict[object, object] = {}

    # -- the Tcl-facing operations ----------------------------------------

    def place(self, window, options: Dict[str, str]) -> None:
        info = self._info.get(window, PlaceInfo())
        for name, value in options.items():
            if name in _FLOAT_OPTIONS:
                try:
                    setattr(info, name, float(value))
                except ValueError:
                    raise TclError('expected floating-point number '
                                   'but got "%s"' % value)
            elif name in _INT_OPTIONS:
                try:
                    setattr(info, name, int(value))
                except ValueError:
                    raise TclError('expected integer but got "%s"'
                                   % value)
            elif name == "anchor":
                if value not in _ANCHORS:
                    raise TclError('bad anchor "%s"' % value)
                info.anchor = value
            else:
                raise TclError('unknown option "-%s"' % name)
        self._info[window] = info
        self._parent_of[window] = window.parent
        geometry.claim(window, self)
        self._arrange_window(window)
        window.map()

    def forget(self, window) -> None:
        self._info.pop(window, None)
        self._parent_of.pop(window, None)
        geometry.release(window, self)
        if not window.destroyed:
            window.unmap()

    def info_for(self, window) -> Optional[PlaceInfo]:
        return self._info.get(window)

    # -- geometry-manager protocol ----------------------------------------

    def child_request(self, window) -> None:
        self._arrange_window(window)

    def parent_configured(self, parent) -> None:
        for window, window_parent in list(self._parent_of.items()):
            if window_parent is parent:
                self._arrange_window(window)

    # -- layout ------------------------------------------------------------

    def _arrange_window(self, window) -> None:
        info = self._info.get(window)
        parent = self._parent_of.get(window)
        if info is None or parent is None or window.destroyed:
            return
        x = info.x
        y = info.y
        if info.relx is not None:
            x += int(info.relx * parent.width)
        if info.rely is not None:
            y += int(info.rely * parent.height)
        width = window.requested_width
        if info.width is not None:
            width = info.width
        if info.relwidth is not None:
            width = int(info.relwidth * parent.width) + \
                (info.width or 0)
        height = window.requested_height
        if info.height is not None:
            height = info.height
        if info.relheight is not None:
            height = int(info.relheight * parent.height) + \
                (info.height or 0)
        fx, fy = _ANCHORS[info.anchor]
        window.move_resize(x - int(fx * width), y - int(fy * height),
                           max(1, width), max(1, height))


def register_place_command(app) -> None:
    """Register the ``place`` Tcl command."""
    placer = Placer()
    app.placer = placer

    def cmd_place(interp, argv):
        """place window -x ... | place forget window | place info window"""
        if len(argv) < 2:
            raise TclError(
                'wrong # args: should be "place option|window ?args?"')
        if argv[1] == "forget":
            placer.forget(app.window(argv[2]))
            return ""
        if argv[1] == "info":
            info = placer.info_for(app.window(argv[2]))
            if info is None:
                return ""
            parts = []
            for name in _INT_OPTIONS + _FLOAT_OPTIONS + ("anchor",):
                value = getattr(info, name)
                if value is not None:
                    parts.append("-%s %s" % (name, value))
            return " ".join(parts)
        window = app.window(argv[1])
        rest = argv[2:]
        if len(rest) % 2 != 0:
            raise TclError('value for "%s" missing' % rest[-1])
        options = {}
        for position in range(0, len(rest), 2):
            name = rest[position]
            if not name.startswith("-"):
                raise TclError('unknown option "%s"' % name)
            options[name[1:]] = rest[position + 1]
        placer.place(window, options)
        return ""

    app.interp.register("place", cmd_place)
