"""Regenerate the checked-in golden session journal.

The golden session is a small but representative wish application — a
labelled entry form with a listbox and buttons — driven through pointer
warps, clicks, keystrokes, a timer, and a script evaluation, recorded
with :func:`repro.obs.replay.record_session`.  The resulting
``examples/golden.journal`` is replayed by the CI ``replay`` job (and
``tests/obs/test_replay.py``) in every ablation mode; any wire
divergence fails the build.

Because every clock in the simulator is virtual, regenerating the
journal on any machine produces a byte-identical file.  Run::

    PYTHONPATH=src python examples/record_golden.py

and commit the result only when a wire-visible change is intentional.
"""

import os
import sys

from repro.obs.replay import _build_app, record_session
from repro.x11.xserver import XServer

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "golden.journal")

SCRIPT = """\
frame .form
label .form.title -text {Session journal demo}
entry .form.name
listbox .form.picks
.form.picks insert end alpha beta gamma
button .form.ok -text OK -command {set ::submitted [.form.name get]}
button .form.quit -text Quit -command {destroy .}
pack append .form .form.title {top} .form.name {top} \
    .form.picks {top} .form.ok {top} .form.quit {top}
pack append . .form {top}
focus .form.name
after 80 {set ::timer fired}
"""


def _center(app, path):
    window = app.window(path)
    root_x, root_y = window.root_position()
    return root_x + 2, root_y + 2


def build_steps():
    """Probe widget positions on a throwaway app (layout is
    deterministic), then script the input sequence against them."""
    probe = _build_app(XServer(), "golden", SCRIPT, True, True, True)
    ok = _center(probe, ".form.ok")
    picks = _center(probe, ".form.picks")
    probe.destroy()
    return [
        ("update",),
        # type a name into the focused entry
        ("press_key", "t", 0, None), ("release_key", "t", 0, None),
        ("press_key", "k", 0, None), ("release_key", "k", 0, None),
        ("update",),
        # pick a list entry
        ("warp_pointer", picks[0], picks[1], 0),
        ("press_button", 1, 0), ("release_button", 1, 0),
        ("update",),
        # reconfigure a widget mid-session
        ("eval", ".form.title configure -text {Golden session}"),
        # let the after-timer fire
        ("advance", 90),
        ("update",),
        # submit the form
        ("warp_pointer", ok[0], ok[1], 0),
        ("press_button", 1, 0), ("release_button", 1, 0),
        ("update",),
    ]


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out = GOLDEN
    if argv[:1] == ["--out"] and len(argv) == 2:
        out = argv[1]
    elif argv:
        print("usage: record_golden.py [--out FILE]", file=sys.stderr)
        return 2
    journal = record_session(SCRIPT, build_steps(), name="golden")
    journal.save(out)
    print("wrote %s: %d entries, %s" % (out, len(journal),
                                        journal.counts()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
