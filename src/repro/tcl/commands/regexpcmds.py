"""Regular-expression and history commands.

``regexp`` and ``regsub`` were part of classic Tcl's built-in set;
they use (a compatible subset of) egrep syntax.  ``history`` provides
the csh-like event list interactive shells expose.
"""

from __future__ import annotations

import re
from typing import List

from ..errors import TclError


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def _compile(pattern: str, nocase: bool):
    try:
        return re.compile(pattern, re.IGNORECASE if nocase else 0)
    except re.error as error:
        raise TclError(
            'couldn\'t compile regular expression pattern: %s' % error)


def cmd_regexp(interp, argv: List[str]) -> str:
    """regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar ...?"""
    args = argv[1:]
    nocase = False
    indices = False
    while args and args[0].startswith("-"):
        if args[0] == "-nocase":
            nocase = True
        elif args[0] == "-indices":
            indices = True
        elif args[0] == "--":
            args = args[1:]
            break
        else:
            raise TclError(
                'bad switch "%s": must be -indices, -nocase, or --'
                % args[0])
        args = args[1:]
    if len(args) < 2:
        raise _wrong_args("regexp ?switches? exp string ?matchVar? "
                          "?subMatchVar subMatchVar ...?")
    match = _compile(args[0], nocase).search(args[1])
    if match is None:
        return "0"
    variables = args[2:]
    groups = [match.group(0)] + list(match.groups(""))
    spans = [match.span(0)] + [match.span(index + 1)
                               for index in range(len(match.groups()))]
    for position, name in enumerate(variables):
        if position < len(groups):
            if indices:
                start, end = spans[position]
                if start < 0:
                    value = "-1 -1"
                else:
                    value = "%d %d" % (start, end - 1)
            else:
                value = groups[position] or ""
        else:
            value = "-1 -1" if indices else ""
        interp.set_var(name, value)
    return "1"


def cmd_regsub(interp, argv: List[str]) -> str:
    """regsub ?-all? ?-nocase? exp string subSpec varName"""
    args = argv[1:]
    count_all = False
    nocase = False
    while args and args[0].startswith("-"):
        if args[0] == "-all":
            count_all = True
        elif args[0] == "-nocase":
            nocase = True
        elif args[0] == "--":
            args = args[1:]
            break
        else:
            raise TclError(
                'bad switch "%s": must be -all, -nocase, or --' % args[0])
        args = args[1:]
    if len(args) != 4:
        raise _wrong_args("regsub ?switches? exp string subSpec varName")
    pattern, string, sub_spec, var_name = args
    compiled = _compile(pattern, nocase)

    replacements = [0]

    def replace(match):
        replacements[0] += 1
        out: List[str] = []
        i = 0
        while i < len(sub_spec):
            ch = sub_spec[i]
            if ch == "&":
                out.append(match.group(0))
            elif ch == "\\" and i + 1 < len(sub_spec):
                nxt = sub_spec[i + 1]
                if nxt.isdigit():
                    index = int(nxt)
                    try:
                        out.append(match.group(index) or "")
                    except (IndexError, re.error):
                        out.append("")
                else:
                    out.append(nxt)
                i += 1
            else:
                out.append(ch)
            i += 1
        return "".join(out)

    result = compiled.sub(replace, string, count=0 if count_all else 1)
    interp.set_var(var_name, result)
    return str(replacements[0])


def cmd_history(interp, argv: List[str]) -> str:
    """history ?option? ?arg? — event list for interactive shells."""
    events = getattr(interp, "history_events", None)
    if events is None:
        events = []
        interp.history_events = events
    if len(argv) == 1 or argv[1] == "info":
        lines = ["%6d  %s" % (number + 1, text)
                 for number, text in enumerate(events)]
        return "\n".join(lines)
    option = argv[1]
    if option == "add":
        if len(argv) < 3:
            raise _wrong_args("history add event")
        events.append(argv[2])
        return ""
    if option == "event":
        if not events:
            raise TclError("no events in history")
        if len(argv) == 2:
            return events[-1]
        try:
            number = int(argv[2])
        except ValueError:
            raise TclError('bad event number "%s"' % argv[2])
        index = number - 1 if number > 0 else len(events) + number - 1
        if not 0 <= index < len(events):
            raise TclError('event "%s" is too far in the past' % argv[2])
        return events[index]
    if option == "keep":
        return ""
    if option == "nextid":
        return str(len(events) + 1)
    raise TclError(
        'bad option "%s": must be add, event, info, keep, or nextid'
        % option)


def register(interp) -> None:
    interp.register("regexp", cmd_regexp)
    interp.register("regsub", cmd_regsub)
    interp.register("history", cmd_history)
