"""Tests for the deterministic fault-injection layer (repro.x11.faults)."""

import pytest

from repro.x11 import (Display, FaultPlan, XConnectionLost,
                       XProtocolError, XServer)
from repro.x11 import events as ev
from repro.x11.faults import DELAY, DISCONNECT, DROP, ERROR


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def display(server):
    return Display(server)


class TestScriptedRequestFaults:
    def test_fail_named_request(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("get_geometry", error="BadAtom")
        with pytest.raises(XProtocolError, match="BadAtom"):
            display.get_geometry(win)
        # One-shot: the next identical request succeeds.
        assert display.get_geometry(win)[2] == 10
        assert plan.counters[ERROR] == 1

    def test_fail_any_request(self, server, display):
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request(error="BadWindow")
        with pytest.raises(XProtocolError, match="BadWindow"):
            display.intern_atom("ANYTHING")

    def test_after_skips_matching_requests(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("get_geometry", after=2)
        display.get_geometry(win)
        display.get_geometry(win)
        with pytest.raises(XProtocolError):
            display.get_geometry(win)

    def test_injection_is_logged(self, server, display):
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("intern_atom", error="BadProperty")
        with pytest.raises(XProtocolError):
            display.intern_atom("X")
        assert any(kind == ERROR and "BadProperty" in detail
                   for _, kind, detail in plan.log)

    def test_call_on_request_runs_callback(self, server, display):
        plan = server.install_fault_plan(FaultPlan())
        seen = []
        plan.call_on_request(lambda srv: seen.append(srv.time_ms),
                             name="intern_atom")
        display.intern_atom("X")
        assert len(seen) == 1

    def test_disconnect_client_destroys_its_windows(self, server):
        victim = Display(server)
        win = victim.create_window(victim.root, 0, 0, 10, 10)
        other = Display(server)
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(victim.client, on_request="intern_atom")
        other.intern_atom("TRIGGER")
        assert victim.client.closed
        assert not server.window_exists(win)
        assert plan.counters[DISCONNECT] == 1


class TestScriptedEventFaults:
    def _watched_window(self, server):
        maker = Display(server)
        watcher = Display(server)
        win = maker.create_window(maker.root, 0, 0, 10, 10)
        watcher.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        return maker, watcher, win

    def test_drop_event(self, server):
        maker, watcher, win = self._watched_window(server)
        plan = server.install_fault_plan(FaultPlan())
        plan.drop_events(1, event_type=ev.CONFIGURE_NOTIFY)
        maker.configure_window(win, width=50)
        assert watcher.pending() == 0
        assert plan.counters[DROP] == 1
        maker.configure_window(win, width=60)
        assert watcher.pending() == 1

    def test_delay_event_released_after_time_passes(self, server):
        maker, watcher, win = self._watched_window(server)
        plan = server.install_fault_plan(FaultPlan())
        plan.delay_events(1, delay_ms=5, event_type=ev.CONFIGURE_NOTIFY)
        maker.configure_window(win, width=50)
        assert watcher.pending() == 0
        assert plan.held_count() == 1
        for _ in range(6):
            server.idle_tick()
        assert plan.held_count() == 0
        assert watcher.pending() == 1
        event = watcher.next_event()
        assert event.type == ev.CONFIGURE_NOTIFY and event.width == 50

    def test_delayed_events_for_disconnected_client_are_forgotten(
            self, server):
        maker, watcher, win = self._watched_window(server)
        plan = server.install_fault_plan(FaultPlan())
        plan.delay_events(1, delay_ms=5, event_type=ev.CONFIGURE_NOTIFY)
        maker.configure_window(win, width=50)
        assert plan.held_count() == 1
        watcher.close()
        assert plan.held_count() == 0


class TestSeededSchedule:
    def _workload(self, seed, rounds=60):
        server = XServer()
        display = Display(server)
        windows = [display.create_window(display.root, 0, 0, 10, 10)
                   for _ in range(3)]
        display.select_input(windows[0], ev.STRUCTURE_NOTIFY_MASK)
        plan = server.install_fault_plan(
            FaultPlan(seed=seed, error_rate=0.2, drop_rate=0.2))
        errors = 0
        for i in range(rounds):
            try:
                display.configure_window(windows[i % 3],
                                         width=20 + i)
            except XProtocolError:
                errors += 1
        return plan, errors

    def test_same_seed_same_faults(self):
        plan_a, errors_a = self._workload(seed=42)
        plan_b, errors_b = self._workload(seed=42)
        assert plan_a.log == plan_b.log
        assert errors_a == errors_b
        assert plan_a.total_injected > 0

    def test_different_seed_different_faults(self):
        plan_a, _ = self._workload(seed=1)
        plan_b, _ = self._workload(seed=2)
        assert plan_a.log != plan_b.log

    def test_max_faults_caps_injection(self):
        server = XServer()
        display = Display(server)
        plan = server.install_fault_plan(
            FaultPlan(seed=0, error_rate=1.0, max_faults=2))
        for _ in range(10):
            try:
                display.intern_atom("X")
            except XProtocolError:
                pass
        assert plan.total_injected == 2

    def test_exempt_requests_are_safe(self):
        server = XServer()
        display = Display(server)
        server.install_fault_plan(
            FaultPlan(seed=0, error_rate=1.0,
                      exempt_requests=("intern_atom",)))
        for _ in range(5):
            display.intern_atom("SAFE")     # never raises

    def test_clear_fault_plan_stops_injection(self):
        server = XServer()
        display = Display(server)
        server.install_fault_plan(FaultPlan(seed=0, error_rate=1.0))
        with pytest.raises(XProtocolError):
            display.intern_atom("X")
        server.clear_fault_plan()
        display.intern_atom("X")


class TestSpecRoundTrip:
    def test_spec_preserves_rates_and_schedule(self):
        plan = FaultPlan(seed=9, error_rate=0.01, drop_rate=0.002,
                         delay_rate=0.005, delay_ms=40, max_faults=6,
                         warmup=25)
        plan.fail_request("get_geometry", error="BadAtom", after=3,
                          count=2)
        plan.disconnect_client(2, after=10)
        plan.drop_events(count=3)
        spec = plan.to_spec()
        rebuilt = FaultPlan.from_spec(spec)
        assert rebuilt.to_spec() == spec
        assert rebuilt.seed == 9
        assert rebuilt.warmup == 25
        assert rebuilt.max_faults == 6

    def test_rebuilt_plan_fires_identically(self):
        def drive(plan):
            server = XServer()
            display = Display(server)
            server.install_fault_plan(plan)
            errors = 0
            for index in range(80):
                try:
                    display.intern_atom("A%d" % index)
                except XProtocolError:
                    errors += 1
            return plan.log, errors

        original = FaultPlan(seed=5, error_rate=0.2, max_faults=4,
                             warmup=10)
        log_a, errors_a = drive(original)
        log_b, errors_b = drive(FaultPlan.from_spec(original.to_spec()))
        assert log_a == log_b
        assert errors_a == errors_b

    def test_call_triggers_are_reported_not_serialized(self):
        plan = FaultPlan()
        plan.call_on_request(lambda server: None)
        spec = plan.to_spec()
        assert spec["dropped_call_triggers"] == 1
        assert "request_triggers" not in spec


class TestWarmup:
    def test_seeded_faults_hold_off_during_warmup(self):
        server = XServer()
        display = Display(server)
        plan = server.install_fault_plan(
            FaultPlan(seed=0, error_rate=1.0, warmup=5))
        for _ in range(5):
            display.intern_atom("SAFE")     # inside warmup: no faults
        with pytest.raises(XProtocolError):
            display.intern_atom("HOT")
        assert plan.counters[ERROR] == 1

    def test_scripted_triggers_ignore_warmup(self):
        # Scripted triggers schedule with their own `after`; warmup
        # only silences the seeded background rates.
        server = XServer()
        display = Display(server)
        plan = server.install_fault_plan(FaultPlan(warmup=100))
        plan.fail_request("intern_atom", error="BadAtom")
        with pytest.raises(XProtocolError, match="BadAtom"):
            display.intern_atom("X")


class TestCloseDownScrub:
    """Satellite regression: a scripted disconnect can fire during a
    request's own tick — after close-down ran but before the request
    body executed — and the body then re-registers state for the dead
    client.  The server must scrub it on every exit path, or the fuzz
    census oracle reports a close-leak that no application caused.
    """

    def _assert_clean(self, server, number):
        bucket = server.resource_census().get(number)
        if bucket is None:
            return
        assert bucket["closed"]
        for field in ("windows", "resources", "properties",
                      "selections", "event_selections", "atoms"):
            assert not bucket[field], (field, bucket[field])

    def test_select_input_tick_disconnect_batch_path(self, server):
        display = Display(server, buffering_enabled=True)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(display.client,
                               on_request="select_input")
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.map_window(win)
        with pytest.raises(XConnectionLost):
            display.flush()
        assert display.client.closed
        self._assert_clean(server, display.client.number)

    def test_selection_claim_does_not_outlive_disconnect(self, server):
        display = Display(server, buffering_enabled=True)
        win = display.create_window(display.root, 0, 0, 10, 10)
        atom = display.intern_atom("PRIMARY")
        display.flush()
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(display.client,
                               on_request="set_selection_owner")
        display.set_selection_owner(atom, win)
        display.map_window(win)
        with pytest.raises(XConnectionLost):
            display.flush()
        assert atom not in server.selections
        self._assert_clean(server, display.client.number)

    def test_create_window_tick_disconnect_sync_path(self, server):
        display = Display(server)
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(display.client,
                               on_request="create_window")
        win = display.create_window(display.root, 0, 0, 10, 10)
        assert display.client.closed
        # the window the doomed request created was scrubbed with it
        assert not server.window_exists(win)
        self._assert_clean(server, display.client.number)

    def test_scrub_is_idempotent_and_guarded(self, server):
        display = Display(server)
        display.create_window(display.root, 0, 0, 10, 10)
        # not closed: a stray call must not touch a live client
        server._scrub_closed(display.client)
        assert server.resource_census()[display.client.number]["windows"]
        display.close()
        server._scrub_closed(display.client)
        server._scrub_closed(display.client)
        self._assert_clean(server, display.client.number)
