"""Delta-debugging step minimization for failing scenarios.

Given a scenario whose run violated an invariant, the shrinker finds a
(locally) minimal step list that still reproduces a violation of the
same kind, by re-running candidate scenarios from scratch — the
simulator is fast enough that re-execution *is* the validation, no
approximation needed.  The algorithm is Zeller's ddmin over the step
list (complement-removal with increasing granularity), preceded by a
truncation to the violating step and followed by a one-at-a-time
elimination pass that ddmin's chunking can miss.

Removing steps is always safe: steps are independent journal inputs,
and the executor tolerates references to things an earlier (now
removed) step would have created — a stale widget path is a TclError
routed to ``bgerror``, an eval for a never-created app falls back to
the main one.  Each candidate runs with the same setup script, flags,
fault spec, and plant as the original, so the *session* stays fixed
while the *steps* shrink.
"""

from __future__ import annotations

from typing import Callable, List, Set, Tuple

from .gen import Scenario
from .runner import FuzzResult

#: Default cap on candidate re-runs per shrink.
DEFAULT_BUDGET = 400


def shrink_scenario(scenario: Scenario, kinds: Set[str],
                    run: Callable[[Scenario], FuzzResult],
                    first_step=None,
                    budget: int = DEFAULT_BUDGET
                    ) -> Tuple[Scenario, int]:
    """Minimize ``scenario.steps`` while ``run`` still violates.

    ``kinds`` is the set of violation kinds that count as "still
    failing" (shrinking must not wander onto a different bug);
    ``run`` executes a candidate and returns its :class:`FuzzResult`
    (the caller arms any plant inside it); ``first_step`` — the index
    of the earliest violating step, when known — truncates the tail
    before ddmin starts.  Returns the minimal scenario and the number
    of candidate runs spent.
    """
    runs = [0]

    def fails(steps: List[tuple]) -> bool:
        if runs[0] >= budget:
            return False
        runs[0] += 1
        result = run(scenario.with_steps(steps))
        return bool(kinds & result.kinds())

    steps = list(scenario.steps)
    if first_step is not None and first_step + 1 < len(steps):
        truncated = steps[:first_step + 1]
        if fails(truncated):
            steps = truncated

    # ddmin: remove progressively smaller chunks.
    granularity = 2
    while len(steps) >= 2:
        chunk = max(1, len(steps) // granularity)
        reduced = False
        start = 0
        while start < len(steps):
            candidate = steps[:start] + steps[start + chunk:]
            if candidate and fails(candidate):
                steps = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(steps):
                break
            granularity = min(len(steps), granularity * 2)

    # One-at-a-time sweep (back to front, so indices stay valid).
    for index in range(len(steps) - 1, -1, -1):
        if len(steps) == 1:
            break
        candidate = steps[:index] + steps[index + 1:]
        if fails(candidate):
            steps = candidate

    return scenario.with_steps(steps), runs[0]


__all__ = ["shrink_scenario", "DEFAULT_BUDGET"]
