"""Section 7's prose performance claims, each made measurable.

* "On a machine with 10 MIPS or more, the Tcl interpreter is fast
  enough to execute many hundreds of Tcl commands within a human
  response time" — we execute a 500-command script and require it to
  fit comfortably inside 100 ms.
* "it is possible to paint with the mouse in one application ... bound
  into Tcl commands, which use send to forward commands to another
  application ... with no noticeable time lag" — we run the whole
  pipeline (Motion event -> binding -> send -> remote draw) per stroke.
* "Tk is fast enough to instantiate relatively complex applications
  (many tens of widgets) in a fraction of a second" — a 40-widget
  dialog must instantiate well under a second.
"""

import io

import pytest

from repro.tcl import Interp
from repro.tk import TkApp
from repro.x11 import XServer

HUMAN_RESPONSE_TIME_S = 0.1


def test_hundreds_of_commands_response_time(benchmark):
    interp = Interp()
    interp.eval("proc work {n} {set sum 0\n"
                "for {set i 0} {$i < $n} {incr i} {incr sum $i}\n"
                "return $sum}")
    script = "\n".join("set x%d [work 1]" % i for i in range(500))

    result = benchmark(interp.eval, script)
    assert result == "0"
    assert benchmark.stats.stats.mean < HUMAN_RESPONSE_TIME_S, \
        "500 commands must fit in a human response time"


def test_paint_via_send_pipeline(benchmark):
    """Mouse motion in the painter is bound to a Tcl command that sends
    a draw command to a separate drawing application."""
    server = XServer()
    painter = TkApp(server, name="painter")
    drawer = TkApp(server, name="drawer")
    for application in (painter, drawer):
        application.interp.stdout = io.StringIO()
    drawer.interp.eval("set strokes {}")
    drawer.interp.eval("proc draw {x y} {global strokes\n"
                       "lappend strokes $x,$y}")
    painter.interp.eval("frame .canvas -geometry 100x100")
    painter.interp.eval("pack append . .canvas {top}")
    # Keep the two top-level windows from overlapping on the screen:
    # the drawer was created later, so it is stacked above the painter.
    drawer.interp.eval("wm geometry . 200x200+600+600")
    painter.update()
    drawer.update()
    painter.interp.eval(
        "bind .canvas <Motion> {send drawer draw %x %y}")
    window = painter.window(".canvas")
    root_x, root_y = window.root_position()
    state = {"x": 0}

    def stroke():
        state["x"] = (state["x"] + 1) % 90
        server.warp_pointer(root_x + state["x"], root_y + 50)
        painter.update()

    benchmark(stroke)
    strokes = drawer.interp.eval("llength $strokes")
    assert int(strokes) > 0
    # "no noticeable time lag": a full pipeline iteration well under
    # the ~50ms humans notice during continuous motion.
    assert benchmark.stats.stats.mean < 0.05


def test_complex_application_startup(benchmark):
    """Many tens of widgets in a fraction of a second."""

    def build_dialog():
        app = TkApp(XServer(), name="dialog")
        app.interp.stdout = io.StringIO()
        app.interp.eval("frame .top -geometry 400x400")
        app.interp.eval("pack append . .top {top}")
        for index in range(10):
            app.interp.eval("button .top.b%d -text {Button %d}"
                            % (index, index))
        for index in range(10):
            app.interp.eval("checkbutton .top.c%d -text {Option %d} "
                            "-variable v%d" % (index, index, index))
        for index in range(10):
            app.interp.eval("radiobutton .top.r%d -text {Choice %d} "
                            "-variable choice -value %d"
                            % (index, index, index))
        for index in range(5):
            app.interp.eval("entry .top.e%d" % index)
        for index in range(5):
            app.interp.eval("scale .top.s%d -from 0 -to 100" % index)
        names = (["b", "c", "r"] * 10)[:30] + ["e"] * 5 + ["s"] * 5
        paths = (
            [".top.b%d" % i for i in range(10)] +
            [".top.c%d" % i for i in range(10)] +
            [".top.r%d" % i for i in range(10)] +
            [".top.e%d" % i for i in range(5)] +
            [".top.s%d" % i for i in range(5)])
        app.interp.eval("pack append .top " + " ".join(
            "%s {top}" % path for path in paths))
        app.update()
        return app

    app = benchmark(build_dialog)
    assert len(app.interp.eval("winfo children .top").split()) == 40
    assert benchmark.stats.stats.mean < 1.0, \
        "40 widgets must instantiate in a fraction of a second"
