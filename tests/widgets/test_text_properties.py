"""Property-based tests: the text widget against a reference model.

A random sequence of insertions and deletions is applied both to the
widget and to a plain Python string; the widget's full contents must
match the reference after every step.
"""

import io

from hypothesis import given, settings, strategies as st

from repro.tk import TkApp
from repro.x11 import XServer

_chunk = st.text(alphabet="abc \n", min_size=0, max_size=6)

_operation = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 40), _chunk),
    st.tuples(st.just("delete"), st.integers(0, 40), st.integers(0, 8)),
)


def make_widget():
    app = TkApp(XServer(), name="textprop")
    app.interp.stdout = io.StringIO()
    app.interp.eval("text .t -width 20 -height 5")
    app.interp.eval("pack append . .t {top}")
    app.update()
    return app, app.window(".t").widget


def offset_to_index(reference: str, offset: int):
    """Convert a flat character offset into (line, char)."""
    offset = min(offset, len(reference))
    before = reference[:offset]
    line = before.count("\n") + 1
    char = len(before) - (before.rfind("\n") + 1)
    return line, char


class TestAgainstReferenceModel:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(_operation, max_size=12))
    def test_contents_match_reference(self, operations):
        app, widget = make_widget()
        reference = ""
        for operation in operations:
            if operation[0] == "insert":
                _, offset, chunk = operation
                offset = min(offset, len(reference))
                position = offset_to_index(reference, offset)
                widget.insert_at(position, chunk)
                reference = reference[:offset] + chunk + \
                    reference[offset:]
            else:
                _, offset, length = operation
                start = min(offset, len(reference))
                stop = min(start + length, len(reference))
                widget.delete_between(
                    offset_to_index(reference, start),
                    offset_to_index(reference, stop))
                reference = reference[:start] + reference[stop:]
            assert app.interp.eval(".t get 1.0 end") == reference

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_chunk, max_size=8))
    def test_append_only_matches_join(self, chunks):
        app, widget = make_widget()
        for chunk in chunks:
            widget.insert_at(widget._parse_index("end"), chunk)
        assert app.interp.eval(".t get 1.0 end") == "".join(chunks)

    @settings(max_examples=25, deadline=None)
    @given(_chunk, st.integers(0, 20))
    def test_line_count_matches_newlines(self, chunk, offset):
        app, widget = make_widget()
        widget.insert_at((1, 0), chunk)
        assert int(app.interp.eval(".t lines")) == chunk.count("\n") + 1

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_chunk, min_size=1, max_size=5))
    def test_insert_mark_stays_in_bounds(self, chunks):
        app, widget = make_widget()
        for chunk in chunks:
            widget.insert_at(widget.marks["insert"], chunk)
            line, char = widget.marks["insert"]
            assert 1 <= line <= len(widget.lines)
            assert 0 <= char <= len(widget.lines[line - 1])
