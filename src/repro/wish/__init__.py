"""repro.wish — the windowing shell and its simulated processes."""

from .procs import ProcessRegistry
from .shell import Wish, main

__all__ = ["Wish", "ProcessRegistry", "main"]
