"""Property-based tests (hypothesis) for the Tcl core invariants."""

import fnmatch

from hypothesis import assume, given, strategies as st

from repro.tcl import (Interp, format_list, glob_match, parse_list,
                       parse_script, quote_element)
from repro.tcl.parser import Literal

_plain_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=10)

_word_chars = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-",
    min_size=1, max_size=8)


class TestListInvariants:
    @given(st.lists(_plain_text, max_size=10))
    def test_round_trip(self, elements):
        assert parse_list(format_list(elements)) == elements

    @given(st.lists(_plain_text, max_size=6))
    def test_llength_matches(self, elements):
        interp = Interp()
        interp.set_var("x", format_list(elements))
        assert interp.eval("llength $x") == str(len(elements))

    @given(st.lists(_plain_text, min_size=1, max_size=6),
           st.integers(0, 5))
    def test_lindex_matches(self, elements, index):
        assume(index < len(elements))
        interp = Interp()
        interp.set_var("x", format_list(elements))
        assert interp.eval("lindex $x %d" % index) == elements[index]

    @given(st.lists(_plain_text, max_size=6), _plain_text)
    def test_lappend_appends_exactly_one_element(self, elements, extra):
        interp = Interp()
        interp.set_var("x", format_list(elements))
        interp.eval("lappend x %s" % quote_element(extra))
        assert parse_list(interp.get_var("x")) == elements + [extra]

    @given(st.lists(_plain_text, max_size=8))
    def test_lsort_is_sorted_permutation(self, elements):
        interp = Interp()
        interp.set_var("x", format_list(elements))
        result = parse_list(interp.eval("lsort $x"))
        assert result == sorted(elements)

    @given(st.lists(_plain_text, max_size=6), st.integers(0, 6),
           _plain_text)
    def test_linsert_preserves_others(self, elements, position, new):
        interp = Interp()
        interp.set_var("x", format_list(elements))
        result = parse_list(interp.eval(
            "linsert $x %d %s" % (position, quote_element(new))))
        clamped = min(position, len(elements))
        assert result == elements[:clamped] + [new] + elements[clamped:]


class TestGlobMatchAgainstReference:
    """Tcl's * and ? agree with fnmatch on bracket-free patterns."""

    _simple = st.text(alphabet="abc*?", max_size=8)
    _subject = st.text(alphabet="abc", max_size=8)

    @given(_simple, _subject)
    def test_star_question_match_fnmatch(self, pattern, subject):
        expected = fnmatch.fnmatchcase(subject, pattern)
        assert glob_match(pattern, subject) == expected

    @given(_subject)
    def test_star_matches_everything(self, subject):
        assert glob_match("*", subject)

    @given(_subject)
    def test_exact_matches_itself(self, subject):
        assert glob_match(subject, subject)

    @given(st.characters(min_codepoint=97, max_codepoint=122))
    def test_ranges(self, ch):
        assert glob_match("[a-z]", ch)
        assert not glob_match("[0-9]", ch)


class TestExprAgainstPython:
    _small = st.integers(-1000, 1000)

    @given(_small, _small, _small)
    def test_precedence_matches_python(self, a, b, c):
        interp = Interp()
        assert interp.eval("expr %d + %d * %d" % (a, b, c)) == \
            str(a + b * c)

    @given(_small, _small)
    def test_relational_total_order(self, a, b):
        interp = Interp()
        lt = interp.eval("expr %d < %d" % (a, b))
        ge = interp.eval("expr %d >= %d" % (a, b))
        assert lt != ge

    @given(_small, _small, _small)
    def test_parentheses_regroup(self, a, b, c):
        interp = Interp()
        assert interp.eval("expr (%d + %d) * %d" % (a, b, c)) == \
            str((a + b) * c)

    @given(st.integers(0, 2**16), st.integers(0, 2**16))
    def test_bitwise_matches_python(self, a, b):
        interp = Interp()
        assert interp.eval("expr %d & %d" % (a, b)) == str(a & b)
        assert interp.eval("expr %d | %d" % (a, b)) == str(a | b)
        assert interp.eval("expr %d ^ %d" % (a, b)) == str(a ^ b)

    @given(_small)
    def test_double_negation(self, a):
        interp = Interp()
        assert interp.eval("expr --%d" % a) == str(a)
        assert interp.eval("expr !!%d" % a) == ("1" if a else "0")


class TestParserInvariants:
    @given(st.lists(_word_chars, min_size=1, max_size=6))
    def test_plain_words_parse_to_one_command(self, words):
        script = " ".join(words)
        commands = parse_script(script)
        assert len(commands) == 1
        assert [word.parts[0].text for word in commands[0].words] == words

    @given(st.lists(_word_chars, min_size=1, max_size=4))
    def test_braced_words_survive_verbatim(self, words):
        inner = " ".join(words)
        commands = parse_script("set x {%s}" % inner)
        assert commands[0].words[2].parts == (Literal(inner),)

    @given(_plain_text)
    def test_list_quoting_makes_one_word(self, text):
        """quote_element output always parses as exactly one word."""
        commands = parse_script("set x %s" % quote_element(text))
        assert len(commands) == 1
        assert len(commands[0].words) == 3

    @given(st.lists(_word_chars, min_size=1, max_size=4),
           st.lists(_word_chars, min_size=1, max_size=4))
    def test_semicolon_splits_commands(self, first, second):
        script = " ".join(first) + " ; " + " ".join(second)
        commands = parse_script(script)
        assert len(commands) == 2


class TestInterpreterInvariants:
    @given(_plain_text)
    def test_set_get_round_trip(self, value):
        interp = Interp()
        interp.set_var("v", value)
        assert interp.get_var("v") == value

    @given(_plain_text)
    def test_set_via_command_with_quoting(self, value):
        interp = Interp()
        interp.eval("set v %s" % quote_element(value))
        assert interp.get_var("v") == value

    @given(st.lists(_plain_text, max_size=5))
    def test_proc_args_arrive_intact(self, arguments):
        interp = Interp()
        interp.eval("proc probe args {return $args}")
        command = "probe " + " ".join(quote_element(a)
                                      for a in arguments)
        assert parse_list(interp.eval(command)) == arguments

    @given(st.integers(0, 30))
    def test_loop_count(self, n):
        interp = Interp()
        interp.eval("set c 0")
        interp.eval("for {set i 0} {$i < %d} {incr i} {incr c}" % n)
        assert interp.eval("set c") == str(n)

    @given(_plain_text)
    def test_catch_never_leaks_exception(self, chunk):
        """catch of arbitrary garbage returns a code, never raises."""
        interp = Interp()
        code = interp.eval("catch {%s} msg" % quote_element(chunk))
        assert code in ("0", "1", "2", "3", "4")
