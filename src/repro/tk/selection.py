"""The selection (paper section 3.6).

Tk hides as much of the ICCCM selection protocol as possible.  A widget
that supports a selection registers a *selection handler* — a function
(or Tcl script) returning the selected text.  Claiming the selection
notifies the previous owner (possibly in another application) that it
has lost it; retrieving the selection works whoever the current owner
is, because the transfer runs through the shared X server using
SelectionRequest/SelectionNotify and window properties.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..tcl.errors import TclError
from ..x11 import events as ev

#: Property used on the requestor window for the returned value.
_TRANSFER_PROPERTY = "TK_SELECTION"

#: How many scheduler rounds to wait for a conversion before giving up.
_RETRIEVE_TIMEOUT_ROUNDS = 1000


class SelectionManager:
    """Per-application selection machinery."""

    def __init__(self, app):
        self.app = app
        display = app.display
        self.primary = display.intern_atom("PRIMARY")
        self.string = display.intern_atom("STRING")
        self._property = display.intern_atom(_TRANSFER_PROPERTY)
        # The main window doubles as the ICCCM transfer mailbox: a
        # selection owner in another application writes the converted
        # value into a property on it, so grant cross-client property
        # writes (the server enforces ownership otherwise).
        display.set_property_access(app.main.id, True)
        #: window id -> handler returning the selection string
        self._handlers: Dict[int, Callable[[], str]] = {}
        #: window id of the local owner window, if we own PRIMARY
        self._owner: Optional[int] = None
        #: lose-callback per owner window
        self._lose: Dict[int, Callable[[], None]] = {}
        self._pending_value: Optional[str] = None
        self._pending_done = False

    # ------------------------------------------------------------------
    # owning the selection
    # ------------------------------------------------------------------

    def set_handler(self, window, fetch: Callable[[], str]) -> None:
        """Register the selection handler for a widget's window."""
        self._handlers[window.id] = fetch

    def claim(self, window, on_lose: Optional[Callable[[], None]] = None,
              ) -> None:
        """Make ``window`` the selection owner (ICCCM SetSelectionOwner)."""
        if window.id not in self._handlers:
            raise TclError(
                "cannot claim selection for %s: no selection handler"
                % window.path)
        self.app.display.set_selection_owner(self.primary, window.id)
        # Ownership is display-global state other applications act on
        # immediately (conversion requests, SelectionClear to the old
        # owner), so don't leave the claim sitting in the buffer.
        self.app.display.flush()
        self._owner = window.id
        if on_lose is not None:
            self._lose[window.id] = on_lose

    def owns(self, window) -> bool:
        return self._owner == window.id

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def maybe_handle(self, event) -> bool:
        """Intercept selection-protocol events; True if consumed."""
        if event.type == ev.SELECTION_REQUEST:
            self._answer_request(event)
            return True
        if event.type == ev.SELECTION_CLEAR:
            self._lost(event.window)
            return True
        if event.type == ev.SELECTION_NOTIFY:
            self._conversion_done(event)
            return True
        return False

    def _answer_request(self, event) -> None:
        handler = self._handlers.get(event.window)
        display = self.app.display
        if handler is None or event.target != self.string:
            # Refuse: SelectionNotify with property None.
            display.send_event(event.requestor, ev.Event(
                ev.SELECTION_NOTIFY, selection=event.selection,
                target=event.target, property=0))
            return
        value = handler()
        display.change_property(event.requestor, event.property,
                                self.string, value)
        display.send_event(event.requestor, ev.Event(
            ev.SELECTION_NOTIFY, selection=event.selection,
            target=event.target, property=event.property))

    def _lost(self, window_id: int) -> None:
        if self._owner == window_id:
            self._owner = None
        on_lose = self._lose.pop(window_id, None)
        if on_lose is not None:
            on_lose()

    def _conversion_done(self, event) -> None:
        if event.property == 0:
            self._pending_value = None
        else:
            entry = self.app.display.get_property(event.window,
                                                  event.property,
                                                  delete=True)
            self._pending_value = entry[1] if entry is not None else None
        self._pending_done = True

    # ------------------------------------------------------------------
    # retrieving the selection
    # ------------------------------------------------------------------

    def retrieve(self) -> str:
        """Fetch the current PRIMARY selection as a string.

        Fast path: if this application owns the selection, call the
        handler directly.  Otherwise run the ICCCM conversion and pump
        the in-process scheduler until the answer arrives.
        """
        # Process anything pending first — a SelectionClear may be
        # sitting in the queue, in which case we no longer own PRIMARY.
        self.app.update()
        if self._owner is not None and self._owner in self._handlers:
            return self._handlers[self._owner]()
        display = self.app.display
        self._pending_done = False
        self._pending_value = None
        display.convert_selection(self.primary, self.string,
                                  self._property, self.app.main.id)
        from .app import pump_all
        for _ in range(_RETRIEVE_TIMEOUT_ROUNDS):
            if self._pending_done:
                break
            pump_all(self.app.server, max_rounds=1)
        if not self._pending_done:
            raise TclError("selection retrieval timed out")
        if self._pending_value is None:
            raise TclError("PRIMARY selection doesn't exist or form "
                           '"STRING" not defined')
        return str(self._pending_value)

    def forget_window(self, window_id: int) -> None:
        self._handlers.pop(window_id, None)
        self._lose.pop(window_id, None)
        if self._owner == window_id:
            self._owner = None
