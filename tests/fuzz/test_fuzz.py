"""Tests for the adversarial session fuzzer (repro.fuzz).

Covers the generator's determinism, each invariant oracle, the ddmin
shrinker, the journal round trip behind ``--repro``, and the checked-in
regression corpus under ``tests/regress/``.
"""

import glob
import os

import pytest

from repro.fuzz import (PLANTS, generate_scenario, plant, run_scenario,
                        scenario_from_journal, shrink_scenario)
from repro.fuzz.__main__ import derive_seed, main
from repro.fuzz.gen import SETUP_SCRIPT, Scenario
from repro.fuzz.oracles import classify_swallowed
from repro.obs.journal import Journal
from repro.tcl.errors import TclError
from repro.x11.xserver import XProtocolError

REGRESS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "regress")

#: A scenario seed known (and pinned) to trigger selection_leak: it
#: owns a selection and later destroys the owner.
SELECTION_SEED = 11023807


def _scenario(steps, planted=None, seed=0):
    return Scenario(seed=seed, steps=steps, setup_script=SETUP_SCRIPT,
                    planted=planted)


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        first = generate_scenario(1234)
        second = generate_scenario(1234)
        assert first.steps == second.steps
        assert first.fault_spec == second.fault_spec
        assert first.flags == second.flags

    def test_different_seeds_differ(self):
        assert generate_scenario(1).steps != generate_scenario(2).steps

    def test_same_seed_same_journal_bytes(self):
        first = run_scenario(generate_scenario(7, length=20))
        second = run_scenario(generate_scenario(7, length=20))
        assert first.journal.to_jsonl() == second.journal.to_jsonl()

    def test_derive_seed_is_stable(self):
        # CI pins campaign seeds; the per-session expansion must never
        # drift or repros stop matching their filenames.
        assert derive_seed(11, 3) == 11023807
        assert len({derive_seed(0, i) for i in range(100)}) == 100


class TestOracles:
    def test_selection_leak_detected_only_with_plant(self):
        steps = [
            ("eval", ["button .w1 -text hi\npack append . .w1 {top}",
                      "fuzz"]),
            ("eval", ["selection handle .w1 {concat data}\n"
                      "selection own .w1", "fuzz"]),
            ("eval", ["destroy .w1", "fuzz"]),
        ]
        with plant("selection_leak"):
            bad = run_scenario(_scenario(steps,
                                         planted="selection_leak"))
        assert bad.kinds() == {"selection-leak"}
        assert run_scenario(_scenario(steps)).ok

    def test_registry_leak_detected_only_with_plant(self):
        steps = [("eval", ["destroy .", "fuzz"])]
        with plant("registry_leak"):
            bad = run_scenario(_scenario(steps,
                                         planted="registry_leak"))
        assert bad.kinds() == {"registry-stale"}
        assert run_scenario(_scenario(steps)).ok

    def test_eval_tclerror_is_legitimate(self):
        violations = classify_swallowed(
            [("eval", TclError("boom"))], step=3, faulted=False)
        assert violations == []

    def test_pump_escape_is_always_a_violation(self):
        violations = classify_swallowed(
            [("pump", XProtocolError("BadWindow"))], step=3,
            faulted=True)
        assert [v.kind for v in violations] == ["escape"]

    def test_injected_fault_at_input_tick_is_excused(self):
        swallowed = [("inject", XProtocolError("BadWindow"))]
        assert classify_swallowed(swallowed, 0, faulted=True) == []
        assert [v.kind for v in
                classify_swallowed(swallowed, 0, faulted=False)] \
            == ["escape"]

    def test_clean_generated_sessions_pass_all_oracles(self):
        for seed in (3, 17, 99):
            result = run_scenario(generate_scenario(seed, length=15))
            assert result.ok, result.report()


class TestShrinker:
    def test_planted_bug_found_and_shrunk_small(self):
        scenario = generate_scenario(SELECTION_SEED,
                                     planted="selection_leak")
        with plant("selection_leak"):
            result = run_scenario(scenario)
        assert "selection-leak" in result.kinds()

        def rerun(candidate):
            with plant("selection_leak"):
                return run_scenario(candidate, check_replay=False)

        minimal, runs = shrink_scenario(
            scenario, result.kinds(), rerun,
            first_step=result.first_step())
        assert len(minimal.steps) <= 15
        assert runs > 0
        with plant("selection_leak"):
            still = run_scenario(minimal)
        assert "selection-leak" in still.kinds()

    def test_shrink_keeps_session_config(self):
        scenario = generate_scenario(SELECTION_SEED,
                                     planted="selection_leak")
        with plant("selection_leak"):
            result = run_scenario(scenario)

        def rerun(candidate):
            with plant("selection_leak"):
                return run_scenario(candidate, check_replay=False)

        minimal, _ = shrink_scenario(scenario, result.kinds(), rerun,
                                     first_step=result.first_step())
        assert minimal.fault_spec == scenario.fault_spec
        assert minimal.flags == scenario.flags
        assert minimal.planted == scenario.planted


class TestJournalRoundTrip:
    def test_scenario_from_journal_is_inverse(self):
        scenario = generate_scenario(42, length=15)
        result = run_scenario(scenario)
        rebuilt = scenario_from_journal(result.journal)
        assert rebuilt.steps == scenario.steps[:result.steps_run]
        assert rebuilt.setup_script == scenario.setup_script
        assert rebuilt.fault_spec == scenario.fault_spec
        assert rebuilt.planted is None

    def test_rebuilt_scenario_rerecords_identically(self):
        scenario = generate_scenario(42, length=15)
        result = run_scenario(scenario)
        again = run_scenario(scenario_from_journal(result.journal))
        assert again.journal.to_jsonl() == result.journal.to_jsonl()

    def test_planted_name_rides_in_header(self):
        steps = [("eval", ["destroy .", "fuzz"])]
        with plant("registry_leak"):
            result = run_scenario(_scenario(steps,
                                            planted="registry_leak"))
        assert result.journal.meta["planted"] == "registry_leak"
        assert scenario_from_journal(result.journal).planted \
            == "registry_leak"


class TestRegressionCorpus:
    def test_corpus_has_planted_and_unplanted_journals(self):
        paths = glob.glob(os.path.join(REGRESS_DIR, "*.journal"))
        planted = {Journal.load(p).meta.get("planted") for p in paths}
        assert len(paths) >= 3
        assert None in planted          # at least one fixed real bug
        assert planted - {None}         # at least one planted repro

    def test_regress_corpus_passes(self, capsys):
        assert main(["--regress", REGRESS_DIR]) == 0

    def test_repro_expects_violation_from_planted_journal(self, capsys):
        for path in glob.glob(os.path.join(REGRESS_DIR, "*.journal")):
            if Journal.load(path).meta.get("planted"):
                assert main(["--repro", path,
                             "--expect-violation"]) == 0


class TestCLI:
    def test_fuzz_run_is_clean_and_exits_zero(self, capsys):
        assert main(["--seed", "1", "--sessions", "2",
                     "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert out.count("clean") == 2

    def test_plant_vocabulary_matches_registry(self):
        assert set(PLANTS) == {"selection_leak", "registry_leak"}

    def test_unknown_plant_rejected(self):
        with pytest.raises(ValueError):
            with plant("no_such_plant"):
                pass
