"""Tests for file, glob, pwd, open/gets/read/close channels, source,
and exec dispatch."""

import os

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def interp():
    return Interp()


class TestFileCommand:
    def test_exists(self, interp, tmp_path):
        target = tmp_path / "f"
        assert interp.eval("file exists %s" % target) == "0"
        target.write_text("x")
        assert interp.eval("file exists %s" % target) == "1"

    def test_isdirectory_isfile(self, interp, tmp_path):
        (tmp_path / "f").write_text("x")
        assert interp.eval("file isdirectory %s" % tmp_path) == "1"
        assert interp.eval("file isfile %s" % tmp_path) == "0"
        assert interp.eval("file isfile %s/f" % tmp_path) == "1"

    def test_old_word_order(self, interp, tmp_path):
        """Figure 9 uses 'file $name isdirectory' — the old order."""
        assert interp.eval("file %s isdirectory" % tmp_path) == "1"

    def test_size(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("12345")
        assert interp.eval("file size %s" % target) == "5"

    def test_name_parts(self, interp):
        assert interp.eval("file dirname /a/b/c.txt") == "/a/b"
        assert interp.eval("file tail /a/b/c.txt") == "c.txt"
        assert interp.eval("file rootname /a/b/c.txt") == "/a/b/c"
        assert interp.eval("file extension /a/b/c.txt") == ".txt"

    def test_dirname_of_bare_name(self, interp):
        assert interp.eval("file dirname plain") == "."

    def test_size_of_missing_file_is_error(self, interp):
        with pytest.raises(TclError, match="stat"):
            interp.eval("file size /no/such/file/anywhere")

    def test_readable_writable(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("x")
        assert interp.eval("file readable %s" % target) == "1"
        assert interp.eval("file writable %s" % target) == "1"


class TestGlob:
    def test_star_pattern(self, interp, tmp_path):
        for name in ("a.c", "b.c", "c.h"):
            (tmp_path / name).write_text("")
        result = interp.eval("glob %s/*.c" % tmp_path)
        assert result.endswith("a.c %s/b.c" % tmp_path)

    def test_question_pattern(self, interp, tmp_path):
        for name in ("ab", "ac", "abc"):
            (tmp_path / name).write_text("")
        result = interp.eval("glob %s/a?" % tmp_path)
        assert "abc" not in result

    def test_hidden_files_skipped(self, interp, tmp_path):
        (tmp_path / ".hidden").write_text("")
        (tmp_path / "seen").write_text("")
        result = interp.eval("glob %s/*" % tmp_path)
        assert ".hidden" not in result

    def test_no_match_is_error(self, interp, tmp_path):
        with pytest.raises(TclError, match="no files matched"):
            interp.eval("glob %s/*.zzz" % tmp_path)

    def test_nocomplain(self, interp, tmp_path):
        assert interp.eval("glob -nocomplain %s/*.zzz" % tmp_path) == ""


class TestChannels:
    def test_write_then_read(self, interp, tmp_path):
        target = tmp_path / "f"
        interp.eval("set out [open %s w]" % target)
        interp.eval('puts $out "line one"')
        interp.eval('puts -nonewline $out "line two"')
        interp.eval("close $out")
        assert target.read_text() == "line one\nline two"

    def test_gets_line_by_line(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("first\nsecond\n")
        interp.eval("set in [open %s r]" % target)
        assert interp.eval("gets $in") == "first"
        assert interp.eval("gets $in") == "second"
        interp.eval("close $in")

    def test_gets_with_variable_returns_length(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("hello\n")
        interp.eval("set in [open %s r]" % target)
        assert interp.eval("gets $in line") == "5"
        assert interp.eval("set line") == "hello"
        assert interp.eval("gets $in line") == "-1"

    def test_read_whole_file(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("all of it")
        interp.eval("set in [open %s r]" % target)
        assert interp.eval("read $in") == "all of it"

    def test_eof(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("x")
        interp.eval("set in [open %s]" % target)
        assert interp.eval("eof $in") == "0"
        interp.eval("read $in")
        assert interp.eval("eof $in") == "1"

    def test_append_mode(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("start-")
        interp.eval("set out [open %s a]" % target)
        interp.eval("puts -nonewline $out more")
        interp.eval("close $out")
        assert target.read_text() == "start-more"

    def test_closed_channel_is_error(self, interp, tmp_path):
        target = tmp_path / "f"
        target.write_text("x")
        name = interp.eval("open %s" % target)
        interp.eval("close %s" % name)
        with pytest.raises(TclError, match="can not find channel"):
            interp.eval("read %s" % name)

    def test_open_missing_file_is_error(self, interp):
        with pytest.raises(TclError, match="couldn't open"):
            interp.eval("open /no/such/path/at/all r")

    def test_bad_access_mode(self, interp, tmp_path):
        with pytest.raises(TclError, match="access mode"):
            interp.eval("open %s q" % (tmp_path / "f"))


class TestSource:
    def test_source_runs_file(self, interp, tmp_path):
        script = tmp_path / "s.tcl"
        script.write_text("set sourced yes\n")
        interp.eval("source %s" % script)
        assert interp.eval("set sourced") == "yes"

    def test_source_returns_last_result(self, interp, tmp_path):
        script = tmp_path / "s.tcl"
        script.write_text("expr 6*7\n")
        assert interp.eval("source %s" % script) == "42"

    def test_return_in_sourced_file_stops_it(self, interp, tmp_path):
        script = tmp_path / "s.tcl"
        script.write_text("set a 1\nreturn early\nset b 2\n")
        assert interp.eval("source %s" % script) == "early"
        assert interp.eval("info exists b") == "0"

    def test_missing_file_is_error(self, interp):
        with pytest.raises(TclError, match="couldn't read"):
            interp.eval("source /no/such/file.tcl")


class TestExecDispatch:
    def test_exec_without_registry_is_error(self, interp):
        with pytest.raises(TclError, match="couldn't find"):
            interp.eval("exec ls")

    def test_exec_handler_receives_argv(self, interp):
        calls = []
        interp.exec_handler = lambda argv: calls.append(argv) or "done"
        assert interp.eval("exec prog -a value") == "done"
        assert calls == [["prog", "-a", "value"]]


class TestPwdCd:
    def test_pwd_matches_os(self, interp):
        assert interp.eval("pwd") == os.getcwd()

    def test_cd_and_back(self, interp, tmp_path):
        original = os.getcwd()
        try:
            interp.eval("cd %s" % tmp_path)
            assert os.getcwd() == str(tmp_path)
        finally:
            os.chdir(original)

    def test_cd_to_missing_dir_is_error(self, interp):
        with pytest.raises(TclError, match="couldn't change"):
            interp.eval("cd /no/such/dir")
