"""The ``obs`` command: observability from inside the interpreter.

In Tk's spirit of exposing the toolkit's internals to scripts, the
metrics registry, span tracer, and profiler of the interpreter's
:class:`repro.obs.Observability` hub (application-wide once a
:class:`~repro.tk.TkApp` has rebound the interpreter) are driven from
Tcl::

    obs metrics ?pattern?              formatted metric listing
    obs trace start ?-wire?            begin collecting spans
    obs trace stop                     stop collecting
    obs trace clear                    discard collected spans
    obs trace dump ?-format text|json? the span tree
    obs trace wire                     the wire log (every X request)
    obs profile report ?-limit n?      aggregated span attribution
    obs dump ?-format json?            metrics+trace+profile as JSON

``info metrics`` returns the same data as ``obs metrics`` but as a
flat name/value Tcl list for scripting, mirroring ``info
compilecache``.
"""

from __future__ import annotations

import json
from typing import List

from ..errors import TclError


def cmd_obs(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise TclError(
            'wrong # args: should be "obs option ?arg ...?"')
    option = argv[1]
    obs = interp.obs
    if option == "metrics":
        if len(argv) > 3:
            raise TclError(
                'wrong # args: should be "obs metrics ?pattern?"')
        pattern = argv[2] if len(argv) == 3 else None
        return obs.metrics.format(pattern)
    if option == "trace":
        return _trace(obs, argv)
    if option == "profile":
        return _profile(obs, argv)
    if option == "dump":
        fmt = _format_flag(argv, 2, default="json")
        if fmt != "json":
            raise TclError('bad format "%s": should be json' % fmt)
        return obs.dump_json()
    raise TclError(
        'bad option "%s": should be dump, metrics, profile, or trace'
        % option)


def _trace(obs, argv: List[str]) -> str:
    if len(argv) < 3:
        raise TclError(
            'wrong # args: should be "obs trace option ?arg ...?"')
    action = argv[2]
    tracer = obs.tracer
    if action == "start":
        wire = False
        for word in argv[3:]:
            if word == "-wire":
                wire = True
            else:
                raise TclError('bad switch "%s": must be -wire' % word)
        tracer.start(wire=wire)
        return ""
    if action == "stop":
        tracer.stop()
        return ""
    if action == "clear":
        tracer.clear()
        return ""
    if action == "dump":
        fmt = _format_flag(argv, 3, default="text")
        if fmt == "text":
            return tracer.format_tree()
        if fmt == "json":
            return json.dumps(tracer.to_dict(), indent=2,
                              sort_keys=True)
        raise TclError('bad format "%s": should be text or json' % fmt)
    if action == "wire":
        return tracer.format_wire()
    raise TclError(
        'bad option "%s": should be clear, dump, start, stop, or wire'
        % action)


def _profile(obs, argv: List[str]) -> str:
    if len(argv) < 3 or argv[2] != "report":
        raise TclError(
            'wrong # args: should be "obs profile report ?-limit n?"')
    limit = 20
    rest = argv[3:]
    while rest:
        if rest[0] == "-limit" and len(rest) >= 2:
            try:
                limit = int(rest[1])
            except ValueError:
                raise TclError('expected integer but got "%s"' % rest[1])
            rest = rest[2:]
        else:
            raise TclError('bad switch "%s": must be -limit' % rest[0])
    return obs.profile().report(limit=limit)


def _format_flag(argv: List[str], start: int, default: str) -> str:
    rest = argv[start:]
    if not rest:
        return default
    if len(rest) == 2 and rest[0] == "-format":
        return rest[1]
    raise TclError(
        'bad switch "%s": must be -format' % rest[0])


def register(interp) -> None:
    interp.register("obs", cmd_obs)
