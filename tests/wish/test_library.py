"""Tests for wish's Tcl support library: the dialog-box procs the
paper's section 5 says are 'created by writing short Tcl scripts'."""

import io

import pytest

from repro.wish import Wish


@pytest.fixture
def shell():
    return Wish(name="dlgtest", stdout=io.StringIO())


class TestMkdialog:
    def test_returns_pressed_button_index(self, shell):
        shell.interp.eval("after 50 {.dlg.btn2 invoke}")
        result = shell.interp.eval(
            'mkdialog .dlg "Save changes?" Save Discard Cancel')
        assert result == "2"

    def test_dialog_destroyed_after_use(self, shell):
        shell.interp.eval("after 50 {.dlg.btn0 invoke}")
        shell.interp.eval('mkdialog .dlg "msg" OK')
        assert shell.interp.eval("winfo exists .dlg") == "0"

    def test_buttons_match_arguments(self, shell):
        shell.interp.eval("after 200 {.dlg.btn0 invoke}")
        shell.interp.eval("after 50 {set n [llength "
                          "[winfo children .dlg]]}")
        shell.interp.eval('mkdialog .dlg "pick" A B C D')
        # message + 4 buttons
        assert shell.interp.eval("set n") == "5"

    def test_click_through_simulated_pointer(self, shell):
        """Drive the dialog the way a user would: click the button."""
        shell.interp.eval("""
            proc clickCancel {} {
                set w [winfo rootx .dlg.btn1]
                set h [winfo rooty .dlg.btn1]
            }
        """)

        def click_when_up():
            app = shell.app
            window = app.window(".dlg.btn1")
            x, y = window.root_position()
            shell.server.warp_pointer(x + 2, y + 2)
            shell.server.press_button(1)
            shell.server.release_button(1)

        shell.app.dispatcher.after(50, click_when_up)
        result = shell.interp.eval('mkdialog .dlg "really?" OK Cancel')
        assert result == "1"

    def test_reentrant_dialogs(self, shell):
        shell.interp.eval("after 50 {.first.btn0 invoke}")
        assert shell.interp.eval('mkdialog .first "one" OK') == "0"
        shell.interp.eval("after 50 {.second.btn1 invoke}")
        assert shell.interp.eval('mkdialog .second "two" OK No') == "1"


class TestMkentrydialog:
    def test_returns_typed_text(self, shell):
        def type_and_ok():
            for key in "abc":
                shell.server.press_key(key,
                                       window_id=shell.app.main.id)
            shell.app.update()
            shell.interp.eval(".ask.ok invoke")

        # Generous delay: the timer must fire inside tkwait's mainloop,
        # after dialog setup (whose virtual-clock cost varies with the
        # output-buffering mode) has completed.
        shell.app.dispatcher.after(500, type_and_ok)
        result = shell.interp.eval('mkentrydialog .ask "Your name?"')
        assert result == "abc"

    def test_focus_assigned_to_entry(self, shell):
        """Section 3.7: when the dialog pops up, focus goes to its
        entry so the user can type without moving the mouse."""
        seen = {}

        def capture_focus():
            seen["focus"] = shell.interp.eval("focus")
            shell.interp.eval(".ask.ok invoke")

        shell.app.dispatcher.after(500, capture_focus)
        shell.interp.eval('mkentrydialog .ask "Your name?"')
        assert seen["focus"] == ".ask.entry"

    def test_focus_restored_afterwards(self, shell):
        shell.interp.eval("entry .original")
        shell.interp.eval("pack append . .original {top}")
        shell.interp.eval("update")
        shell.interp.eval("focus .original")
        shell.app.dispatcher.after(50,
                                   lambda: shell.interp.eval(
                                       ".ask.ok invoke"))
        shell.interp.eval('mkentrydialog .ask "Q?"')
        assert shell.interp.eval("focus") == ".original"


class TestBgerror:
    def test_default_bgerror_prints(self, shell):
        shell.interp.eval('bgerror "something broke"')
        assert "background error: something broke" in \
            shell.interp.stdout.getvalue()

    def test_bgerror_redefinable(self, shell):
        shell.interp.eval("proc bgerror {msg} {set ::caught $msg}")
        shell.interp.eval('bgerror "oops"')
        # ::caught — our Tcl has no namespaces; define plainly instead.
        shell.interp.eval("proc bgerror2 {msg} {global caught\n"
                          "set caught $msg}")
        shell.interp.eval('bgerror2 "oops"')
        assert shell.interp.eval("set caught") == "oops"


class TestDialogModality:
    def test_dialog_grabs_input(self, shell):
        """While the dialog is up, clicks outside it are ignored."""
        shell.interp.eval("button .other -text out "
                          "-command {set leaked 1}")
        shell.interp.eval("pack append . .other {top}")
        shell.interp.eval("update")

        def click_outside_then_dismiss():
            app = shell.app
            window = app.window(".other")
            x, y = window.root_position()
            shell.server.warp_pointer(x + 2, y + 2)
            shell.server.press_button(1)
            shell.server.release_button(1)
            app.update()
            shell.interp.eval(".dlg.btn0 invoke")

        shell.app.dispatcher.after(50, click_outside_then_dismiss)
        shell.interp.eval('mkdialog .dlg "modal?" OK')
        assert shell.interp.eval("info exists leaked") == "0"

    def test_grab_released_after_dialog(self, shell):
        shell.app.dispatcher.after(
            50, lambda: shell.interp.eval(".dlg.btn0 invoke"))
        shell.interp.eval('mkdialog .dlg "bye" OK')
        assert shell.interp.eval("grab current") == ""
