"""Deterministic replay of recorded sessions, with wire diffing.

A journal recorded by :mod:`repro.obs.journal` contains two things a
replay needs: the session *inputs* (injected pointer/key events, event
-loop pumps, clock advances, top-level script evaluations) and the
resulting *wire stream* (every request that reached the server, in
order).  :func:`replay_journal` rebuilds the application from the
journal header — fresh :class:`~repro.x11.xserver.XServer`, fresh
:class:`~repro.tk.TkApp`, the recorded setup script — re-injects the
recorded inputs, and diffs the wire stream of the replay against the
recording.  Because every clock in the simulator is virtual, a faithful
implementation replays with **zero divergence**, which turns any
captured session (a bug report, a perf regression, the checked-in
golden session under ``examples/``) into a regression test.

Ablation modes: the wire is *expected* to be invariant under the
compile-once ablation (``compile_enabled`` trades CPU, not traffic),
expected to differ only in resource-allocation requests under the
resource-cache ablation (§3.3: the cache exists precisely to remove
those), and expected to differ in batching/coalescing shape under the
output-buffer ablation.  Each mode in :data:`MODES` encodes that
expectation: requests attributable to the ablation are reported as an
*expected delta*; anything else diverges the replay.

Faulted sessions replay too: a journal whose header embeds a
serialized :class:`~repro.x11.faults.FaultPlan` (see
:meth:`FaultPlan.to_spec`) gets the same plan re-installed on the
fresh server before the application is rebuilt, so seeded and
scripted faults fire at the same request ticks and the wire — errors,
disconnects and all — replays deterministically.  Journals recorded
without a plan stay fault-free on replay.
"""

from __future__ import annotations

import io
import sys
from typing import Callable, Dict, List, Optional, Tuple

from .journal import Journal

#: Request types the resource cache (§3.3) exists to eliminate — the
#: expected wire delta of replaying a capture with ``cache_enabled``
#: off (or on, against a cache-off capture).
CACHE_REQUESTS = frozenset((
    "alloc_named_color", "load_font", "create_cursor", "create_bitmap",
    "create_gc", "free_resource", "sync",
))

#: Request types whose count/shape the output buffer changes: the
#: batch write itself, plus every coalescible one-way request.
BUFFER_REQUESTS = frozenset((
    "batch", "configure_window", "select_input", "change_property",
    "clear_window", "fill_rectangle", "draw_rectangle", "draw_line",
    "draw_string", "sync",
))

#: mode -> (TkApp/Interp flag overrides, comparison policy, the
#: request types the ablation is allowed to perturb).
#:
#: * ``exact``    — request streams must match element for element;
#: * ``filtered`` — streams must match after removing the allowed
#:   types (whose counts become the expected delta);
#: * ``counts``   — per-type totals must match outside the allowed
#:   types (ordering is the ablation's to change).
MODES: Dict[str, dict] = {
    "default":       {"flags": {}, "compare": "exact",
                      "allowed": frozenset()},
    "compile_off":   {"flags": {"compile_enabled": False},
                      "compare": "exact", "allowed": frozenset()},
    # The bytecode VM is a pure CPU optimisation: running the same
    # capture through the tree walker must produce an identical wire.
    "bytecode_off":  {"flags": {"bytecode_enabled": False},
                      "compare": "exact", "allowed": frozenset()},
    # Cache misses are reply-bearing requests, and every reply-bearing
    # request is an auto-flush point: turning the cache off therefore
    # also moves batch boundaries and defeats some coalescing, so the
    # allowed set is the union of both ablations' request types and the
    # comparison is per-type counts.
    "cache_off":     {"flags": {"cache_enabled": False},
                      "compare": "counts",
                      "allowed": CACHE_REQUESTS | BUFFER_REQUESTS},
    "buffering_off": {"flags": {"buffering_enabled": False},
                      "compare": "counts", "allowed": BUFFER_REQUESTS},
}


class ReplayResult:
    """The outcome of one replay: divergence report + expected delta."""

    def __init__(self, mode: str, recorded: List[Tuple],
                 replayed: List[Tuple], compare: str,
                 allowed: frozenset, truncated: bool = False):
        self.mode = mode
        self.compare = compare
        self.recorded_requests = len(recorded)
        self.replayed_requests = len(replayed)
        self.truncated = truncated
        #: per-type (recorded, replayed) counts where they differ
        self.type_delta: Dict[str, Tuple[int, int]] = _type_delta(
            recorded, replayed)
        #: the slice of the delta the ablation mode predicts
        self.expected_delta = {name: delta for name, delta
                               in self.type_delta.items()
                               if name in allowed}
        self.unexpected_delta = {name: delta for name, delta
                                 in self.type_delta.items()
                                 if name not in allowed}
        self.first_divergence: Optional[int] = None
        self.context: List[dict] = []
        #: the replay's own Journal (byte-identity oracle input) and
        #: the exceptions the executor swallowed; filled by
        #: :func:`replay_journal`.
        self.replay_log: Optional[Journal] = None
        self.swallowed: List[Tuple[str, BaseException]] = []
        if compare == "counts":
            self.matched = not self.unexpected_delta and not truncated
        else:
            if compare == "filtered":
                recorded = [op for op in recorded
                            if op[0] not in allowed]
                replayed = [op for op in replayed
                            if op[0] not in allowed]
            self.first_divergence = _first_divergence(recorded, replayed)
            self.matched = self.first_divergence is None and not truncated
            if self.first_divergence is not None:
                self.context = _context(recorded, replayed,
                                        self.first_divergence)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode, "matched": self.matched,
            "compare": self.compare,
            "recorded_requests": self.recorded_requests,
            "replayed_requests": self.replayed_requests,
            "first_divergence": self.first_divergence,
            "context": self.context,
            "expected_delta": {name: list(delta) for name, delta
                               in sorted(self.expected_delta.items())},
            "unexpected_delta": {name: list(delta) for name, delta
                                 in sorted(
                                     self.unexpected_delta.items())},
            "truncated": self.truncated,
        }

    def report(self) -> str:
        lines = ["REPLAY mode=%s: %s  (%d recorded / %d replayed "
                 "requests)"
                 % (self.mode,
                    "MATCH" if self.matched else "DIVERGED",
                    self.recorded_requests, self.replayed_requests)]
        if self.truncated:
            lines.append("  journal ring wrapped during recording: "
                         "wire stream incomplete, diff unreliable")
        for name, (rec, rep) in sorted(self.expected_delta.items()):
            lines.append("  expected delta (%s ablation)  %-24s "
                         "%d -> %d" % (self.mode, name, rec, rep))
        for name, (rec, rep) in sorted(self.unexpected_delta.items()):
            lines.append("  UNEXPECTED delta              %-24s "
                         "%d -> %d" % (name, rec, rep))
        if self.first_divergence is not None:
            lines.append("  first divergence at wire index %d:"
                         % self.first_divergence)
            for row in self.context:
                marker = ">>" if row["index"] == \
                    self.first_divergence else "  "
                lines.append("  %s %6d  recorded %-28s replayed %s"
                             % (marker, row["index"],
                                _op_str(row["recorded"]),
                                _op_str(row["replayed"])))
        return "\n".join(lines)


def _op_str(op) -> str:
    if op is None:
        return "-"
    name, window = op[0], op[1]
    detail = op[2] if len(op) > 2 else None
    text = "%s(w=%s)" % (name, window) if window is not None else name
    if detail:
        text += " {%s}" % detail
    return text


def _type_delta(recorded: List[Tuple],
                replayed: List[Tuple]) -> Dict[str, Tuple[int, int]]:
    counts: Dict[str, List[int]] = {}
    for side, ops in enumerate((recorded, replayed)):
        for op in ops:
            counts.setdefault(op[0], [0, 0])[side] += 1
    return {name: (rec, rep) for name, (rec, rep)
            in counts.items() if rec != rep}


def _first_divergence(recorded: List[Tuple],
                      replayed: List[Tuple]) -> Optional[int]:
    for index in range(min(len(recorded), len(replayed))):
        if tuple(recorded[index]) != tuple(replayed[index]):
            return index
    if len(recorded) != len(replayed):
        return min(len(recorded), len(replayed))
    return None


def _context(recorded: List[Tuple], replayed: List[Tuple],
             index: int, width: int = 3) -> List[dict]:
    rows = []
    for position in range(max(0, index - width), index + width + 1):
        rec = recorded[position] if position < len(recorded) else None
        rep = replayed[position] if position < len(replayed) else None
        if rec is None and rep is None:
            break
        rows.append({"index": position, "recorded": rec,
                     "replayed": rep})
    return rows


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------

def start_recording(server, name: str = "session", script: str = "",
                    cache_enabled: bool = True,
                    compile_enabled: bool = True,
                    buffering_enabled: bool = True,
                    bytecode_enabled: bool = True,
                    sink: Optional[str] = None,
                    maxlen: Optional[int] = None,
                    fault_plan=None,
                    planted: Optional[str] = None) -> Journal:
    """Attach a fresh recording journal to ``server`` and return it.

    ``fault_plan`` may be a live :class:`~repro.x11.faults.FaultPlan`
    (installed on the server and serialized into the header) or an
    already-serialized spec dict (embedded verbatim; the caller
    installed the plan).  ``planted`` names the active test-only
    planted bug, if any, so regression journals know what to arm.
    """
    from .journal import JOURNAL_RING
    fault_spec = None
    if fault_plan is not None:
        if isinstance(fault_plan, dict):
            fault_spec = fault_plan
        else:
            fault_spec = fault_plan.to_spec()
            server.install_fault_plan(fault_plan)
    journal = Journal(clock=lambda: server.time_ms,
                      maxlen=maxlen if maxlen is not None
                      else JOURNAL_RING, sink=sink)
    journal.set_header(name=name, script=script,
                       cache_enabled=cache_enabled,
                       compile_enabled=compile_enabled,
                       buffering_enabled=buffering_enabled,
                       bytecode_enabled=bytecode_enabled,
                       fault_plan=fault_spec, planted=planted)
    journal.open_sink()
    server.attach_journal(journal)
    return journal


def record_session(script: str, steps: List[Tuple],
                   name: str = "session",
                   cache_enabled: bool = True,
                   compile_enabled: bool = True,
                   buffering_enabled: bool = True,
                   bytecode_enabled: bool = True,
                   sink: Optional[str] = None,
                   fault_plan=None,
                   planted: Optional[str] = None) -> Journal:
    """Record one scripted session from scratch and return its journal.

    Builds a fresh server and application, evaluates ``script`` (the
    setup: widgets, bindings, procs), pumps once, then drives ``steps``
    — tuples like ``("warp_pointer", x, y)``, ``("press_button", 1)``,
    ``("press_key", "a")``, ``("update",)``, ``("eval", tclscript)``,
    ``("new_app", name, setupscript)`` — recording everything.  The
    same drive logic replays the journal (:func:`replay_journal`), so
    record and replay are symmetric by construction.
    """
    from ..x11.xserver import XProtocolError, XServer

    server = XServer()
    journal = start_recording(server, name=name, script=script,
                              cache_enabled=cache_enabled,
                              compile_enabled=compile_enabled,
                              buffering_enabled=buffering_enabled,
                              bytecode_enabled=bytecode_enabled,
                              sink=sink, fault_plan=fault_plan,
                              planted=planted)
    flags = {"cache_enabled": cache_enabled,
             "compile_enabled": compile_enabled,
             "buffering_enabled": buffering_enabled,
             "bytecode_enabled": bytecode_enabled}
    try:
        app = _build_app(server, name, script, cache_enabled,
                         compile_enabled, buffering_enabled,
                         bytecode_enabled)
    except XProtocolError:
        # A header fault plan can kill construction itself; the
        # journal (and its replay) must survive that, so record the
        # session as one with no application.  Anything else — a
        # broken setup script — still surfaces to the caller.
        if fault_plan is None:
            server.detach_journal()
            journal.close_sink()
            raise
        app = None
    try:
        for step in steps:
            kind, args = step[0], tuple(step[1:])
            if kind == "update":
                journal.input("update", (name,))
                if app is not None:
                    app.update()
            elif kind == "advance":
                journal.input("advance", (args[0], name))
                if args[0] > server.time_ms:
                    server.time_ms = args[0]
                if app is not None:
                    app.update()
            elif kind == "eval":
                journal.input("eval", (args[0], name))
                if app is not None:
                    app.interp.eval_top(args[0])
                    app.update()
            elif kind == "new_app":
                journal.input("new_app", args)
                apply_input(server, app, "new_app", list(args),
                            flags=flags)
            else:
                # Server input injection: the xserver hooks record it.
                getattr(server, kind)(*args)
    finally:
        server.detach_journal()
        journal.close_sink()
        for extra in list(getattr(server, "apps", [])):
            if not extra.destroyed:
                extra.destroy()
        if app is not None and not app.destroyed:
            app.destroy()
    return journal


def apply_input(server, default_app, name: str, args: List,
                flags: Optional[dict] = None,
                swallowed: Optional[List] = None,
                transport=None):
    """Execute one journal input against a live server/application set.

    The same executor drives both sides: the fuzz runner journals an
    input and then applies it through here, and :func:`replay_journal`
    applies the recorded inputs through here — so the two runs have
    identical error semantics by construction.  An exception raised by
    a top-level ``eval``, a fault injected at an input's own request
    tick, or an error escaping an event-loop pump is appended to
    ``swallowed`` (when given) as ``(stage, exception)`` and the
    session continues; the wire diff, not the exception, arbitrates
    divergence.  Returns the new application for ``new_app`` inputs,
    else ``None``.
    """
    if name == "new_app":
        app_name = args[0]
        script = args[1] if len(args) > 1 else ""
        flags = dict(flags or {})
        try:
            return _build_app(server, app_name, script,
                              flags.get("cache_enabled", True),
                              flags.get("compile_enabled", True),
                              flags.get("buffering_enabled", True),
                              flags.get("bytecode_enabled", True),
                              transport=transport)
        except Exception as error:
            if swallowed is not None:
                swallowed.append(("new_app", error))
            return None
    if name == "update":
        _pump(_app_named(server, default_app, args), swallowed)
        return None
    if name == "advance":
        when = args[0]
        if when > server.time_ms:
            server.time_ms = when
        _pump(_app_named(server, default_app, args[1:]), swallowed)
        return None
    if name == "eval":
        app = _app_named(server, default_app, args[1:])
        if app is not None:
            try:
                app.interp.eval_top(args[0])
            except Exception as error:
                if swallowed is not None:
                    swallowed.append(("eval", error))
        _pump(app, swallowed)
        return None
    # Server input injection: the xserver hooks journal it themselves.
    # With a thread-hosted server (socket transports) the injection
    # must run on the server thread, which also services the clients'
    # mid-call output flushes.
    host = getattr(server, "_wire_host", None)
    try:
        if host is not None and host.running:
            host.inject(name, *args)
        else:
            getattr(server, name)(*args)
    except Exception as error:
        # A fault plan may fire at the input's own request tick; the
        # input is already on the record, so both sides must survive
        # the same injection.
        if swallowed is not None:
            swallowed.append(("inject", error))
    return None


def _pump(app, swallowed: Optional[List]) -> None:
    """Run one application's event loop to quiescence, capturing any
    escape (an escape is itself an oracle violation — see
    :mod:`repro.fuzz.oracles` — but must not abort the session)."""
    if app is None or app.destroyed:
        return
    try:
        app.update()
    except Exception as error:
        if swallowed is not None:
            swallowed.append(("pump", error))


def _build_app(server, name: str, script: str, cache_enabled: bool,
               compile_enabled: bool, buffering_enabled: bool,
               bytecode_enabled: bool = True, transport=None):
    from ..tcl.interp import Interp
    from ..tk.app import TkApp
    interp = Interp(compile_enabled=compile_enabled,
                    bytecode_enabled=bytecode_enabled)
    interp.stdout = io.StringIO()
    app = TkApp(server, name=name, interp=interp,
                cache_enabled=cache_enabled,
                buffering_enabled=buffering_enabled,
                transport=transport)
    if script:
        app.interp.eval_top(script)
    app.update()
    return app


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------

def replay_journal(journal: Journal, mode: str = "default",
                   script: Optional[str] = None,
                   setup: Optional[Callable] = None,
                   transport=None) -> ReplayResult:
    """Re-inject a journal's inputs against a fresh application and
    diff the resulting wire stream against the recording.

    ``mode`` selects the ablation flags and comparison policy from
    :data:`MODES`.  The setup script comes from the journal header
    unless ``script`` overrides it; ``setup`` (a callable taking the
    fresh server and returning the driver app) replaces script-based
    construction entirely for Python-driven sessions.  ``transport``
    chooses how the rebuilt applications reach the server (None /
    ``"loopback"`` / ``"socket"`` / a factory callable — see
    :func:`repro.x11.transport.resolve_transport`); the wire stream is
    transport-invariant, so a journal recorded in-process must replay
    cleanly over a socket.

    If the header embeds a serialized fault plan, an identical plan is
    installed on the fresh server before the application is built, so
    recorded faults re-fire at the same request ticks.  The result
    carries the replay's own journal at ``result.replay_log`` (the
    byte-identity oracle compares ``to_jsonl()`` of both sides).
    """
    from ..x11.xserver import XServer

    if mode not in MODES:
        raise ValueError('unknown replay mode "%s" (choose from %s)'
                         % (mode, ", ".join(sorted(MODES))))
    policy = MODES[mode]
    header = journal.meta or {}
    flags = dict(header.get("flags") or {})
    flags.setdefault("cache_enabled", True)
    flags.setdefault("compile_enabled", True)
    flags.setdefault("buffering_enabled", True)
    flags.setdefault("bytecode_enabled", True)
    flags.update(policy["flags"])
    if script is None:
        script = header.get("script") or ""
    name = header.get("name") or "replay"
    fault_spec = header.get("fault_plan")

    server = XServer()
    if fault_spec:
        from ..x11.faults import FaultPlan
        server.install_fault_plan(FaultPlan.from_spec(fault_spec))
    replay_log = Journal(clock=lambda: server.time_ms,
                         maxlen=max(journal.maxlen, len(journal) * 2))
    # Pass the original spec dict through verbatim so a default-mode
    # replay's header — and therefore its whole JSONL — can match the
    # recording byte for byte.
    replay_log.set_header(name=name, script=script,
                          fault_plan=fault_spec,
                          planted=header.get("planted"), **flags)
    server.attach_journal(replay_log)
    swallowed: List[Tuple[str, BaseException]] = []
    if setup is not None:
        app = setup(server)
    else:
        try:
            app = _build_app(server, name, script,
                             flags["cache_enabled"],
                             flags["compile_enabled"],
                             flags["buffering_enabled"],
                             flags["bytecode_enabled"],
                             transport=transport)
        except Exception as error:
            # A header fault plan can fire during construction itself;
            # the recording survived that, so the replay must too.
            app = None
            swallowed.append(("new_app", error))
    try:
        for input_name, args in journal.inputs():
            if input_name in ("update", "advance", "eval", "new_app"):
                # Raw device inputs re-journal themselves inside the
                # server; loop-level inputs must be re-recorded here so
                # a default-mode replay log is entry-for-entry
                # comparable with the recording (the fuzzer's
                # byte-identity oracle).
                replay_log.input(input_name, args)
            apply_input(server, app, input_name, args, flags=flags,
                        swallowed=swallowed, transport=transport)
    finally:
        server.detach_journal()
        for extra in list(getattr(server, "apps", [])):
            if not extra.destroyed:
                extra.destroy()
        if app is not None and not app.destroyed:
            app.destroy()
        from ..x11.transport import shutdown_host
        shutdown_host(server)
    result = ReplayResult(mode, journal.wire(), replay_log.wire(),
                          policy["compare"], policy["allowed"],
                          truncated=journal.dropped > 0)
    result.replay_log = replay_log
    result.swallowed = swallowed
    return result


def _app_named(server, default_app, args):
    """Resolve an input entry's application by registered send name."""
    if args:
        for app in getattr(server, "apps", []):
            if app.name == args[0] and not app.destroyed:
                return app
    return default_app


def replay_all_modes(journal: Journal,
                     modes: Optional[List[str]] = None
                     ) -> Dict[str, ReplayResult]:
    """Replay one journal under every (or the given) ablation modes."""
    results = {}
    for mode in (modes if modes is not None else sorted(MODES)):
        results[mode] = replay_journal(journal, mode=mode)
    return results


# ----------------------------------------------------------------------
# CLI: python -m repro.obs.replay session.journal [--mode MODE]
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = ("usage: python -m repro.obs.replay FILE [--mode MODE]... "
             "[--all-modes] [--transport loopback|socket]")
    modes = []
    path = None
    transport = None
    while argv:
        if argv[0] == "--mode" and len(argv) > 1:
            modes.append(argv[1])
            argv = argv[2:]
        elif argv[0] == "--all-modes":
            modes = sorted(MODES)
            argv = argv[1:]
        elif argv[0] == "--transport" and len(argv) > 1:
            transport = argv[1]
            argv = argv[2:]
        elif path is None:
            path = argv[0]
            argv = argv[1:]
        else:
            print(usage)
            return 2
    if path is None:
        print(usage)
        return 2
    journal = Journal.load(path)
    status = 0
    for mode in (modes or ["default"]):
        result = replay_journal(journal, mode=mode, transport=transport)
        if transport:
            print("TRANSPORT %s" % transport)
        print(result.report())
        if not result.matched:
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["MODES", "CACHE_REQUESTS", "BUFFER_REQUESTS", "ReplayResult",
           "start_recording", "record_session", "replay_journal",
           "replay_all_modes", "apply_input", "main"]
