"""Shared fixtures and helpers for the benchmark/reproduction harness.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md section 3).  The harness prints the paper's
numbers next to ours; absolute values differ (1990 DECstation vs
today's machine, C vs Python, real X vs simulator) but the *shapes* —
orderings, ratios, crossovers — are asserted.
"""

import io
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.tk import TkApp
from repro.x11 import XServer


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def app(server):
    application = TkApp(server, name="bench")
    application.interp.stdout = io.StringIO()
    return application


def fresh_app(name="bench"):
    application = TkApp(XServer(), name=name)
    application.interp.stdout = io.StringIO()
    return application


def print_table(title, headers, rows):
    """Print an aligned table into the captured test output."""
    widths = [len(header) for header in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join("%-*s" % (width, header)
                     for width, header in zip(widths, headers))
    print()
    print("=== %s ===" % title)
    print(line)
    print("-" * len(line))
    for row in text_rows:
        print("  ".join("%-*s" % (width, cell)
                        for width, cell in zip(widths, row)))
