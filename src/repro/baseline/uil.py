"""A miniature UIL — Motif's static interface-description language.

UIL is the second "little language" the baseline toolkit needs (after
the translation manager): a declarative notation for widget trees that
must be *compiled* before the application can use it — it cannot be
generated, inspected, or changed while the application runs, which is
exactly the limitation the paper contrasts with Tcl (section 8).

Syntax (a small but representative subset of real UIL)::

    object main : XmPanedWindow {
        object title : XmLabel {
            arguments { labelString = "My Application"; };
        };
        object ok : XmPushButton {
            arguments { labelString = "OK"; };
            callbacks { activateCallback = ok_pressed; };
        };
    };

:func:`compile_uil` parses the text into a static description;
:func:`instantiate` later builds real widgets from it, resolving
callback names against a compiled procedure table (the analogue of
Motif's MrmRegisterNames).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from . import widgets as _widgets
from .intrinsics import CompositeWidget, CoreWidget, Shell, XtError

#: Widget class names UIL files may reference.
_CLASS_TABLE = {
    "XmLabel": _widgets.XmLabel,
    "XmPushButton": _widgets.XmPushButton,
    "XmToggleButton": _widgets.XmToggleButton,
    "XmScrollBar": _widgets.XmScrollBar,
    "XmList": _widgets.XmList,
    "XmPanedWindow": _widgets.XmPanedWindow,
}


class UilError(Exception):
    """A compile-time error in a UIL description."""


@dataclass
class UilObject:
    """The compiled form of one ``object`` declaration."""

    name: str
    class_name: str
    arguments: Dict[str, str] = field(default_factory=dict)
    callbacks: Dict[str, str] = field(default_factory=dict)
    children: List["UilObject"] = field(default_factory=list)


class _Tokenizer:
    def __init__(self, text: str):
        self.tokens = self._tokenize(text)
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens: List[str] = []
        i = 0
        end = len(text)
        while i < end:
            ch = text[i]
            if ch.isspace():
                i += 1
            elif text.startswith("!", i):
                while i < end and text[i] != "\n":
                    i += 1
            elif ch in "{};:=":
                tokens.append(ch)
                i += 1
            elif ch == '"':
                close = text.find('"', i + 1)
                if close < 0:
                    raise UilError("unterminated string literal")
                tokens.append(text[i:close + 1])
                i = close + 1
            else:
                start = i
                while i < end and not text[i].isspace() and \
                        text[i] not in "{};:=\"":
                    i += 1
                tokens.append(text[start:i])
        return tokens

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise UilError("unexpected end of UIL text")
        self.position += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise UilError('expected "%s", got "%s"' % (expected, token))


def compile_uil(text: str) -> List[UilObject]:
    """Compile UIL text into static object descriptions."""
    tokenizer = _Tokenizer(text)
    objects: List[UilObject] = []
    while tokenizer.peek() is not None:
        objects.append(_parse_object(tokenizer))
    if not objects:
        raise UilError("no object declarations in UIL text")
    return objects


def _parse_object(tokenizer: _Tokenizer) -> UilObject:
    tokenizer.expect("object")
    name = tokenizer.next()
    tokenizer.expect(":")
    class_name = tokenizer.next()
    if class_name not in _CLASS_TABLE:
        raise UilError('unknown widget class "%s"' % class_name)
    obj = UilObject(name, class_name)
    tokenizer.expect("{")
    while tokenizer.peek() != "}":
        section = tokenizer.peek()
        if section == "object":
            obj.children.append(_parse_object(tokenizer))
        elif section == "arguments":
            tokenizer.next()
            _parse_bindings(tokenizer, obj.arguments)
            tokenizer.expect(";")
        elif section == "callbacks":
            tokenizer.next()
            _parse_bindings(tokenizer, obj.callbacks)
            tokenizer.expect(";")
        else:
            raise UilError('unexpected "%s" in object body' % section)
    tokenizer.expect("}")
    tokenizer.expect(";")
    return obj


def _parse_bindings(tokenizer: _Tokenizer, into: Dict[str, str]) -> None:
    tokenizer.expect("{")
    while tokenizer.peek() != "}":
        name = tokenizer.next()
        tokenizer.expect("=")
        value = tokenizer.next()
        tokenizer.expect(";")
        if value.startswith('"') and value.endswith('"'):
            value = value[1:-1]
        into[name] = value
    tokenizer.expect("}")


def instantiate(description: UilObject, parent: CoreWidget,
                procedures: Dict[str, Callable]) -> CoreWidget:
    """Build the widget tree a compiled description names.

    ``procedures`` resolves callback names to compiled functions
    (MrmRegisterNames); a missing name is an error at instantiation
    time, exactly the late-failure mode the paper criticizes.
    """
    widget_class = _CLASS_TABLE[description.class_name]
    widget = widget_class(description.name, parent,
                          **description.arguments)
    for callback_name, proc_name in description.callbacks.items():
        proc = procedures.get(proc_name)
        if proc is None:
            raise UilError(
                'callback procedure "%s" was not registered' % proc_name)
        widget.add_callback(callback_name, proc)
    for child in description.children:
        instantiate(child, widget, procedures)
    widget.manage()
    return widget
