"""Tests for the fleet load generator (repro.fleet)."""

import pytest

from repro.fleet import (DEFAULT_SLOS, SLO, FleetDriver, SessionSpec,
                         check_slos, format_slos, format_top,
                         make_slow_spec)
from repro.fleet.__main__ import build_specs, corpus_journals
from repro.obs import trace
from repro.obs.journal import Journal
from repro.obs.replay import replay_journal
from repro.x11 import VirtualClock, XServer

SETUP = "set pings 0\nproc bgerror msg {}\n"


def simple_spec(name, updates=3):
    return SessionSpec([("update", [name])] * updates,
                       setup_script=SETUP, name=name,
                       source="test:" + name)


class TestVirtualClock:
    def test_servers_share_one_timeline(self):
        clock = VirtualClock()
        first = XServer(clock=clock)
        second = XServer(clock=clock)
        before = second.time_ms
        first.idle_tick()
        assert second.time_ms == before + 1
        assert first.time_ms == second.time_ms

    def test_default_server_owns_a_private_clock(self):
        first = XServer()
        second = XServer()
        first.idle_tick()
        assert first.time_ms != second.time_ms


class TestDoEvents:
    def test_budget_bounds_processed_events(self):
        import io

        from repro.tk import TkApp
        server = XServer()
        app = TkApp(server, name="budget")
        app.interp.stdout = io.StringIO()
        app.interp.eval("label .l -text hi\npack append . .l {top}")
        processed = app.dispatcher.do_events(1)
        assert processed <= 1
        # draining with a huge budget must terminate below it
        assert app.dispatcher.do_events(10000) < 10000
        assert app.dispatcher.do_events(5) == 0


class TestSessionSpec:
    def test_from_seed_is_a_fuzz_scenario(self):
        spec = SessionSpec.from_seed(17)
        assert spec.steps
        assert spec.source == "seed:17"

    def test_from_journal_reads_header(self):
        spec = SessionSpec.from_journal("examples/golden.journal")
        assert spec.name == "golden"
        assert spec.steps
        assert spec.source == "examples/golden.journal"

    def test_solo_rules(self):
        assert not simple_spec("a").solo
        faulted = SessionSpec([], fault_spec={"seed": 1}, name="f")
        assert faulted.solo
        multi = SessionSpec([("new_app", ["peer", ""])], name="m")
        assert multi.solo
        recording = SessionSpec([], name="r", record_path="/tmp/x.journal")
        assert recording.solo

    def test_planted_bugs_never_armed(self, tmp_path):
        path = tmp_path / "planted.journal"
        journal = Journal()
        journal.set_header(name="p", script="", planted="registry_leak")
        journal.save(str(path))
        spec = SessionSpec.from_journal(str(path))
        assert spec.flags.get("planted") is None


class TestDriver:
    def test_sessions_complete_and_roll_up(self):
        specs = [simple_spec("app%d" % index) for index in range(3)]
        result = FleetDriver(specs, seed=1, ping_every=0).run()
        summary = result.summary()
        assert summary["sessions"] == 3
        assert summary["completed"] == 3
        assert summary["faulted"] == 0
        assert summary["steps"] == 9
        assert summary["dispatch_ms"]["count"] == 9
        assert "FLEET: 3 sessions" in result.report()

    def test_cells_pack_to_cell_size_and_solo_isolates(self):
        specs = [simple_spec("app%d" % index) for index in range(5)]
        specs.insert(2, SessionSpec([], fault_spec={"seed": 1}, name="f"))
        driver = FleetDriver(specs, cell_size=4, ping_every=0)
        driver.launch()
        sizes = sorted(len(cell) for cell in driver.cells)
        assert sizes == [1, 1, 4]
        solo_cell = next(cell for cell in driver.cells
                         if cell[0].spec.name == "f")
        assert len(solo_cell) == 1

    def test_same_seed_runs_are_bit_identical(self):
        def run():
            specs = build_specs(6, 11, ["examples/golden.journal"])
            return FleetDriver(specs, seed=11).run()

        first, second = run(), run()
        assert dict(first.registry.snapshot()) == \
            dict(second.registry.snapshot())
        assert first.summary()["virtual_ms"] == \
            second.summary()["virtual_ms"]

    def test_session_gauges_reach_terminal_states(self):
        specs = [simple_spec("app0"),
                 SessionSpec.from_seed(5000032)]
        result = FleetDriver(specs, ping_every=0).run()
        registry = result.registry
        assert registry.value("fleet.sessions", state="active") == 0
        assert (registry.value("fleet.sessions", state="completed")
                + registry.value("fleet.sessions", state="faulted")) == 2


class TestSocketSessions:
    """Socket-backed sessions ride the fleet like any other: they share
    cells, complete, and leave per-client wire counters on the cell's
    server registry (excluded from the per-session rollup)."""

    def _socket_spec(self, name):
        steps = [("eval", ["button .b -text hi", name]),
                 ("update", [name]),
                 ("warp_pointer", [20, 20]),
                 ("press_button", [1]),
                 ("update", [name])]
        return SessionSpec(steps, setup_script=SETUP, name=name,
                           transport="socket", source="test:" + name)

    def test_socket_sessions_complete_in_shared_cell(self):
        specs = [self._socket_spec("s0"), self._socket_spec("s1"),
                 simple_spec("s2")]
        driver = FleetDriver(specs, cell_size=4, seed=3, ping_every=0)
        result = driver.run()
        assert result.summary()["completed"] == 3
        assert result.summary()["cells"] == 1
        # the host thread was stopped before the rollup
        assert getattr(driver.servers[0], "_wire_host", None) is None
        # wire bytes were counted per client on the cell's server
        server_registry = driver.servers[0].obs.metrics
        assert server_registry.total("x11.wire.bytes_out") > 0
        assert server_registry.total("x11.wire.bytes_in") > 0

    def test_transport_choice_does_not_change_session_metrics(self):
        def run(transport):
            steps = [("eval", ["label .l -text x", "s"]),
                     ("update", ["s"]),
                     ("eval", ["pack append . .l {top}", "s"]),
                     ("update", ["s"])]
            spec = SessionSpec(steps, setup_script=SETUP, name="s",
                               transport=transport)
            result = FleetDriver([spec], seed=7, ping_every=0).run()
            summary = result.summary()
            return (summary["steps"], summary["events"],
                    summary["errors"], summary["x11_requests"],
                    summary["virtual_ms"])

        assert run(None) == run("socket")


class TestCrossSessionSend:
    """Satellite: send RPCs between fleet sessions land their metrics
    in the *sender's* per-session registry."""

    def _run(self):
        receiver = simple_spec("alpha", updates=3)
        sender = SessionSpec(
            [("eval", ["send {alpha} {incr pings}", "beta"]),
             ("eval", ["send {alpha} {incr pings}", "beta"]),
             ("update", ["beta"])],
            setup_script=SETUP, name="beta", source="test:beta")
        driver = FleetDriver([receiver, sender], ping_every=0)
        return driver.run(), driver

    def test_rpcs_attributed_to_sender(self):
        result, driver = self._run()
        alpha, beta = driver.sessions
        assert beta.metrics.value("send.rpcs") == 2
        assert alpha.metrics.value("send.rpcs") == 0
        # the wait cost (virtual ms burned in the handshake) is the
        # sender's too, recorded in its send.wait_ms histogram
        assert beta.metrics.value("send.wait_ms") == 2
        assert alpha.metrics.value("send.wait_ms") == 0

    def test_rollup_keeps_per_session_series(self):
        result, driver = self._run()
        registry = result.registry
        assert registry.value("send.rpcs", session="s001") == 2
        assert registry.value("send.rpcs", session="s000") == 0
        assert result.summary()["send_rpcs"] == 2

    def test_driver_pings_count_as_send_traffic(self):
        specs = [simple_spec("app%d" % index, updates=6)
                 for index in range(3)]
        result = FleetDriver(specs, ping_every=1, seed=3).run()
        summary = result.summary()
        assert summary["pings"] > 0
        assert summary["send_rpcs"] >= summary["pings"]


class TestSlowSession:
    def test_outlier_tops_report_and_replays(self, tmp_path):
        path = str(tmp_path / "slow.journal")
        specs = [simple_spec("app%d" % index) for index in range(4)]
        specs.append(make_slow_spec(path, sends=3))
        result = FleetDriver(specs, ping_every=0).run()
        top = result.top_slowest(3)
        assert top[0]["source"] == path
        assert top[0]["status"] == "faulted"
        assert top[0]["virtual_ms"] > top[1]["virtual_ms"]
        assert path in format_top(result.sessions, 3)
        replayed = replay_journal(Journal.load(path))
        assert replayed.matched

    def test_faulted_sessions_counted(self, tmp_path):
        path = str(tmp_path / "slow.journal")
        result = FleetDriver([make_slow_spec(path, sends=2)],
                             ping_every=0).run()
        summary = result.summary()
        assert summary["faulted"] == 1
        assert summary["faults_injected"] > 0


class TestSLOs:
    def test_bounds(self):
        summary = {"dispatch_ms": {"p95": 40}, "events_per_sec": 500.0}
        assert SLO("dispatch_ms.p95", most=50).evaluate(summary)["ok"]
        assert not SLO("dispatch_ms.p95", most=39).evaluate(summary)["ok"]
        assert SLO("events_per_sec", least=100).evaluate(summary)["ok"]
        assert not SLO("events_per_sec",
                       least=501).evaluate(summary)["ok"]

    def test_missing_key_is_a_violation(self):
        row = SLO("no.such.key", least=1).evaluate({})
        assert row["ok"] is False
        assert row["value"] is None

    def test_format_marks_violations(self):
        rows = check_slos({"dispatch_ms": {}}, slos=DEFAULT_SLOS)
        text = format_slos(rows)
        assert "VIOLATED" in text

    def test_default_slos_hold_on_a_small_fleet(self):
        specs = [simple_spec("app%d" % index, updates=8)
                 for index in range(6)]
        result = FleetDriver(specs, ping_every=4, seed=2).run()
        assert all(row["ok"] for row in result.slos())


class TestBuildSpecs:
    def test_journals_first_fuzz_fill_slow_last(self, tmp_path):
        path = str(tmp_path / "slow.journal")
        specs = build_specs(5, 9, ["examples/golden.journal"],
                            slow_journal=path)
        assert len(specs) == 5
        assert specs[0].source == "examples/golden.journal"
        assert specs[1].source.startswith("seed:")
        assert specs[-1].record_path == path

    def test_deterministic_for_same_arguments(self):
        first = build_specs(4, 13, [])
        second = build_specs(4, 13, [])
        assert [spec.source for spec in first] == \
            [spec.source for spec in second]


class TestFleetTraceEviction:
    """Satellite: tracer ring eviction accounting at fleet scale.

    One tracer (cell 0's) watches a 200-session fleet.  Module-level
    wire/handle hooks fan into every active tracer, so that single
    ring collects fleet-wide traffic, overflows its 4096-span bound,
    and must keep its accounting and its cross-boundary parent links
    intact under heavy eviction.
    """

    def test_200_session_run_evicts_and_accounts(self):
        journals = (["examples/golden.journal"]
                    + corpus_journals("tests/regress"))
        specs = build_specs(200, 20260808, journals)
        driver = FleetDriver(specs, seed=20260808)
        driver.launch()
        server = driver.servers[0]
        tracer = server.obs.tracer
        tracer.start(wire=True)
        try:
            result = driver.run()

            # The fleet pushed far more spans than the ring holds.
            assert tracer.evicted_spans > 0
            assert len(tracer.spans) == tracer.spans.maxlen
            # Metric mirror agrees exactly with the attribute.
            assert server.obs.metrics.value(
                "obs.trace.evicted", ring="spans") == \
                tracer.evicted_spans

            # Eviction never corrupts links: spans append in
            # post-order (children before parents), so a surviving
            # span either resolves its parent or is re-rooted with an
            # explicit marker -- and cross-boundary (link="wire")
            # nodes always carry the original parent id.
            for node in tracer.tree():
                if node.get("link") == "wire":
                    assert node.get("parent_evicted") is True
                    assert isinstance(node["parent"], int)
                    assert "orphaned" not in node

            # A frame still in flight when the tracer stops drops its
            # wire span; the already-recorded handle span must re-root
            # with the explicit parent link, not as a local orphan.
            now = server.time_ms
            ctx, pairs = trace.open_wire("batch", queue_ms=1)
            trace.record_handle(ctx, "draw_string", now, now + 1)
            tracer.stop()
            trace.close_wire(ctx, pairs)
            rerooted = [node for node in tracer.tree()
                        if node["kind"] == "xhandle"
                        and node["name"] == "draw_string"
                        and node.get("parent_evicted")]
            assert rerooted
            assert rerooted[-1]["parent"] == ctx
            assert "orphaned" not in rerooted[-1]

            # Phase decomposition rides the top-N telemetry rows.
            rows = result.top_slowest(10)
            assert rows
            for row in rows:
                for key in ("handle_ms", "wire_ms", "wait_ms"):
                    assert row[key] >= 0
                assert (row["handle_ms"] + row["wire_ms"]
                        + row["wait_ms"]) <= row["virtual_ms"]
            assert any(row["handle_ms"] > 0 for row in rows)
        finally:
            tracer.stop()
