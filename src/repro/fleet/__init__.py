"""repro.fleet — journal-driven load generation with fleet telemetry.

The paper's toolkit was built for real deployments: many users, many
applications, one display server apiece.  This package simulates that
scale — hundreds of concurrent sessions (recorded journals, seeded
fuzz scenarios, synthetic outliers) interleaved over one shared
virtual clock — and makes *observability* the product: per-session
metric scoping, fleet-level rollups with latency percentiles,
top-N-slowest attribution where every outlier carries its own
reproduction handle, and declarative SLO checks.

Typical use::

    from repro.fleet import FleetDriver, SessionSpec

    specs = [SessionSpec.from_journal("examples/golden.journal")]
    specs += [SessionSpec.from_seed(seed) for seed in range(40)]
    result = FleetDriver(specs, seed=0).run()
    print(result.report(top=10))

or from the command line::

    python -m repro.fleet --sessions 200 --seed 0
    python -m repro.fleet --repro seed:17
    python -m repro.fleet --repro capture.journal
"""

from .driver import FleetDriver, FleetResult
from .harness import FleetSession, SessionSpec, make_slow_spec
from .telemetry import (DEFAULT_SLOS, SLO, FleetTelemetry, check_slos,
                        format_slos, format_top, top_slowest)

__all__ = [
    "FleetDriver", "FleetResult", "FleetSession", "SessionSpec",
    "make_slow_spec", "FleetTelemetry", "SLO", "DEFAULT_SLOS",
    "check_slos", "format_slos", "format_top", "top_slowest",
]
