"""Additional intrinsics-command coverage: winfo extensions, pack
before/after, after cancel, and send payload robustness."""

import pytest

from repro.tcl import TclError


class TestWinfoExtensions:
    def test_screen_dimensions(self, app):
        assert app.interp.eval("winfo screenwidth .") == "1152"
        assert app.interp.eval("winfo screenheight .") == "900"

    def test_containing(self, app):
        app.interp.eval("wm geometry . 100x100")
        app.interp.eval("frame .f -geometry 40x40")
        app.interp.eval("place .f -x 10 -y 10")
        app.update()
        assert app.interp.eval("winfo containing 15 15") == ".f"
        assert app.interp.eval("winfo containing 90 90") == "."

    def test_containing_outside_app(self, app):
        # Over the bare root window: no Tk window there.
        assert app.interp.eval("winfo containing 1000 800") == ""

    def test_toplevel(self, app):
        app.interp.eval("frame .f")
        app.interp.eval("frame .f.inner")
        assert app.interp.eval("winfo toplevel .f.inner") == "."

    def test_bad_option_lists_choices(self, app):
        with pytest.raises(TclError, match="containing"):
            app.interp.eval("winfo nonsense .")


class TestPackBeforeAfter:
    def test_pack_before(self, app):
        app.interp.eval("button .a -text a")
        app.interp.eval("button .b -text b")
        app.interp.eval("pack append . .a {top}")
        app.interp.eval("pack before .a .b {top}")
        app.update()
        assert app.window(".b").y < app.window(".a").y

    def test_pack_after(self, app):
        app.interp.eval("button .a -text a")
        app.interp.eval("button .b -text b")
        app.interp.eval("button .c -text c")
        app.interp.eval("pack append . .a {top} .c {top}")
        app.interp.eval("pack after .a .b {top}")
        app.update()
        ys = {path: app.window(path).y for path in (".a", ".b", ".c")}
        assert ys[".a"] < ys[".b"] < ys[".c"]


class TestAfterCancel:
    def test_cancel_prevents_firing(self, app):
        token = app.interp.eval("after 50 {set fired 1}")
        app.interp.eval("after cancel %s" % token)
        app.server.time_ms += 100
        app.update()
        assert app.interp.eval("info exists fired") == "0"

    def test_cancel_bad_token(self, app):
        with pytest.raises(TclError, match="bad after token"):
            app.interp.eval("after cancel nonsense")


class TestSendPayloadRobustness:
    def test_braces_survive(self, app, second_app):
        app.interp.eval("send peer {set v {a {nested} value}}")
        assert second_app.interp.eval("set v") == "a {nested} value"

    def test_newlines_in_scripts(self, app, second_app):
        app.interp.eval('send peer {set a 1\nset b 2}')
        assert second_app.interp.eval("set b") == "2"

    def test_special_characters_in_results(self, app, second_app):
        second_app.interp.eval(r'proc weird {} {return "x\ty {z}"}')
        assert app.interp.eval("send peer weird") == "x\ty {z}"

    def test_large_payload(self, app, second_app):
        big = "word " * 2000
        app.interp.eval("send peer {set blob {%s}}" % big)
        assert second_app.interp.eval("string length $blob") == \
            str(len(big))

    def test_interleaved_sends_both_directions(self, app, second_app):
        second_app.interp.eval(
            "proc pong {} {send test set got-pong 1\nreturn pong}")
        assert app.interp.eval("send peer pong") == "pong"
        assert app.interp.eval("set got-pong") == "1"
