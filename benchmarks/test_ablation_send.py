"""Ablation: send versus the selection as inter-application plumbing
(paper sections 6 and 8).

The selection moves one passive string per explicit user action; send
is a general RPC.  We measure both mechanisms doing the same job —
moving N values from one application to another — and demonstrate the
things only send can do at all (remote invocation with results,
remote reconfiguration).
"""

import io

import pytest

from repro.tcl import TclError
from repro.tk import TkApp
from repro.x11 import XServer

from conftest import print_table


@pytest.fixture
def pair():
    server = XServer()
    source = TkApp(server, name="source")
    sink = TkApp(server, name="sink")
    for application in (source, sink):
        application.interp.stdout = io.StringIO()
    return source, sink


def test_transfer_via_selection(benchmark, pair):
    """Selection-style transfer: owner re-claims, peer retrieves."""
    source, sink = pair
    source.interp.eval("frame .holder")
    source.interp.eval("set payload 0")
    source.interp.eval("selection handle .holder {set payload}")
    source.interp.eval("selection own .holder")
    state = {"n": 0}

    def one_transfer():
        state["n"] += 1
        source.interp.eval("set payload value-%d" % state["n"])
        return sink.interp.eval("selection get")

    result = benchmark(one_transfer)
    assert result.startswith("value-")


def test_transfer_via_send(benchmark, pair):
    """send-style transfer: the source pushes directly."""
    source, sink = pair
    sink.interp.eval("set payload {}")
    state = {"n": 0}

    def one_transfer():
        state["n"] += 1
        return source.interp.eval(
            "send sink set payload value-%d" % state["n"])

    result = benchmark(one_transfer)
    assert result.startswith("value-")


def test_send_capabilities_beyond_selection(benchmark, pair):
    """What the selection cannot express at all (paper section 6):
    invoking behaviour and getting computed results back."""
    source, sink = pair
    sink.interp.eval("proc breakpoints {} {return {main.c:10 tcl.c:42}}")

    def rpc():
        return source.interp.eval("send sink breakpoints")

    result = benchmark(rpc)
    assert result == "main.c:10 tcl.c:42"
    # The selection offers no way to run "breakpoints" remotely: it can
    # only transfer whatever string the owner has already decided on.
    with pytest.raises(TclError):
        source.interp.eval("selection get")


def test_send_vs_selection_summary(benchmark, pair):
    source, sink = pair
    sink.interp.eval("set x {}")
    source.interp.eval("frame .h")
    source.interp.eval("selection handle .h {format fixed-value}")
    source.interp.eval("selection own .h")

    import time as _time

    def measure(action, rounds=200):
        start = _time.perf_counter()
        for _ in range(rounds):
            action()
        return (_time.perf_counter() - start) / rounds

    selection_s = measure(lambda: sink.interp.eval("selection get"))
    send_s = measure(lambda: source.interp.eval("send sink set x 1"))
    benchmark(lambda: None)
    print_table(
        "Ablation (section 6): one cross-application transfer",
        ("Mechanism", "Latency", "Can invoke remote commands?",
         "Needs user action per transfer?"),
        [("selection", "%.3f ms" % (selection_s * 1e3), "no", "yes"),
         ("send", "%.3f ms" % (send_s * 1e3), "yes", "no")])
    # Both are millisecond-scale IPC; send is at least comparable while
    # being strictly more capable.
    assert send_s < selection_s * 20
