"""Fault-matrix integration tests: the dispatch loop, ``bgerror``/
``tkerror`` recovery, and a seeded soak of the whole toolkit under a
randomized (but pinned) FaultPlan."""

import io

import pytest

from repro.tcl import TclError
from repro.tk import TkApp, pump_all
from repro.x11 import FaultPlan, XProtocolError, XServer


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def app(server):
    application = TkApp(server, name="matrix")
    application.interp.stdout = io.StringIO()
    return application


def _define_bgerror(application):
    application.interp.eval(
        "proc bgerror {msg} {global reported\nlappend reported $msg}")


class TestBackgroundErrorRecovery:
    def test_x_error_in_binding_reported_not_fatal(self, app, server):
        """An injected X protocol error inside a binding goes to
        bgerror; pump_all keeps dispatching (the acceptance check)."""
        _define_bgerror(app)
        app.interp.eval("frame .f -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f a {raise .f}")
        app.interp.eval("bind .f b {set good 1}")
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("raise_window", error="BadWindow")
        server.press_key("a", window_id=app.window(".f").id)
        pump_all(server)          # must NOT raise
        assert "BadWindow" in app.interp.eval("set reported")
        server.press_key("b", window_id=app.window(".f").id)
        pump_all(server)
        assert app.interp.eval("set good") == "1"

    def test_x_error_without_handler_propagates(self, app, server):
        app.interp.eval("frame .f -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f a {raise .f}")
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("raise_window", error="BadWindow")
        server.press_key("a", window_id=app.window(".f").id)
        # With output buffering the error surfaces asynchronously, at
        # the flush that delivers raise_window — a raw XProtocolError
        # from the event loop, not a TclError inside the binding.
        with pytest.raises(XProtocolError, match="BadWindow"):
            app.update()

    def test_x_error_in_idle_redraw_reported(self, app, server):
        """A C-level failure (widget redraw, not a Tcl script) is also
        routed through bgerror by the dispatcher guard."""
        _define_bgerror(app)
        app.interp.eval("button .b -text x")
        app.interp.eval("pack append . .b {top}")
        app.update()
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("clear_window", error="BadWindow")
        app.interp.eval(".b configure -text redraw-me")
        app.update()              # must NOT raise
        assert "BadWindow" in app.interp.eval("set reported")

    def test_tkerror_fallback(self, app):
        """The historical ``tkerror`` name works when ``bgerror`` is
        not defined."""
        app.interp.eval(
            "proc tkerror {msg} {global reported\nset reported $msg}")
        app.interp.eval("after 10 {error old-name}")
        app.server.time_ms += 20
        app.update()
        assert app.interp.eval("set reported") == "old-name"

    def test_catch_sees_injected_x_errors(self, app, server):
        """Scripts can catch an X protocol error like any Tcl error —
        native failures never leak raw Python exceptions into eval."""
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request("create_window", error="BadWindow")
        assert app.interp.eval(
            "catch {frame .doomed} msg\nset msg").startswith("BadWindow")


class TestSeededFaultSoak:
    def _soak(self, seed):
        server = XServer()
        apps = [TkApp(server, name="soak%d" % n) for n in range(2)]
        for application in apps:
            application.interp.stdout = io.StringIO()
            _define_bgerror(application)
            application.sender.timeout_ms = 200
        plan = server.install_fault_plan(
            FaultPlan(seed=seed, error_rate=0.02, drop_rate=0.02,
                      delay_rate=0.03, delay_ms=10))
        a, b = apps
        for i in range(25):
            a.interp.eval("catch {button .b%d -text t%d}" % (i, i))
            a.interp.eval("catch {pack append . .b%d {top}}" % i)
            a.interp.eval("catch {send soak1 set shared %d}" % i)
            b.interp.eval("catch {destroy .b%d}\n"
                          "catch {frame .f%d -geometry 20x20}" % (i, i))
            pump_all(server)
        server.clear_fault_plan()
        pump_all(server)
        return plan, apps

    def test_soak_no_uncaught_escapes(self):
        """Under a seeded fault schedule, nothing escapes the dispatch
        loop: every injected fault is caught, reported, or recovered."""
        plan, apps = self._soak(seed=1337)
        assert plan.total_injected > 0
        for application in apps:
            assert not application.destroyed
            application.interp.eval("set ping 1")   # interp healthy

    def test_soak_is_deterministic(self):
        plan_a, _ = self._soak(seed=99)
        plan_b, _ = self._soak(seed=99)
        assert plan_a.log == plan_b.log
        assert plan_a.counters == plan_b.counters
