"""repro.obs — unified metrics, tracing, and profiling.

See :mod:`repro.obs.metrics`, :mod:`repro.obs.trace`, and
:mod:`repro.obs.profile` for the three pillars; the
:class:`Observability` hub in :mod:`repro.obs.core` ties them to a
virtual clock.  Inside the interpreter the same data is reachable via
the ``obs`` Tcl command and ``info metrics``.
"""

from .core import Observability
from .journal import Journal
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import Profile, profile
from .timeseries import TimeSeriesRecorder
from .trace import Span, Tracer, record_request, record_round_trip

__all__ = [
    "Observability",
    "Journal",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Profile", "profile",
    "TimeSeriesRecorder",
    "Span", "Tracer", "record_request", "record_round_trip",
]
