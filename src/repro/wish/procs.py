"""Simulated processes for the ``exec`` command.

The paper's browser script (Figure 9) runs three external programs:
``ls -a dir``, ``sh -c "browse dir &"`` (a recursive browser), and the
``mx`` editor.  This registry runs equivalents in-process — the
substitution documented in DESIGN.md — while keeping the Tcl-visible
behaviour (exec returns the program's standard output as a string).

Embedders can register additional programs and observe what was
spawned/edited, which is what the tests assert against.
"""

from __future__ import annotations

import os
import shlex
from typing import Callable, Dict, List, Optional

from ..tcl.errors import TclError

Program = Callable[["ProcessRegistry", List[str]], str]


class ProcessRegistry:
    """In-process stand-ins for the programs wish scripts exec."""

    def __init__(self):
        self.programs: Dict[str, Program] = {}
        #: Requests made through ``sh -c "... &"`` (observable by tests
        #: and by embedders that want to actually spawn something).
        self.background_commands: List[List[str]] = []
        #: Files handed to the ``mx`` editor.
        self.edited_files: List[str] = []
        #: Optional hook called for each background command.
        self.on_background: Optional[Callable[[List[str]], None]] = None
        self.register("ls", _program_ls)
        self.register("sh", _program_sh)
        self.register("mx", _program_mx)
        self.register("echo", _program_echo)
        self.register("cat", _program_cat)

    def register(self, name: str, program: Program) -> None:
        self.programs[name] = program

    def __call__(self, argv: List[str]) -> str:
        """The interp's exec_handler: run one command line."""
        if not argv:
            raise TclError("didn't specify command to execute")
        if argv[-1] == "&":
            self._spawn(argv[:-1])
            return ""
        return self.run(argv)

    def run(self, argv: List[str]) -> str:
        program = self.programs.get(argv[0])
        if program is None:
            raise TclError(
                'couldn\'t find "%s" to execute' % argv[0])
        return program(self, argv)

    def _spawn(self, argv: List[str]) -> None:
        self.background_commands.append(list(argv))
        if self.on_background is not None:
            self.on_background(list(argv))


def _program_ls(registry: ProcessRegistry, argv: List[str]) -> str:
    show_hidden = False
    paths: List[str] = []
    for arg in argv[1:]:
        if arg.startswith("-"):
            if "a" in arg:
                show_hidden = True
        else:
            paths.append(arg)
    directory = paths[0] if paths else "."
    try:
        names = sorted(os.listdir(directory))
    except OSError as error:
        raise TclError('ls: %s: %s' % (directory,
                                       error.strerror or error))
    if show_hidden:
        names = [".", ".."] + names
    else:
        names = [name for name in names if not name.startswith(".")]
    return "\n".join(names)


def _program_sh(registry: ProcessRegistry, argv: List[str]) -> str:
    """sh -c "command line": split and dispatch, honouring a trailing &."""
    if len(argv) >= 3 and argv[1] == "-c":
        words = shlex.split(argv[2])
        if words and words[-1] == "&":
            registry._spawn(words[:-1])
            return ""
        if words and words[-1].endswith("&"):
            words[-1] = words[-1][:-1]
            registry._spawn([word for word in words if word])
            return ""
        return registry.run(words)
    raise TclError("sh: only -c form is supported")


def _program_mx(registry: ProcessRegistry, argv: List[str]) -> str:
    """The mx editor: record which file the user asked to edit."""
    if len(argv) < 2:
        raise TclError("mx: no file given")
    registry.edited_files.append(argv[1])
    return ""


def _program_echo(registry: ProcessRegistry, argv: List[str]) -> str:
    return " ".join(argv[1:])


def _program_cat(registry: ProcessRegistry, argv: List[str]) -> str:
    out: List[str] = []
    for path in argv[1:]:
        try:
            with open(path, "r") as handle:
                out.append(handle.read())
        except OSError as error:
            raise TclError('cat: %s: %s' % (path,
                                            error.strerror or error))
    return "".join(out).rstrip("\n")
