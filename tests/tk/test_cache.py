"""Tests for the resource caches (paper section 3.3)."""

import pytest

from repro.tk.cache import CacheError, ResourceCache
from repro.x11 import Display, XServer


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def cache(server):
    return ResourceCache(Display(server))


class TestColorCache:
    def test_first_request_costs_round_trip(self, server, cache):
        before = server.round_trips
        cache.color("MediumSeaGreen")
        assert server.round_trips == before + 1

    def test_repeat_requests_are_free(self, server, cache):
        cache.color("MediumSeaGreen")
        before = server.round_trips
        for _ in range(100):
            cache.color("MediumSeaGreen")
        assert server.round_trips == before

    def test_shared_resource_is_identical(self, cache):
        assert cache.color("red") is cache.color("red")

    def test_different_names_different_colors(self, cache):
        assert cache.color("red").pixel != cache.color("blue").pixel

    def test_unknown_color_raises(self, cache):
        with pytest.raises(CacheError):
            cache.color("NotAColorAtAll")

    def test_reverse_lookup_returns_textual_name(self, cache):
        """Given an X resource id, Tk returns the textual name — this is
        how widgets report human-readable configuration."""
        color = cache.color("MediumSeaGreen")
        assert cache.name_of(color.pixel) == "MediumSeaGreen"


class TestFontCursorBitmapCaches:
    def test_font_shared(self, server, cache):
        font = cache.font("fixed")
        before = server.round_trips
        assert cache.font("fixed") is font
        assert server.round_trips == before

    def test_cursor_by_name(self, cache):
        cursor = cache.cursor("coffee_mug")
        assert cursor.name == "coffee_mug"
        assert cache.cursor("coffee_mug") is cursor

    def test_builtin_bitmap(self, cache):
        bitmap = cache.bitmap("star")
        assert (bitmap.width, bitmap.height) == (16, 16)

    def test_bitmap_from_file(self, cache, tmp_path):
        xbm = tmp_path / "star.xbm"
        xbm.write_text("#define star_width 24\n"
                       "#define star_height 18\n"
                       "static char star_bits[] = { 0x00 };\n")
        bitmap = cache.bitmap("@%s" % xbm)
        assert (bitmap.width, bitmap.height) == (24, 18)

    def test_missing_bitmap_file_raises(self, cache):
        with pytest.raises(CacheError):
            cache.bitmap("@/no/such/file.xbm")

    def test_gc_shared_for_same_values(self, cache):
        gc_a = cache.gc(foreground=1, font="fixed")
        gc_b = cache.gc(font="fixed", foreground=1)
        assert gc_a is gc_b

    def test_gc_differs_for_different_values(self, cache):
        assert cache.gc(foreground=1) is not cache.gc(foreground=2)


class TestCacheAblation:
    """With the cache disabled every request costs a round trip — the
    measurable basis for the paper's section 3.3 claim."""

    def test_disabled_cache_pays_every_time(self, server):
        cache = ResourceCache(Display(server), enabled=False)
        before = server.round_trips
        for _ in range(10):
            cache.color("red")
        assert server.round_trips == before + 10

    def test_enabled_cache_pays_once(self, server):
        cache = ResourceCache(Display(server), enabled=True)
        before = server.round_trips
        for _ in range(10):
            cache.color("red")
        assert server.round_trips == before + 1

    def test_hit_miss_statistics(self, cache):
        cache.color("red")
        cache.color("red")
        cache.color("blue")
        hits, misses = cache.stats()
        assert hits == 1
        assert misses == 2


class TestWidgetsShareResources:
    def test_many_widgets_one_allocation(self, app):
        """The common case: a few resources used in many widgets —
        only the first use of MediumSeaGreen talks to the server."""
        for index in range(20):
            app.interp.eval(
                "button .b%d -bg MediumSeaGreen -text x" % index)
            app.interp.eval("pack append . .b%d {top}" % index)
        app.update()
        green = app.cache.color("MediumSeaGreen")
        misses_for_green = app.cache._colors["MediumSeaGreen"] is green
        assert misses_for_green
        hits, _ = app.cache.stats()
        assert hits >= 19
