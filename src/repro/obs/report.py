"""Timeline and critical-path reports over dumped span trees.

A flight dump (:meth:`repro.obs.core.Observability.flight_dump`) or a
full ``obs dump`` carries its spans as a flat list of dicts.  This
module turns that list back into the causal forest and answers the
question a latency investigation actually asks: *where did the time
go* — split into the five phases a cross-boundary round trip passes
through::

    client   script/callback work on the client side of the wire
    queue    virtual ms buffered ops waited for the flush that sent them
    wire     transport overhead: frame encode/decode and batch framing
    handle   server-side request execution (the ``xhandle`` spans)
    reply    from the last handled request back to the client

Everything is virtual-clock arithmetic over recorded spans, so the
breakdown is deterministic and identical across transports — which is
exactly what ``benchmarks/trace_report.py`` gates in CI.

CLI::

    PYTHONPATH=src python -m repro.obs.report flight.json
    PYTHONPATH=src python -m repro.obs.report dump.json --no-timeline
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional

#: critical-path phases, in wire order
PHASES = ("client", "queue", "wire", "handle", "reply")


# ----------------------------------------------------------------------
# forest reconstruction (mirror of Tracer.tree over serialized spans)
# ----------------------------------------------------------------------

def build_forest(spans: List[dict]) -> List[dict]:
    """Rebuild the nested span forest from flat ``to_dict`` entries.

    Same policy as :meth:`repro.obs.trace.Tracer.tree`: children whose
    parent fell off the ring are re-rooted, marked ``orphaned`` for
    local spans and ``parent_evicted`` (explicit parent id kept) for
    cross-boundary ``link="wire"`` spans.
    """
    nodes: Dict[int, dict] = {}
    roots: List[dict] = []
    for span in spans:
        node = dict(span)
        node["children"] = []
        nodes[node["id"]] = node
    for span in spans:
        node = nodes[span["id"]]
        parent = nodes.get(span.get("parent"))
        if parent is not None:
            parent["children"].append(node)
        else:
            if span.get("parent") is not None:
                if span.get("link") == "wire":
                    node["parent_evicted"] = True
                else:
                    node["orphaned"] = True
            roots.append(node)
    roots.sort(key=lambda node: (node["start_ms"], node["id"]))
    for node in nodes.values():
        node["children"].sort(
            key=lambda child: (child["start_ms"], child["id"]))
    return roots


def extract_spans(data: dict) -> List[dict]:
    """The span list of a flight dump or a full ``obs dump``."""
    if "spans" in data:
        return data["spans"]
    trace = data.get("trace")
    if isinstance(trace, dict) and "spans" in trace:
        return trace["spans"]
    raise ValueError("no spans found (expected a flight dump or an "
                     "obs dump with a trace section)")


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------

def critical_path(roots: List[dict]) -> Dict[str, int]:
    """Phase totals (virtual ms) over a span forest.

    For each wire span: ``handle`` is the summed duration of its
    ``xhandle`` children, ``reply`` the gap from the last handled
    request back to the wire span's end (a wire span with no handle
    children — an untraced server, an evicted child — is all reply),
    and ``wire`` the remaining framing overhead.  ``queue`` sums the
    buffered wait carried on batch wire spans, which elapsed *before*
    the span opened.  ``client`` is everything in the root spans that
    is not inside a wire span.
    """
    totals = dict.fromkeys(PHASES, 0)
    root_ms = 0
    nested_wire_ms = 0

    def walk(node: dict, is_root: bool) -> None:
        nonlocal nested_wire_ms
        if node.get("kind") == "wire":
            duration = node.get("duration_ms", 0)
            handles = [child for child in node["children"]
                       if child.get("kind") == "xhandle"]
            handle = sum(child.get("duration_ms", 0)
                         for child in handles)
            if handles:
                reply = max(0, node["end_ms"]
                            - max(child["end_ms"] for child in handles))
            else:
                reply = duration
            totals["handle"] += handle
            totals["reply"] += reply
            totals["wire"] += max(0, duration - handle - reply)
            totals["queue"] += node.get("queue_ms", 0)
            if not is_root:
                nested_wire_ms += duration
        for child in node["children"]:
            walk(child, False)

    for root in roots:
        if root.get("kind") != "wire":
            root_ms += root.get("duration_ms", 0)
        walk(root, True)
    totals["client"] = max(0, root_ms - nested_wire_ms)
    totals["total"] = sum(totals[phase] for phase in PHASES)
    return totals


def format_critical_path(totals: Dict[str, int]) -> str:
    """The phase totals as an aligned table with percentages."""
    total = totals.get("total", 0)
    lines = ["CRITICAL PATH: %d virtual ms" % total]
    for phase in PHASES:
        value = totals.get(phase, 0)
        share = (100.0 * value / total) if total else 0.0
        lines.append("  %-8s %6d ms  %5.1f%%" % (phase, value, share))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# timelines
# ----------------------------------------------------------------------

def format_timeline(roots: List[dict], width: int = 48) -> str:
    """Root spans as aligned ``start..end`` bars (one line per root).

    Bars share one time axis spanning the forest, so concurrent
    sessions (fleet dumps) read as a gantt chart.
    """
    if not roots:
        return "TIMELINE: no spans"
    start = min(root["start_ms"] for root in roots)
    end = max(root["end_ms"] for root in roots)
    extent = max(1, end - start)
    lines = ["TIMELINE: %d roots, t=%d..%d" % (len(roots), start, end)]
    for root in roots:
        left = int((root["start_ms"] - start) * (width - 1) / extent)
        right = int((root["end_ms"] - start) * (width - 1) / extent)
        bar = " " * left + "#" * max(1, right - left + 1)
        label = "%s %s" % (root.get("kind", "?"), root.get("name", "?"))
        if root.get("widget"):
            label += " [%s]" % root["widget"]
        lines.append("  |%-*s| %6dms  %s"
                     % (width, bar[:width], root.get("duration_ms", 0),
                        label))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# structural comparison (the cross-transport identity gate)
# ----------------------------------------------------------------------

def structure(roots: List[dict]) -> List[dict]:
    """The forest with ids and clock readings stripped.

    What remains — kind, name, durations, request attribution, queue
    wait, cross-boundary links, child order — must be identical for
    one journal replayed over the loopback and socket transports.
    """
    def strip(node: dict) -> dict:
        out = {"kind": node.get("kind"), "name": node.get("name"),
               "duration_ms": node.get("duration_ms", 0)}
        for key in ("widget", "requests", "round_trips", "queue_ms",
                    "link", "parent_evicted", "orphaned"):
            if node.get(key):
                out[key] = node[key]
        out["children"] = [strip(child) for child in node["children"]]
        return out
    return [strip(root) for root in roots]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def render(data: dict, timeline: bool = True) -> str:
    roots = build_forest(extract_spans(data))
    sections = []
    if data.get("kind") == "flight":
        sections.append("FLIGHT: reason=%s  window=%dms  t=%dms"
                        % (data.get("reason"), data.get("window_ms", 0),
                           data.get("virtual_ms", 0)))
    if timeline:
        sections.append(format_timeline(roots))
    sections.append(format_critical_path(critical_path(roots)))
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = "usage: python -m repro.obs.report FILE [--no-timeline]"
    timeline = True
    path = None
    while argv:
        if argv[0] == "--no-timeline":
            timeline = False
            argv = argv[1:]
        elif path is None:
            path = argv[0]
            argv = argv[1:]
        else:
            print(usage)
            return 2
    if path is None:
        print(usage)
        return 2
    with open(path) as handle:
        data = json.load(handle)
    print(render(data, timeline=timeline))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["PHASES", "build_forest", "extract_spans", "critical_path",
           "format_critical_path", "format_timeline", "structure",
           "render", "main"]
