"""The span tracer: causal traces across the whole toolkit stack.

A *span* is one timed unit of work — a script evaluation, a command
invocation, a binding fire, an event dispatch, a ``send`` RPC — linked
to its parent so a button click reads as a tree::

    event ButtonPress [.b] 3ms
      binding <ButtonPress-1> [.b] 3ms
        eval {doClick} 3ms
          proc doClick 3ms
            cmd .b 2ms  x11: change_window_attributes=1 ...

Durations are *virtual* milliseconds from the simulated server clock
(one request ≈ one tick), so traces are deterministic and comparable
run to run.  Finished spans live in a bounded ring buffer.

X-request attribution works like a context propagation layer: started
tracers register in the module-level ``_ACTIVE`` list, and the server's
``_tick``/``round_trip`` hot paths check ``if _ACTIVE:`` — a single
falsy test when no one is tracing — before attributing the request to
whichever span is open on each active tracer.  *Wire mode* additionally
records every request server-wide (named tick, originating widget) in
the spirit of ``xmon``, even between spans.

Since the Display→XServer boundary became a byte-level wire
(:mod:`repro.x11.wire`), traces cross it: the transport opens a *wire
span* per frame (:func:`open_wire`), stamps its id into the frame's
trace-context field, and the server records a *handle span* per
request it executes under that id (:func:`record_handle`) — so a tree
reads client issue → wire → server handle, with identical structure on
the loopback and socket transports.  Wire and handle spans are
*synthetic*: they never join the open-span stack, so request
attribution still lands on the client span that issued the work.
Cross-boundary spans carry ``link="wire"`` and keep their explicit
parent id even when the parent has been evicted from the ring — they
are never silently re-rooted as if they were top-level work.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

#: Tracers currently started; consulted by the X server's hot paths.
_ACTIVE: List["Tracer"] = []

#: Default capacity of the finished-span ring buffer.
SPAN_RING = 4096

#: Default capacity of the wire-log ring buffer.
WIRE_RING = 8192


class Span:
    """One timed, attributed unit of work."""

    __slots__ = ("id", "kind", "name", "widget", "parent_id",
                 "start", "end", "requests", "round_trips",
                 "link", "queue_ms")

    def __init__(self, span_id: int, kind: str, name: str,
                 widget: Optional[str], parent_id: Optional[int],
                 start: int):
        self.id = span_id
        self.kind = kind
        self.name = name
        self.widget = widget
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.requests: Dict[str, int] = {}
        self.round_trips = 0
        #: "wire" on spans whose parent link crosses the client/server
        #: boundary (server handle spans, fault spans fired inside a
        #: traced request); None for ordinary same-side spans
        self.link: Optional[str] = None
        #: virtual ms the first op of a batch sat in the output buffer
        #: before the flush that carried it (wire spans only)
        self.queue_ms = 0

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        entry = {"id": self.id, "kind": self.kind, "name": self.name,
                 "parent": self.parent_id, "start_ms": self.start,
                 "end_ms": self.end, "duration_ms": self.duration}
        if self.widget:
            entry["widget"] = self.widget
        if self.requests:
            entry["requests"] = dict(sorted(self.requests.items()))
        if self.round_trips:
            entry["round_trips"] = self.round_trips
        if self.link is not None:
            entry["link"] = self.link
        if self.queue_ms:
            entry["queue_ms"] = self.queue_ms
        return entry


class Tracer:
    """Collects spans (and optionally the raw X wire) while started.

    ``begin``/``finish`` bracket a unit of work; the open-span stack
    provides parent links and request attribution.  The tracer is a
    no-op unless ``enabled`` — callers on hot paths are expected to
    guard with ``if tracer is not None and tracer.enabled:`` so the
    disabled cost is one attribute test.
    """

    def __init__(self, clock: Callable[[], int],
                 max_spans: int = SPAN_RING,
                 max_wire: int = WIRE_RING):
        self.clock = clock
        self.enabled = False
        self.wire = False
        self.spans: deque = deque(maxlen=max_spans)
        self.wire_log: deque = deque(maxlen=max_wire)
        self._stack: List[Span] = []
        self._next_id = 1
        #: open wire spans by propagated trace context; the context is
        #: the *first* active tracer's span id, shared as the lookup
        #: key by every tracer so frames carry one id regardless of
        #: how many tracers watch the session
        self._inflight: Dict[int, Span] = {}
        #: spans/wire entries silently pushed off the bounded rings —
        #: surfaced as ``obs.trace.evicted{ring=...}`` once bound
        self.evicted_spans = 0
        self.evicted_wire = 0
        self._m_evicted_spans = None
        self._m_evicted_wire = None
        #: called with the new enabled state on every start/stop, so
        #: instrumented hot paths (the interpreter's command loop) can
        #: keep a precomputed local flag instead of re-reading
        #: ``tracer.enabled`` on every invocation
        self.listeners: List[Callable[[bool], None]] = []

    def bind_metrics(self, registry) -> None:
        """Mirror ring evictions as ``obs.trace.evicted{ring=...}``.

        Counters are seeded from evictions recorded before binding, so
        the metric and the ``evicted_*`` attributes always agree.
        """
        self._m_evicted_spans = registry.counter("obs.trace.evicted",
                                                 ring="spans")
        self._m_evicted_spans.value = self.evicted_spans
        self._m_evicted_wire = registry.counter("obs.trace.evicted",
                                                ring="wire")
        self._m_evicted_wire.value = self.evicted_wire

    def _note_span_eviction(self) -> None:
        if len(self.spans) == self.spans.maxlen:
            self.evicted_spans += 1
            if self._m_evicted_spans is not None:
                self._m_evicted_spans.value += 1

    def _note_wire_eviction(self) -> None:
        if len(self.wire_log) == self.wire_log.maxlen:
            self.evicted_wire += 1
            if self._m_evicted_wire is not None:
                self._m_evicted_wire.value += 1

    # -- lifecycle -----------------------------------------------------

    def start(self, wire: bool = False) -> None:
        self.enabled = True
        self.wire = wire
        if self not in _ACTIVE:
            _ACTIVE.append(self)
        for listener in self.listeners:
            listener(True)

    def stop(self) -> None:
        self.enabled = False
        self.wire = False
        # Abandon any open spans: a stop inside a handler must not
        # leave dangling parents for the next start.
        self._stack = []
        self._inflight.clear()
        if self in _ACTIVE:
            _ACTIVE.remove(self)
        for listener in self.listeners:
            listener(False)

    def clear(self) -> None:
        self.spans.clear()
        self.wire_log.clear()
        self._stack = []
        self._inflight.clear()
        # Safe to reuse ids only because every ring is now empty: a
        # surviving span's explicit parent link must never alias a
        # later span that happens to get the same id.
        self._next_id = 1

    # -- span API ------------------------------------------------------

    def begin(self, kind: str, name: str,
              widget: Optional[str] = None) -> Span:
        parent = self._stack[-1] if self._stack else None
        if widget is None and parent is not None:
            widget = parent.widget
        span = Span(self._next_id, kind, name, widget,
                    parent.id if parent else None, self.clock())
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        span.end = self.clock()
        # Pop through in case an exception skipped inner finishes.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        # A span still open when the tracer stopped (e.g. the very
        # `obs trace stop` invocation) is dropped, not half-recorded.
        if self.enabled:
            self._note_span_eviction()
            self.spans.append(span)

    def begin_wire(self, name: str, queue_ms: int = 0) -> Span:
        """Open a wire span: the client edge of one outbound frame.

        Wire spans are synthetic — they parent under the open span but
        never join the stack, so request attribution keeps landing on
        the client span that issued the work.  The caller registers
        the span in :attr:`_inflight` under the propagated context and
        closes it via :func:`close_wire`.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, "wire", name,
                    parent.widget if parent else None,
                    parent.id if parent else None, self.clock())
        self._next_id += 1
        span.queue_ms = queue_ms
        return span

    # -- server-side attribution (called via _ACTIVE) ------------------

    def record_request(self, name: str) -> None:
        if self._stack:
            span = self._stack[-1]
            span.requests[name] = span.requests.get(name, 0) + 1
            widget = span.widget
        else:
            widget = None
        if self.wire:
            self._note_wire_eviction()
            self.wire_log.append((self.clock(), name, widget))

    def record_queued(self, name: str) -> None:
        """Attribute a buffered one-way request to the active span.

        With output buffering the wire write happens later (at flush),
        possibly under an unrelated span — but the *issuer* is the span
        that enqueued the request, so attribution happens here and the
        wire log entry at delivery time (:meth:`record_delivery`).
        """
        if self._stack:
            span = self._stack[-1]
            span.requests[name] = span.requests.get(name, 0) + 1

    def record_delivery(self, name: str) -> None:
        """Log a request delivered from a batch to the wire log only
        (it was attributed to its issuing span when enqueued)."""
        if self.wire:
            widget = self._stack[-1].widget if self._stack else None
            self._note_wire_eviction()
            self.wire_log.append((self.clock(), name, widget))

    def record_round_trip(self) -> None:
        if self._stack:
            self._stack[-1].round_trips += 1

    # -- output --------------------------------------------------------

    def tree(self) -> List[Dict[str, object]]:
        """Finished spans as nested dicts (roots in start order).

        The spans deque is bounded: when a long session evicts a parent
        span, its surviving children are *re-rooted* rather than
        dropped, and marked ``orphaned`` so a reader can tell a true
        root from a child whose ancestry fell off the ring.
        """
        nodes = {}
        roots = []
        for span in self.spans:
            node = span.to_dict()
            node["children"] = []
            nodes[span.id] = node
        for span in self.spans:
            node = nodes[span.id]
            parent = nodes.get(span.parent_id)
            if parent is not None:
                parent["children"].append(node)
            else:
                if span.parent_id is not None:
                    if span.link == "wire":
                        # Cross-boundary spans keep their explicit
                        # parent id (``parent`` in the dict) instead of
                        # being re-rooted as if they were local work;
                        # ids are never reused while rings are
                        # non-empty, so the link cannot alias.
                        node["parent_evicted"] = True
                    else:
                        node["orphaned"] = True
                roots.append(node)
        # The deque is in *finish* order (children before parents);
        # present roots in start order, as the docstring promises.
        roots.sort(key=lambda node: (node["start_ms"], node["id"]))
        for node in nodes.values():
            node["children"].sort(
                key=lambda child: (child["start_ms"], child["id"]))
        return roots

    def format_tree(self) -> str:
        """The span tree as indented text (``obs trace dump``)."""
        lines = []
        total_requests = sum(sum(span.requests.values())
                             for span in self.spans)
        total_round_trips = sum(span.round_trips for span in self.spans)
        lines.append("TRACE: %d spans, %d x11 requests, %d round trips"
                     % (len(self.spans), total_requests,
                        total_round_trips))

        def emit(node, depth):
            pad = "  " * depth
            widget = " [%s]" % node["widget"] if node.get("widget") else ""
            head = "%s%s %s%s %dms" % (pad, node["kind"], node["name"],
                                       widget, node["duration_ms"])
            if node.get("round_trips"):
                head += " %d-rt" % node["round_trips"]
            if node.get("queue_ms"):
                head += " queue=%dms" % node["queue_ms"]
            if node.get("orphaned"):
                head += " (orphaned: parent span evicted)"
            if node.get("parent_evicted"):
                head += " (cross-boundary: parent %d evicted)" \
                    % node["parent"]
            lines.append(head)
            if node.get("requests"):
                lines.append("%s  x11: %s" % (pad, " ".join(
                    "%s=%d" % item
                    for item in sorted(node["requests"].items()))))
            for child in node["children"]:
                emit(child, depth + 1)

        for root in self.tree():
            emit(root, 1)
        return "\n".join(lines)

    def format_wire(self) -> str:
        """The wire log as ``tick  request  widget`` lines."""
        lines = ["WIRE: %d requests" % len(self.wire_log)]
        for tick, name, widget in self.wire_log:
            lines.append("%8d  %-28s %s" % (tick, name, widget or "-"))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spans": [span.to_dict() for span in self.spans],
            "wire": [{"tick": tick, "request": name, "widget": widget}
                     for tick, name, widget in self.wire_log],
        }


def record_request(name: str) -> None:
    """Attribute one named X request to every active tracer."""
    for tracer in _ACTIVE:
        tracer.record_request(name)


def record_queued(name: str) -> None:
    """Attribute one buffered (not yet delivered) request."""
    for tracer in _ACTIVE:
        tracer.record_queued(name)


def record_delivery(name: str) -> None:
    """Wire-log one request delivered as part of a batch."""
    for tracer in _ACTIVE:
        tracer.record_delivery(name)


def record_round_trip() -> None:
    """Attribute one server round trip to every active tracer."""
    for tracer in _ACTIVE:
        tracer.record_round_trip()


# ----------------------------------------------------------------------
# cross-boundary propagation (transport + server hooks)
# ----------------------------------------------------------------------

def open_wire(name: str, queue_ms: int = 0):
    """Open a wire span in every active tracer for one outbound frame.

    Returns ``(ctx, pairs)``: ``ctx`` is the propagated trace context
    (the first tracer's wire-span id, stamped into the frame by the
    transport; None when no tracer is active) and ``pairs`` the
    ``(tracer, span)`` list :func:`close_wire` needs.  Every tracer
    registers its own span under the *shared* context, so a single
    on-the-wire id resolves to the right span in each tracer — tracer
    identity never leaks into the bytes, keeping traced wire traffic
    identical run to run regardless of how many tracers watch.
    """
    ctx = None
    pairs = []
    for tracer in _ACTIVE:
        span = tracer.begin_wire(name, queue_ms)
        if ctx is None:
            ctx = span.id
        tracer._inflight[ctx] = span
        pairs.append((tracer, span))
    return ctx, pairs


def close_wire(ctx, pairs) -> None:
    """Close the wire spans of one frame once its reply is in."""
    for tracer, span in pairs:
        tracer._inflight.pop(ctx, None)
        span.end = tracer.clock()
        # Mirror Tracer.finish: a tracer stopped mid-flight drops the
        # span rather than half-recording it.
        if tracer.enabled:
            tracer._note_span_eviction()
            tracer.spans.append(span)


def record_handle(ctx: int, name: str, start: int, end: int) -> None:
    """Record one server-side handle span under a propagated context.

    Called from the server's ``_tick`` when the frame being handled
    carried a trace context.  The span is complete on arrival (the
    tick *is* the handling) and parents under each tracer's own
    in-flight wire span for ``ctx``.  It does not populate
    ``Span.requests`` — the request was already attributed to its
    issuing client span — so request counts never double-count.
    """
    for tracer in _ACTIVE:
        wire_span = tracer._inflight.get(ctx)
        if wire_span is None:
            continue
        span = Span(tracer._next_id, "xhandle", name, wire_span.widget,
                    wire_span.id, start)
        tracer._next_id += 1
        span.end = end
        span.link = "wire"
        tracer._note_span_eviction()
        tracer.spans.append(span)


def record_fault(action: str, detail: str,
                 ctx: Optional[int] = None) -> None:
    """Record one fault-plan action as a zero-duration span.

    Parents under the in-flight wire span when the fault fired inside
    a traced request (``ctx`` from the server), else under the open
    client span, else as a root.
    """
    for tracer in _ACTIVE:
        parent_id = None
        widget = None
        link = None
        if ctx is not None:
            wire_span = tracer._inflight.get(ctx)
            if wire_span is not None:
                parent_id = wire_span.id
                widget = wire_span.widget
                link = "wire"
        if parent_id is None and tracer._stack:
            top = tracer._stack[-1]
            parent_id = top.id
            widget = top.widget
        name = "%s %s" % (action, detail) if detail else action
        span = Span(tracer._next_id, "fault", name, widget, parent_id,
                    tracer.clock())
        tracer._next_id += 1
        span.link = link
        tracer._note_span_eviction()
        tracer.spans.append(span)


__all__ = ["Span", "Tracer", "record_request", "record_queued",
           "record_delivery", "record_round_trip", "open_wire",
           "close_wire", "record_handle", "record_fault",
           "_ACTIVE", "SPAN_RING", "WIRE_RING"]
