"""Quickstart: the paper's section 4 example, end to end.

Creates a Tk application on a simulated X display, builds the
"Hello, world" button from the paper, clicks it with the simulated
pointer, reconfigures it at run time, and prints a screen dump.

Run:  python examples/quickstart.py
"""

import io

from repro.tk import TkApp
from repro.x11 import Renderer, XServer


def main():
    server = XServer()
    app = TkApp(server, name="quickstart")
    output = io.StringIO()
    app.interp.stdout = output

    # The widget creation command from section 4 of the paper.
    app.interp.eval(r'button .hello -bg Red -text "Hello, world" '
                    r'-command "print Hello!\n"')
    app.interp.eval("pack append . .hello {top expand fill}")
    app.update()

    print("widget command created:",
          ".hello" in app.interp.commands)
    print("geometry:", app.interp.eval("winfo geometry .hello"))

    # Click the button with the simulated pointer.
    window = app.window(".hello")
    x, y = window.root_position()
    server.warp_pointer(x + 5, y + 5)
    server.press_button(1)
    server.release_button(1)
    app.update()
    print("button printed:", repr(output.getvalue()))

    # "The first command causes the button to change colors back and
    # forth a few times.  The second resets some configuration options."
    app.interp.eval(".hello flash")
    app.interp.eval(".hello configure -bg PalePink1 -relief sunken")
    app.update()
    print("new background:", app.interp.eval(".hello cget -bg"))
    print("configure -bg entry:", app.interp.eval(".hello configure -bg"))

    # Everything is introspectable from Tcl, including the interface.
    print("children of . :", app.interp.eval("winfo children ."))

    print()
    print("screen dump:")
    print(Renderer(server, cell_width=6, cell_height=13)
          .render_window(app.main.id))


if __name__ == "__main__":
    main()
