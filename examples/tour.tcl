#!wish -f
# A tour of the complete widget set, written entirely in Tcl (no
# application-specific C/Python code at all — the paper's section 5
# point about building applications as wish scripts).

wm title . "Widget tour"

# -- the button family -------------------------------------------------
frame .buttons
label .buttons.title -text "Buttons"
button .buttons.plain -text "Press me" -command {set pressed 1}
checkbutton .buttons.check -text "Enable gadgets" -variable gadgets
radiobutton .buttons.r1 -text "Left" -variable side -value left
radiobutton .buttons.r2 -text "Right" -variable side -value right
pack append .buttons .buttons.title {top fillx} \
    .buttons.plain {top} .buttons.check {top} \
    .buttons.r1 {left expand} .buttons.r2 {left expand}

# -- listbox and scrollbar, composed by command strings -----------------
frame .listpane
listbox .listpane.list -scroll ".listpane.sb set" -geometry 16x5
scrollbar .listpane.sb -command ".listpane.list view"
pack append .listpane .listpane.sb {right filly} \
    .listpane.list {left expand fill}
foreach item {alpha beta gamma delta epsilon zeta eta theta} {
    .listpane.list insert end $item
}

# -- entry with a live character count ----------------------------------
frame .entrypane
entry .entrypane.input
label .entrypane.count -text "0 chars"
pack append .entrypane .entrypane.input {left expand fillx} \
    .entrypane.count {right}
bind .entrypane.input <Key> {
    .entrypane.count configure \
        -text "[string length [.entrypane.input get]] chars"
}

# -- scale driving a message --------------------------------------------
scale .volume -from 0 -to 11 -label "Volume" -command setVolume
message .caption -width 180 -text "Volume is 0"
proc setVolume {v} {
    .caption configure -text "Volume is $v"
}

# -- menu ---------------------------------------------------------------
menubutton .filebtn -text "File" -menu .filemenu
menu .filemenu
.filemenu add command -label "Open" -command {set did open}
.filemenu add command -label "Save" -command {set did save}
.filemenu add separator
.filemenu add checkbutton -label "Autosave" -variable autosave

# -- canvas -------------------------------------------------------------
canvas .art -width 160 -height 60
.art create rectangle 10 10 60 50 -fill MediumSeaGreen -tags box
.art create oval 70 10 120 50 -outline black
.art create text 130 25 -text hi
.art bind box <Button-1> {.art move box 5 0}

# -- text ---------------------------------------------------------------
text .doc -width 24 -height 4
.doc insert end "Edit me.\nTags mark ranges."
.doc tag configure marked -background yellow
.doc tag add marked 2.0 2.4

# -- overall layout -----------------------------------------------------
pack append . .buttons {top fillx} .listpane {top fillx} \
    .entrypane {top fillx} .volume {top fillx} .caption {top fillx} \
    .filebtn {top} .art {top} .doc {top fillx}

# A binding to leave the tour.
bind all <Control-q> {destroy .}
