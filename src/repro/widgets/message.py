"""Message widget: displays multi-line text with word wrap.

The message widget wraps its ``-text`` at word boundaries.  If
``-width`` is given the lines are wrapped to that pixel width;
otherwise the widget picks a width so that the displayed text's
width:height ratio approximates ``-aspect`` (100 * width / height),
exactly as in Tk.
"""

from __future__ import annotations

from typing import List, Tuple

from ..tk.widget import OptionSpec, Widget


class Message(Widget):
    widget_class = "Message"
    option_specs = (
        OptionSpec("anchor", "anchor", "Anchor", "center"),
        OptionSpec("aspect", "aspect", "Aspect", "150"),
        OptionSpec("background", "background", "Background", "#dddddd",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
                   synonyms=("bd",)),
        OptionSpec("font", "font", "Font", "fixed"),
        OptionSpec("foreground", "foreground", "Foreground", "black",
                   synonyms=("fg",)),
        OptionSpec("justify", "justify", "Justify", "left"),
        OptionSpec("padx", "padX", "Pad", "2"),
        OptionSpec("pady", "padY", "Pad", "2"),
        OptionSpec("relief", "relief", "Relief", "flat"),
        OptionSpec("text", "text", "Text", ""),
        OptionSpec("width", "width", "Width", "0"),
    )

    # -- wrapping -------------------------------------------------------

    def wrapped_lines(self) -> List[str]:
        font = self.font()
        width_px = self.int_option("width")
        if width_px > 0:
            return self._wrap_to(width_px, font)
        aspect = max(10, self.int_option("aspect"))
        # Choose the narrowest width whose wrapped shape is at least as
        # wide relative to its height as the aspect asks for.
        text_px = font.text_width(self.options["text"])
        if text_px == 0:
            return [""]
        lower = font.char_width * 8
        width = max(lower, int((text_px * font.line_height *
                                aspect / 100.0) ** 0.5))
        previous: List[str] = []
        while True:
            lines = self._wrap_to(width, font)
            height = len(lines) * font.line_height
            actual_width = max(font.text_width(line) for line in lines)
            if height == 0 or 100 * actual_width / max(1, height) >= aspect \
                    or len(lines) == 1 or lines == previous:
                # lines == previous: explicit newlines put a ceiling on
                # how wide the text can get; widening further is futile.
                return lines
            previous = lines
            width += font.char_width * 4

    def _wrap_to(self, width_px: int, font) -> List[str]:
        max_chars = max(1, width_px // font.char_width)
        lines: List[str] = []
        for paragraph in self.options["text"].split("\n"):
            current = ""
            for word in paragraph.split(" "):
                candidate = word if not current else current + " " + word
                if len(candidate) <= max_chars or not current:
                    current = candidate
                else:
                    lines.append(current)
                    current = word
            lines.append(current)
        return lines or [""]

    # -- geometry ----------------------------------------------------------

    def preferred_size(self) -> Tuple[int, int]:
        font = self.font()
        lines = self.wrapped_lines()
        border = self.int_option("borderwidth")
        width = max(font.text_width(line) for line in lines) + \
            2 * self.int_option("padx") + 2 * border
        height = len(lines) * font.line_height + \
            2 * self.int_option("pady") + 2 * border
        return (max(1, width), max(1, height))

    # -- drawing ----------------------------------------------------------

    def draw(self) -> None:
        display = self.app.display
        font = self.font()
        gc = self.app.cache.gc(foreground=self.color("foreground"),
                               font=font.name)
        pad_x = self.int_option("padx") + self.int_option("borderwidth")
        pad_y = self.int_option("pady") + self.int_option("borderwidth")
        justify = self.options["justify"]
        inner_width = self.window.width - 2 * pad_x
        for line_number, line in enumerate(self.wrapped_lines()):
            line_px = font.text_width(line)
            if justify == "center":
                x = pad_x + max(0, (inner_width - line_px) // 2)
            elif justify == "right":
                x = pad_x + max(0, inner_width - line_px)
            else:
                x = pad_x
            display.draw_string(self.window.id, gc, x,
                                pad_y + line_number * font.line_height,
                                line)
        self.draw_border()
