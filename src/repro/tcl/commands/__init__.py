"""Built-in Tcl commands.

These are the generic facilities of the language (paper Figure 6:
"built-in commands are registered automatically").  They use exactly the
same registration interface as application-specific commands, so an
application can delete or rename any of them.
"""

from __future__ import annotations

from . import (control, fileio, info, io, listcmds, obscmd, regexpcmds,
               strings, tracecmd, variables)


def register_builtins(interp) -> None:
    """Register every built-in command in ``interp``."""
    for module in (control, variables, strings, listcmds, info, io,
                   fileio, regexpcmds, tracecmd, obscmd):
        module.register(interp)
