"""Table II — execution times for selected operations in Tk.

| Operation                           | Paper (DS3100) |
|-------------------------------------|----------------|
| Simple Tcl command (set a 1)        | 68 us          |
| Send empty command                  | 15 ms          |
| Create, display, delete 50 buttons  | 440 ms         |

We reproduce the three rows with pytest-benchmark and assert the
*shape*: the Tcl command is orders of magnitude cheaper than a send,
and creating/displaying/deleting 50 buttons dwarfs a single send.
"""

import io

import pytest

from repro.tk import TkApp
from repro.x11 import XServer

from conftest import print_table

PAPER_ROWS = [
    ("Simple Tcl command (set a 1)", "68 us"),
    ("Send empty command", "15 ms"),
    ("Create, display, delete 50 buttons", "440 ms"),
]

#: Shared across the three benchmarks so the summary can compare them.
_measured = {}


@pytest.fixture(scope="module")
def send_pair():
    server = XServer()
    sender = TkApp(server, name="sender")
    receiver = TkApp(server, name="receiver")
    sender.interp.stdout = io.StringIO()
    receiver.interp.stdout = io.StringIO()
    return sender, receiver


def test_simple_tcl_command(benchmark):
    """Table II row 1: evaluating ``set a 1``."""
    from repro.tcl import Interp
    interp = Interp()
    result = benchmark(interp.eval, "set a 1")
    assert result == "1"
    _measured["set"] = benchmark.stats.stats.mean


def test_send_empty_command(benchmark, send_pair):
    """Table II row 2: a full send round trip with an empty command."""
    sender, receiver = send_pair

    def send_empty():
        return sender.interp.eval('send receiver ""')

    result = benchmark(send_empty)
    assert result == ""
    _measured["send"] = benchmark.stats.stats.mean


def test_create_display_delete_50_buttons(benchmark):
    """Table II row 3: 50 buttons created, packed, displayed, destroyed."""
    app = TkApp(XServer(), name="buttons")
    app.interp.stdout = io.StringIO()

    def fifty_buttons():
        for index in range(50):
            app.interp.eval(
                'button .b%d -text "Button %d" -command {set pressed %d}'
                % (index, index, index))
            app.interp.eval("pack append . .b%d {top}" % index)
        app.update()                      # display them all
        for index in range(50):
            app.interp.eval("destroy .b%d" % index)
        app.update()

    benchmark(fifty_buttons)
    _measured["buttons"] = benchmark.stats.stats.mean


def test_table2_shape(benchmark):
    """Assert the ordering the paper reports and print the table."""
    benchmark(lambda: None)
    if len(_measured) < 3:
        pytest.skip("run the whole file to collect all three rows")
    set_s = _measured["set"]
    send_s = _measured["send"]
    buttons_s = _measured["buttons"]
    rows = []
    for (operation, paper), measured in zip(
            PAPER_ROWS, (set_s, send_s, buttons_s)):
        rows.append((operation, paper, "%.3f ms" % (measured * 1e3)))
    print_table("Table II: operation timings (paper vs measured)",
                ("Operation", "Paper", "Measured"), rows)
    # Shape: set << send << 50 buttons, with the same orders of
    # magnitude of separation the paper shows (68us : 15ms : 440ms).
    assert set_s * 10 < send_s, "a Tcl command should be >>10x " \
        "cheaper than a send"
    assert send_s < buttons_s, "50 buttons should cost more than one send"
    assert set_s * 100 < buttons_s
