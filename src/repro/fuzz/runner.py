"""Drive fuzz scenarios through the real TkApp/XServer stack.

The runner is deliberately a thin composition of existing machinery:
:func:`repro.obs.replay.start_recording` attaches the journal,
:func:`repro.obs.replay.apply_input` executes every step (the *same*
executor :func:`replay_journal` uses, so recording and replay cannot
drift apart), and :mod:`repro.fuzz.oracles` checks the invariants
after each step.  A scenario's journal is its durable form — see
:func:`scenario_from_journal` for the inverse.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.journal import Journal
from ..obs.replay import _build_app, apply_input, start_recording
from . import oracles
from .gen import Scenario

#: Journal ring size for fuzz sessions — large enough that no session
#: wraps (a wrapped ring would break the byte-identity oracle).
FUZZ_RING = 262144

#: Input kinds the runner journals itself (raw device inputs are
#: journaled by the server's own hooks).
LOOP_KINDS = ("update", "advance", "eval", "new_app")


class FuzzResult:
    """Outcome of one scenario run."""

    def __init__(self, scenario: Scenario, journal: Journal,
                 violations: List[oracles.Violation], steps_run: int):
        self.scenario = scenario
        self.journal = journal
        self.violations = violations
        self.steps_run = steps_run

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> set:
        return {violation.kind for violation in self.violations}

    def first_step(self) -> Optional[int]:
        """Index of the earliest step tied to a violation, if any."""
        steps = [violation.step for violation in self.violations
                 if violation.step is not None]
        return min(steps) if steps else None

    def report(self) -> str:
        lines = ["FUZZ seed=%d: %s  (%d/%d steps, %d journal entries%s)"
                 % (self.scenario.seed,
                    "CLEAN" if self.ok else "VIOLATED",
                    self.steps_run, len(self.scenario.steps),
                    len(self.journal),
                    ", planted=%s" % self.scenario.planted
                    if self.scenario.planted else "")]
        for violation in self.violations:
            lines.append("  " + violation.format())
        return "\n".join(lines)


def run_scenario(scenario: Scenario, stop_on_violation: bool = True,
                 check_replay: bool = True) -> FuzzResult:
    """Run one scenario under the journal with oracles after each step.

    ``check_replay`` gates the end-of-session byte-identity replay
    (the most expensive oracle); the shrinker disables it while
    minimizing violations the per-step oracles catch.
    """
    from ..x11.faults import FaultPlan
    from ..x11.xserver import XServer

    server = XServer()
    plan = None
    if scenario.fault_spec:
        plan = server.install_fault_plan(
            FaultPlan.from_spec(scenario.fault_spec))
    journal = start_recording(
        server, name=scenario.name, script=scenario.setup_script,
        maxlen=FUZZ_RING, fault_plan=scenario.fault_spec,
        planted=scenario.planted, **scenario.flags)
    flags = scenario.flags
    violations: List[oracles.Violation] = []
    app_clients: Dict[str, int] = {}
    faulted = plan is not None
    disconnected = plan.disconnected_clients if plan is not None \
        else set()
    steps_run = 0
    try:
        try:
            app = _build_app(server, scenario.name,
                             scenario.setup_script,
                             flags.get("cache_enabled", True),
                             flags.get("compile_enabled", True),
                             flags.get("buffering_enabled", True),
                             flags.get("bytecode_enabled", True))
        except Exception as error:
            app = None
            violations.extend(oracles.classify_swallowed(
                [("new_app", error)], -1, faulted))
        if app is not None:
            app_clients[app.name] = app.display.client.number
            for index, (kind, args) in enumerate(scenario.steps):
                steps_run = index + 1
                swallowed: list = []
                args = list(args)
                if kind in LOOP_KINDS:
                    journal.input(kind, args)
                created = apply_input(server, app, kind, args,
                                      flags=flags, swallowed=swallowed)
                if created is not None:
                    app_clients[created.name] = \
                        created.display.client.number
                violations.extend(oracles.classify_swallowed(
                    swallowed, index, faulted))
                violations.extend(oracles.check_census(
                    server, index, disconnected, app_clients))
                if violations and stop_on_violation:
                    break
    finally:
        server.detach_journal()
        journal.close_sink()
        for extra in list(getattr(server, "apps", [])):
            if not extra.destroyed:
                extra.destroy()
    violations.extend(oracles.check_dead_client_requests(journal))
    if check_replay and not violations:
        violations.extend(oracles.check_replay_identity(journal))
    if violations:
        # Forensics for the failure triage: the last virtual seconds
        # of the server hub's telemetry, saved only when a flight-dump
        # directory is configured (see Observability.flight_autodump).
        server.obs.flight_autodump(
            "oracle-%s" % sorted({violation.kind
                                  for violation in violations})[0])
    return FuzzResult(scenario, journal, violations, steps_run)


def scenario_from_journal(journal: Journal) -> Scenario:
    """Rebuild the scenario a journal records (``--repro``'s loader).

    The journal header carries the setup script, ablation flags, fault
    plan, and planted-bug name; the input entries are the steps.  The
    reconstruction is exact because fuzz steps *are* journal inputs.
    """
    header = journal.meta or {}
    steps = [(name, list(args)) for name, args in journal.inputs()]
    return Scenario(
        seed=0, steps=steps,
        setup_script=header.get("script") or "",
        flags=dict(header.get("flags") or {}),
        fault_spec=header.get("fault_plan"),
        planted=header.get("planted"),
        name=header.get("name") or "fuzz")


__all__ = ["FuzzResult", "run_scenario", "scenario_from_journal",
           "FUZZ_RING"]
