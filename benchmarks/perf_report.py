"""Interpreter performance report: the repo's persisted perf trajectory.

Runs the hot-path microbenchmarks (simple command, proc call, expr
loop, binding dispatch, 50-button churn) and writes ``BENCH_interp.json``
at the repository root in a stable schema::

    {"<bench>": {"mean_us": <float>, "ops_per_sec": <float>}}

The ``*_nocompile`` rows run the same workload on an
``Interp(compile_enabled=False)`` ablation, so the file itself
documents what the compile-once pipeline (src/repro/tcl/compile.py)
buys on this machine.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py          # regenerate
    PYTHONPATH=src python benchmarks/perf_report.py --check  # CI gate

``--check`` re-measures and exits non-zero if any benchmark shared
with the committed ``BENCH_interp.json`` regressed more than
``CHECK_TOLERANCE`` (new mean > committed mean * 1.3), so perf
regressions fail the build the way semantic regressions do.
"""

import io
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.tcl import Interp
from repro.tk import TkApp
from repro.x11 import XServer
from repro.x11 import events as ev

BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_interp.json")

#: --check fails when a mean regresses past committed * (1 + tolerance).
CHECK_TOLERANCE = 0.30

#: (repeats, min seconds per repeat) per measurement; the best repeat
#: is reported, which is the standard way to suppress scheduler noise.
_REPEATS = 5
_MIN_TIME = 0.08


def _measure(func) -> float:
    """Best-of-N mean seconds per call of ``func``."""
    func()                                   # warm caches
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            func()
        elapsed = time.perf_counter() - start
        if elapsed >= _MIN_TIME:
            break
        number *= 4
    best = elapsed / number
    for _ in range(_REPEATS - 1):
        start = time.perf_counter()
        for _ in range(number):
            func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / number)
    return best


def _fresh_app():
    app = TkApp(XServer(), name="bench")
    app.interp.stdout = io.StringIO()
    return app


# ---------------------------------------------------------------------------
# benchmark workloads
# ---------------------------------------------------------------------------

def bench_simple_command():
    """Table II row 1: ``set a 1``."""
    interp = Interp()
    return _measure(lambda: interp.eval("set a 1"))


def bench_simple_command_nocompile():
    interp = Interp(compile_enabled=False)
    return _measure(lambda: interp.eval("set a 1"))


def bench_proc_call():
    """A two-argument proc call (compiled body cached on the Proc)."""
    interp = Interp()
    interp.eval("proc add {x y} {expr {$x + $y}}")
    return _measure(lambda: interp.eval("add 19 23"))


def bench_proc_call_bytecode_off():
    interp = Interp(bytecode_enabled=False)
    interp.eval("proc add {x y} {expr {$x + $y}}")
    return _measure(lambda: interp.eval("add 19 23"))


def bench_expr_loop():
    """100 iterations of ``while {$i < 100} {incr i}``."""
    interp = Interp()
    script = "set i 0\nwhile {$i < 100} {incr i}"
    return _measure(lambda: interp.eval(script))


def bench_expr_loop_nocompile():
    interp = Interp(compile_enabled=False)
    script = "set i 0\nwhile {$i < 100} {incr i}"
    return _measure(lambda: interp.eval(script))


def bench_expr_loop_bytecode_off():
    interp = Interp(bytecode_enabled=False)
    script = "set i 0\nwhile {$i < 100} {incr i}"
    return _measure(lambda: interp.eval(script))


_FOREACH_SCRIPT = ("set total 0\n"
                   "foreach x {1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 "
                   "17 18 19 20} {set total [expr {$total + $x}]}")


def bench_foreach_list():
    """foreach over a 20-element literal list with an expr body."""
    interp = Interp()
    return _measure(lambda: interp.eval(_FOREACH_SCRIPT))


def bench_foreach_list_bytecode_off():
    interp = Interp(bytecode_enabled=False)
    return _measure(lambda: interp.eval(_FOREACH_SCRIPT))


def bench_binding_dispatch():
    """One key event routed through BindingTable.dispatch."""
    app = _fresh_app()
    app.interp.eval("frame .x -geometry 60x60")
    app.interp.eval("pack append . .x {top}")
    app.update()
    app.interp.eval("bind .x q {set pressed 1}")
    window = app.window(".x")
    event = ev.Event(ev.KEY_PRESS, window=window.id, keysym="q",
                     keychar="q")
    return _measure(lambda: app.bindings.dispatch(window, event))


def bench_button_churn_50():
    """Table II row 3: create, display, and delete 50 buttons."""
    app = _fresh_app()

    def fifty_buttons():
        for index in range(50):
            app.interp.eval(
                'button .b%d -text "Button %d" -command {set pressed %d}'
                % (index, index, index))
            app.interp.eval("pack append . .b%d {top}" % index)
        app.update()
        for index in range(50):
            app.interp.eval("destroy .b%d" % index)
        app.update()

    return _measure(fifty_buttons)


BENCHMARKS = [
    ("simple_command", bench_simple_command),
    ("simple_command_nocompile", bench_simple_command_nocompile),
    ("proc_call", bench_proc_call),
    ("proc_call_bytecode_off", bench_proc_call_bytecode_off),
    ("expr_loop", bench_expr_loop),
    ("expr_loop_nocompile", bench_expr_loop_nocompile),
    ("expr_loop_bytecode_off", bench_expr_loop_bytecode_off),
    ("foreach_list", bench_foreach_list),
    ("foreach_list_bytecode_off", bench_foreach_list_bytecode_off),
    ("binding_dispatch", bench_binding_dispatch),
    ("button_churn_50", bench_button_churn_50),
]

#: Absolute ceilings (µs) enforced by ``--check`` in addition to the
#: no-regression rule: the bytecode VM's acceptance targets.
TARGETS = {
    "proc_call": 3.5,
    "expr_loop": 250.0,
}


def run_benchmarks() -> dict:
    report = {}
    for name, func in BENCHMARKS:
        seconds = func()
        report[name] = {
            "mean_us": round(seconds * 1e6, 3),
            "ops_per_sec": round(1.0 / seconds, 1),
        }
        print("%-28s %12.3f us  %14.1f ops/s"
              % (name, seconds * 1e6, 1.0 / seconds))
    return report


def check(report: dict) -> int:
    """Compare a fresh report against the committed BENCH_interp.json."""
    if not os.path.exists(BENCH_FILE):
        print("error: %s not committed; run perf_report.py first"
              % BENCH_FILE)
        return 1
    with open(BENCH_FILE) as handle:
        committed = json.load(handle)
    failures = []
    for name, stats in committed.items():
        if name not in report:
            continue
        old_mean = stats["mean_us"]
        new_mean = report[name]["mean_us"]
        limit = old_mean * (1.0 + CHECK_TOLERANCE)
        status = "ok" if new_mean <= limit else "REGRESSED"
        print("%-28s committed %10.3f us  now %10.3f us  %s"
              % (name, old_mean, new_mean, status))
        if new_mean > limit:
            failures.append(name)
    for name, ceiling in sorted(TARGETS.items()):
        if name not in report:
            continue
        new_mean = report[name]["mean_us"]
        status = "ok" if new_mean <= ceiling else "OVER TARGET"
        print("%-28s target    %10.3f us  now %10.3f us  %s"
              % (name, ceiling, new_mean, status))
        if new_mean > ceiling:
            failures.append("%s (target %.1fus)" % (name, ceiling))
    if failures:
        print("FAIL: regression >%d%% or target miss in: %s"
              % (int(CHECK_TOLERANCE * 100), ", ".join(failures)))
        return 1
    print("OK: no benchmark regressed more than %d%% and all "
          "absolute targets hold" % int(CHECK_TOLERANCE * 100))
    return 0


def main(argv) -> int:
    checking = "--check" in argv
    report = run_benchmarks()
    ratio = (report["simple_command_nocompile"]["mean_us"]
             / report["simple_command"]["mean_us"])
    loop_ratio = (report["expr_loop_nocompile"]["mean_us"]
                  / report["expr_loop"]["mean_us"])
    print("compile speedup: simple command %.1fx, expr loop %.1fx"
          % (ratio, loop_ratio))
    print("bytecode speedup: proc call %.1fx, expr loop %.1fx, "
          "foreach %.1fx"
          % (report["proc_call_bytecode_off"]["mean_us"]
             / report["proc_call"]["mean_us"],
             report["expr_loop_bytecode_off"]["mean_us"]
             / report["expr_loop"]["mean_us"],
             report["foreach_list_bytecode_off"]["mean_us"]
             / report["foreach_list"]["mean_us"]))
    if checking:
        return check(report)
    with open(BENCH_FILE, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % BENCH_FILE)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
