"""The Tcl interpreter (paper section 2, Figure 6).

The interpreter is a library object that an application embeds.  The
application registers *command procedures*; the interpreter parses
command strings, performs backslash/variable/command substitution, looks
up the command procedure named by the first word, and invokes it.
Application-specific and built-in commands are indistinguishable, may be
created and deleted at any time, and all traffic in string values only.

A command procedure is any Python callable ``proc(interp, argv)`` where
``argv`` is the fully substituted word list (``argv[0]`` is the command
name).  It returns the result string (``None`` means empty result) or
raises :class:`~repro.tcl.errors.TclError`.
"""

from __future__ import annotations

import time as _time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Union

from . import parser
from ..obs import Observability
from .compile import CompiledScript, _append_error_info, compile_script
from .errors import (TclBreak, TclContinue, TclError, TclReturn)
from .lists import format_list, parse_list

CommandProc = Callable[["Interp", List[str]], Optional[str]]

#: Values stored in a call frame: a scalar string or an array (dict).
VarValue = Union[str, Dict[str, str]]

_MAX_NESTING_DEPTH = 1000
#: Bound on the LRU of compiled scripts.  Overflow evicts only the
#: least recently used entry, so hot scripts (bindings, loop bodies)
#: survive an application that churns through many one-off scripts.
_COMPILE_CACHE_LIMIT = 2048

# Each Tcl nesting level consumes several Python stack frames; make
# sure Python's limit is not hit before Tcl's own _MAX_NESTING_DEPTH
# diagnostic can trigger.
import sys as _sys  # noqa: E402  (deliberate placement with its setting)

if _sys.getrecursionlimit() < 20000:
    _sys.setrecursionlimit(20000)


class CallFrame:
    """One level of the procedure call stack.

    ``variables`` maps names to scalar strings or array dicts.
    ``links`` maps names to ``(frame, name)`` targets created by
    ``global`` and ``upvar``.
    """

    __slots__ = ("variables", "links", "level", "proc_name", "argv")

    def __init__(self, level: int, proc_name: str = "",
                 argv: Optional[List[str]] = None):
        self.variables: Dict[str, VarValue] = {}
        self.links: Dict[str, tuple] = {}
        self.level = level
        self.proc_name = proc_name
        self.argv = argv or []


class Proc:
    """A procedure defined with the ``proc`` command.

    ``compiled`` is the body compiled on first call; it lives on the
    procedure object itself, so procedure calls never touch (or evict
    from) the interpreter's bounded script cache.  Redefining the
    procedure installs a fresh ``Proc`` and therefore a fresh
    compilation.
    """

    __slots__ = ("name", "formals", "body", "compiled")

    def __init__(self, name: str, formals: List[List[str]], body: str):
        self.name = name
        self.formals = formals
        self.body = body
        self.compiled: Optional[CompiledScript] = None

    def __call__(self, interp: "Interp", argv: List[str]) -> str:
        return interp.call_proc(self, argv)

    def args_string(self) -> str:
        return format_list(formal[0] for formal in self.formals)


class Interp:
    """A Tcl interpreter with its command table and variables."""

    def __init__(self, stdout=None, compile_enabled: bool = True,
                 obs: Optional[Observability] = None,
                 obs_enabled: bool = True):
        self.commands: Dict[str, CommandProc] = {}
        self.global_frame = CallFrame(level=0)
        self.frames: List[CallFrame] = [self.global_frame]
        self.depth = 0
        self.stdout = stdout
        #: Ablation flag (mirrors ``ResourceCache(enabled=False)``):
        #: when False every evaluation re-parses and re-substitutes
        #: from scratch, with no compiled-script or expression caching.
        self.compile_enabled = compile_enabled
        #: LRU of script text -> CompiledScript, bounded by
        #: ``_compile_limit`` (an attribute so tests can shrink it).
        self._compile_cache: "OrderedDict[str, CompiledScript]" = \
            OrderedDict()
        self._compile_limit = _COMPILE_CACHE_LIMIT
        #: Observability hub: metrics + span tracer (``obs`` command).
        #: A standalone interpreter owns its own; a Tk application
        #: rebinds it into the application-wide hub (see rebind_obs).
        #: ``obs_enabled=False`` is the ablation flag for measuring the
        #: cost of the instrumentation itself: counters still exist
        #: (they are the storage for cmd_count etc.) but the tracer is
        #: never consulted on hot paths.
        self.obs = obs if obs is not None else Observability()
        self.obs_enabled = obs_enabled
        #: Compile-cache effectiveness counters (``info compilecache``).
        self._m_compile_hits = self.obs.metrics.counter("tcl.compile.hits")
        self._m_compile_misses = \
            self.obs.metrics.counter("tcl.compile.misses")
        #: Total commands executed (``info cmdcount``).
        self._m_commands = self.obs.metrics.counter("tcl.commands")
        self._tracer = self.obs.tracer if obs_enabled else None
        #: Precomputed "is the tracer collecting" flag, maintained by a
        #: tracer start/stop listener: the command hot path tests one
        #: boolean whether observability is enabled or ablated, so the
        #: shipping configuration pays nothing over the ablation.
        self._trace_on = False
        if obs_enabled:
            self.obs.tracer.listeners.append(self._set_trace_on)
            self._trace_on = self.obs.tracer.enabled
        #: Bumped whenever the command table changes; compiled commands
        #: memoize their resolved command procedure against this, so
        #: ``rename``/redefinition/deletion invalidate instantly.
        self.commands_epoch = 0
        #: Exception types raised by the embedding's native layer (Tk
        #: sets this to ``(XProtocolError,)``) that command invocation
        #: converts into ordinary TclErrors, so scripts can ``catch``
        #: them and ``bgerror`` can report them — a native failure must
        #: never leak a raw Python exception through ``eval``.
        self.native_error_types: tuple = ()
        #: Hook consulted when a command is not found; replaceable by
        #: registering a Tcl command named "unknown".
        self.deleted = False
        from .commands import register_builtins
        register_builtins(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def compile_hits(self) -> int:
        return self._m_compile_hits.value

    @property
    def compile_misses(self) -> int:
        return self._m_compile_misses.value

    @property
    def cmd_count(self) -> int:
        return self._m_commands.value

    def _set_trace_on(self, enabled: bool) -> None:
        self._trace_on = enabled

    def rebind_obs(self, obs: Observability) -> None:
        """Join an application-wide observability hub.

        The hub absorbs this interpreter's metric *objects* — handles
        cached on hot paths keep counting into the same storage — and
        the interpreter's spans flow to the hub's tracer (which runs on
        the application's virtual clock).
        """
        obs.metrics.absorb(self.obs.metrics)
        if self.obs_enabled and \
                self._set_trace_on in self.obs.tracer.listeners:
            self.obs.tracer.listeners.remove(self._set_trace_on)
        self.obs = obs
        if self.obs_enabled:
            self._tracer = obs.tracer
            obs.tracer.listeners.append(self._set_trace_on)
            self._trace_on = obs.tracer.enabled

    # ------------------------------------------------------------------
    # Command registration (Figure 6: "register application commands")
    # ------------------------------------------------------------------

    def register(self, name: str, proc: CommandProc) -> None:
        """Register (or replace) a command procedure under ``name``."""
        self.commands[name] = proc
        self.commands_epoch += 1

    def unregister(self, name: str) -> None:
        """Delete a command; unknown names raise an error."""
        if name not in self.commands:
            raise TclError('can\'t delete "%s": command doesn\'t exist'
                           % name)
        del self.commands[name]
        self.commands_epoch += 1

    def rename(self, old: str, new: str) -> None:
        if old not in self.commands:
            raise TclError('can\'t rename "%s": command doesn\'t exist'
                           % old)
        if new == "":
            del self.commands[old]
            self.commands_epoch += 1
            return
        if new in self.commands:
            raise TclError('can\'t rename to "%s": command already exists'
                           % new)
        self.commands[new] = self.commands.pop(old)
        self.commands_epoch += 1

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def eval(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate a script; the result is the last command's result.

        ``script`` may be a string or a :class:`CompiledScript`
        returned by :meth:`compile` (event bindings and widget
        ``-command`` options pre-compile their scripts this way).
        """
        if self.depth >= _MAX_NESTING_DEPTH:
            raise TclError(
                "too many nested calls to Tcl_Eval (infinite loop?)")
        self.depth += 1
        try:
            if type(script) is not str:
                single = script.single
                if single is not None:
                    return single.execute(self)
                return script.execute(self)
            if self.compile_enabled:
                compiled = self._compiled(script)
                single = compiled.single
                if single is not None:
                    return single.execute(self)
                return compiled.execute(self)
            # Ablation path: re-parse and re-substitute every time.
            result = ""
            for command in parser.parse_script(script):
                result = self._eval_command(command)
            return result
        finally:
            self.depth -= 1

    def compile(self, script: str) -> Union[str, CompiledScript]:
        """Compile a script for repeated evaluation.

        Returns a :class:`CompiledScript` (through the interpreter's
        bounded cache) — or the script unchanged when compilation is
        disabled, so callers can hold the result and pass it to
        :meth:`eval` either way.
        """
        if not self.compile_enabled or not isinstance(script, str):
            return script
        return self._compiled(script)

    def eval_words(self, argv: List[str]) -> str:
        """Invoke a command from already-substituted words."""
        if not argv:
            return ""
        return self._invoke(argv, source=format_list(argv))

    def eval_top(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate at top level, recording errorInfo in the global var.

        This is what event bindings and the main program use: any error
        unwinds to here, where the accumulated trace is stored in the
        global ``errorInfo`` variable before the error is re-raised.
        """
        if self._trace_on:
            tracer = self._tracer
            source = script.source \
                if isinstance(script, CompiledScript) else script
            span = tracer.begin("eval", _span_name(source))
            try:
                return self.eval(script)
            except TclError as error:
                self.set_global_var("errorInfo", _error_info(error))
                raise
            finally:
                tracer.finish(span)
        try:
            return self.eval(script)
        except TclError as error:
            self.set_global_var("errorInfo", _error_info(error))
            raise

    def eval_global(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate at global variable scope (like ``uplevel #0``).

        Deferred scripts — event bindings, timer handlers, widget
        -commands, sends — run at global level in Tcl, whatever
        procedure happens to be executing when they fire.
        """
        saved = self.frames
        self.frames = [self.global_frame]
        try:
            return self.eval_top(script)
        finally:
            self.frames = saved

    def eval_background(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate a *background* script (binding/timer/callback).

        If the script fails and the application has defined a
        ``bgerror`` procedure (wish's library provides one) — or the
        historical ``tkerror`` — the error is reported through it and
        swallowed, so one broken binding cannot kill the event loop;
        without a handler the error propagates as usual.
        """
        try:
            return self.eval_global(script)
        except TclError as error:
            handler = None
            for candidate in ("bgerror", "tkerror"):
                if candidate in self.commands:
                    handler = candidate
                    break
            if handler is None:
                raise
            from .lists import quote_element
            try:
                self.eval_global("%s %s"
                                 % (handler, quote_element(error.message)))
            except TclError:
                pass  # a broken bgerror must not re-kill the loop
            return ""

    def _compiled(self, script: str) -> CompiledScript:
        """Look up (or build) the compiled form of a script, LRU-style."""
        cache = self._compile_cache
        compiled = cache.get(script)
        if compiled is not None:
            self._m_compile_hits.value += 1
            cache.move_to_end(script)
            return compiled
        self._m_compile_misses.value += 1
        compiled = compile_script(script)
        if len(cache) >= self._compile_limit:
            cache.popitem(last=False)
        cache[script] = compiled
        return compiled

    def _eval_command(self, command: parser.Command) -> str:
        argv = [self.substitute_word(word) for word in command.words]
        return self._invoke(argv, command.source)

    def _invoke(self, argv: List[str], source: str) -> str:
        if self._trace_on:
            tracer = self._tracer
            span = tracer.begin("cmd", argv[0], _span_widget(argv))
            try:
                return self._invoke_untraced(argv, source)
            finally:
                tracer.finish(span)
        return self._invoke_untraced(argv, source)

    def _invoke_untraced(self, argv: List[str], source: str) -> str:
        proc = self.commands.get(argv[0])
        if proc is None:
            unknown = self.commands.get("unknown")
            if unknown is not None:
                self._m_commands.value += 1
                return unknown(self, ["unknown"] + argv) or ""
            raise TclError('invalid command name "%s"' % argv[0])
        self._m_commands.value += 1
        try:
            result = proc(self, argv)
        except TclError as error:
            _append_error_info(error, source)
            raise
        except self.native_error_types as error:
            converted = TclError(str(error))
            _append_error_info(converted, source)
            raise converted from error
        return result if result is not None else ""

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------

    def substitute_word(self, word: parser.Word) -> str:
        parts = word.parts
        if len(parts) == 1 and isinstance(parts[0], parser.Literal):
            return parts[0].text
        pieces: List[str] = []
        for part in parts:
            if isinstance(part, parser.Literal):
                pieces.append(part.text)
            elif isinstance(part, parser.VarSub):
                pieces.append(self.value_of(part))
            else:
                pieces.append(self.eval(part.script))
        return "".join(pieces)

    def substitute(self, text: str) -> str:
        """Perform backslash/variable/command substitution on a string."""
        return self.substitute_word(parser.parse_substitution(text))

    def value_of(self, var: parser.VarSub) -> str:
        index = None
        if var.index is not None:
            index = self.substitute_word(var.index)
        return self.get_var(var.name, index)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def current_frame(self) -> CallFrame:
        return self.frames[-1]

    def _resolve(self, frame: CallFrame, name: str) -> tuple:
        """Follow upvar/global links to the owning frame."""
        seen = 0
        while name in frame.links:
            frame, name = frame.links[name]
            seen += 1
            if seen > len(self.frames) + 1:
                raise TclError('circular variable link for "%s"' % name)
        return frame, name

    def get_var(self, name: str, index: Optional[str] = None,
                frame: Optional[CallFrame] = None) -> str:
        frame, name = self._resolve(frame or self.current_frame, name)
        value = frame.variables.get(name)
        if value is None:
            raise TclError('can\'t read "%s": no such variable'
                           % _display_name(name, index))
        if index is None:
            if isinstance(value, dict):
                raise TclError(
                    'can\'t read "%s": variable is array' % name)
            return value
        if not isinstance(value, dict):
            raise TclError(
                'can\'t read "%s(%s)": variable isn\'t array'
                % (name, index))
        if index not in value:
            raise TclError('can\'t read "%s(%s)": no such element'
                           % (name, index))
        return value[index]

    def set_var(self, name: str, value: str,
                index: Optional[str] = None,
                frame: Optional[CallFrame] = None) -> str:
        frame, name = self._resolve(frame or self.current_frame, name)
        if index is None:
            if isinstance(frame.variables.get(name), dict):
                raise TclError(
                    'can\'t set "%s": variable is array' % name)
            frame.variables[name] = value
            return value
        existing = frame.variables.get(name)
        if existing is None:
            existing = {}
            frame.variables[name] = existing
        elif not isinstance(existing, dict):
            raise TclError(
                'can\'t set "%s(%s)": variable isn\'t array'
                % (name, index))
        existing[index] = value
        return value

    def unset_var(self, name: str, index: Optional[str] = None,
                  frame: Optional[CallFrame] = None) -> None:
        frame, name = self._resolve(frame or self.current_frame, name)
        if name not in frame.variables:
            raise TclError('can\'t unset "%s": no such variable'
                           % _display_name(name, index))
        if index is None:
            del frame.variables[name]
            return
        value = frame.variables[name]
        if not isinstance(value, dict) or index not in value:
            raise TclError('can\'t unset "%s(%s)": no such element'
                           % (name, index))
        del value[index]

    def var_exists(self, name: str, index: Optional[str] = None) -> bool:
        try:
            frame, name = self._resolve(self.current_frame, name)
        except TclError:
            return False
        value = frame.variables.get(name)
        if value is None:
            return False
        if index is None:
            return True
        return isinstance(value, dict) and index in value

    def set_global_var(self, name: str, value: str,
                       index: Optional[str] = None) -> str:
        return self.set_var(name, value, index, frame=self.global_frame)

    def get_global_var(self, name: str, index: Optional[str] = None) -> str:
        return self.get_var(name, index, frame=self.global_frame)

    def link_var(self, frame: CallFrame, local_name: str,
                 target_frame: CallFrame, target_name: str) -> None:
        """Create an upvar/global style alias."""
        if local_name in frame.variables:
            raise TclError(
                'variable "%s" already exists' % local_name)
        frame.links[local_name] = (target_frame, target_name)

    # ------------------------------------------------------------------
    # Procedures
    # ------------------------------------------------------------------

    def define_proc(self, name: str, args_spec: str, body: str) -> None:
        formals: List[List[str]] = []
        for formal in parse_list(args_spec):
            pieces = parse_list(formal)
            if len(pieces) not in (1, 2) or not pieces:
                raise TclError(
                    'procedure "%s" has argument with too many fields'
                    % name)
            formals.append(pieces)
        self.commands[name] = Proc(name, formals, body)
        self.commands_epoch += 1

    def call_proc(self, proc: Proc, argv: List[str]) -> str:
        if self._trace_on:
            tracer = self._tracer
            span = tracer.begin("proc", proc.name)
            try:
                return self._call_proc(proc, argv)
            finally:
                tracer.finish(span)
        return self._call_proc(proc, argv)

    def _call_proc(self, proc: Proc, argv: List[str]) -> str:
        body: Union[str, CompiledScript] = proc.body
        if self.compile_enabled:
            compiled = proc.compiled
            if compiled is None:
                compiled = proc.compiled = compile_script(proc.body)
            body = compiled
        frame = CallFrame(level=len(self.frames), proc_name=proc.name,
                          argv=argv)
        self._bind_formals(proc, argv, frame)
        self.frames.append(frame)
        try:
            try:
                return self.eval(body)
            except TclReturn as ret:
                return ret.value
            except TclBreak:
                raise TclError(
                    'invoked "break" outside of a loop')
            except TclContinue:
                raise TclError(
                    'invoked "continue" outside of a loop')
        finally:
            self.frames.pop()

    def _bind_formals(self, proc: Proc, argv: List[str],
                      frame: CallFrame) -> None:
        supplied = argv[1:]
        formals = proc.formals
        for position, formal in enumerate(formals):
            name = formal[0]
            if name == "args" and position == len(formals) - 1:
                frame.variables["args"] = format_list(supplied[position:])
                return
            if position < len(supplied):
                frame.variables[name] = supplied[position]
            elif len(formal) == 2:
                frame.variables[name] = formal[1]
            else:
                raise TclError(
                    'no value given for parameter "%s" to "%s"'
                    % (name, proc.name))
        if len(supplied) > len(formals):
            raise TclError(
                'called "%s" with too many arguments' % proc.name)

    def frame_at_level(self, level_spec: str,
                       default_up_one: bool = True) -> CallFrame:
        """Resolve a level argument as used by uplevel/upvar.

        ``#n`` is absolute; a plain number is relative to the current
        frame; the default is one level up.
        """
        if level_spec.startswith("#"):
            try:
                level = int(level_spec[1:])
            except ValueError:
                raise TclError('bad level "%s"' % level_spec)
        else:
            try:
                up = int(level_spec)
            except ValueError:
                raise TclError('bad level "%s"' % level_spec)
            level = self.current_frame.level - up
        if level < 0 or level >= len(self.frames):
            raise TclError('bad level "%s"' % level_spec)
        return self.frames[level]

    # ------------------------------------------------------------------
    # Utilities used by command implementations
    # ------------------------------------------------------------------

    def write(self, text: str) -> None:
        """Write to the interpreter's standard output channel."""
        if self.stdout is not None:
            self.stdout.write(text)

    def timer(self) -> float:
        """Seconds counter used by the ``time`` command (overridable)."""
        return _time.perf_counter()


def _display_name(name: str, index: Optional[str]) -> str:
    return "%s(%s)" % (name, index) if index is not None else name


def _span_name(source: str, limit: int = 48) -> str:
    """A script condensed to one short line for span labels."""
    name = " ".join(source.split())
    if len(name) > limit:
        name = name[:limit - 3] + "..."
    return name


def _span_widget(argv: List[str]) -> Optional[str]:
    """Best-effort widget attribution for a command invocation.

    Widget commands are named after their window path (``.b configure
    ...``); creation commands take the path as the first argument
    (``button .b ...``).
    """
    if argv[0].startswith("."):
        return argv[0]
    if len(argv) > 1 and argv[1].startswith("."):
        return argv[1]
    return None


def _error_info(error: TclError) -> str:
    info = getattr(error, "info", None)
    if not info:
        return error.message
    return "\n".join(info)
