#!wish -f
# The directory browser of the paper's Figure 9, verbatim.
scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}

proc browse {dir file} {
    if {[string compare $dir "."] != 0} {set file $dir/$file}
    if [file $file isdirectory] {
        set cmd [list exec sh -c "browse $file &"]
        eval $cmd
    } else {
        if [file $file isfile] {exec mx $file} else {
            print "$file isn't a directory or regular file\n"
        }
    }
}

if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
    .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}
