"""Client-side display connection — the simulator's "Xlib".

A :class:`Display` is what an application (Tk) holds: it wraps one
client connection to an :class:`~repro.x11.xserver.XServer` and exposes
Xlib-shaped calls.  Requests that Xlib would answer from the wire
without waiting are plain calls; requests that need a server reply go
through the server's round-trip counter, so the traffic-saving claims
of the paper's section 3.3 can be measured per display.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .events import Event
from .resources import Bitmap, Color, Cursor, Font, GraphicsContext
from .xserver import Client, XProtocolError, XServer


class Display:
    """One application's connection to the (simulated) display."""

    def __init__(self, server: XServer):
        self.server = server
        self.client: Client = server.connect()
        self._round_trips_at_connect = server.round_trips
        self.closed = False

    # -- bookkeeping -----------------------------------------------------

    @property
    def root(self) -> int:
        return self.server.root.id

    @property
    def screen_width(self) -> int:
        return self.server.root.width

    @property
    def screen_height(self) -> int:
        return self.server.root.height

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.server.disconnect(self.client)

    def _require_open(self) -> None:
        if self.closed:
            raise XProtocolError("connection to X server lost")

    # -- event queue -----------------------------------------------------

    def pending(self) -> int:
        return 0 if self.closed else self.client.pending()

    def next_event(self) -> Optional[Event]:
        return None if self.closed else self.client.next_event()

    def flush(self) -> None:
        """No-op: the simulator has no output buffer."""

    def sync(self) -> None:
        """A full round trip, as XSync performs."""
        self._require_open()
        self.server.round_trip()

    # -- windows -----------------------------------------------------------

    def create_window(self, parent: int, x: int, y: int, width: int,
                      height: int, border_width: int = 0) -> int:
        self._require_open()
        return self.server.create_window(self.client, parent, x, y,
                                         width, height, border_width)

    def destroy_window(self, window: int) -> None:
        self._require_open()
        self.server.destroy_window(window)

    def map_window(self, window: int) -> None:
        self._require_open()
        self.server.map_window(window)

    def unmap_window(self, window: int) -> None:
        self._require_open()
        self.server.unmap_window(window)

    def configure_window(self, window: int, **kwargs) -> None:
        self._require_open()
        self.server.configure_window(window, **kwargs)

    def select_input(self, window: int, mask: int) -> None:
        self._require_open()
        self.server.select_input(self.client, window, mask)

    def raise_window(self, window: int) -> None:
        self._require_open()
        self.server.raise_window(window)

    def lower_window(self, window: int) -> None:
        self._require_open()
        self.server.lower_window(window)

    def get_geometry(self, window: int) -> Tuple[int, int, int, int, int]:
        self._require_open()
        return self.server.get_geometry(window)

    def window_exists(self, window: int) -> bool:
        """True if ``window`` still exists on the server (a round trip)."""
        self._require_open()
        return self.server.window_exists(window)

    def query_tree(self, window: int) -> Tuple[int, int, List[int]]:
        self._require_open()
        return self.server.query_tree(window)

    def set_window_background(self, window: int, pixel: int) -> None:
        self._require_open()
        self.server.set_window_background(window, pixel)

    # -- atoms and properties ---------------------------------------------

    def intern_atom(self, name: str, only_if_exists: bool = False) -> int:
        self._require_open()
        return self.server.intern_atom(name, only_if_exists)

    def get_atom_name(self, atom: int) -> str:
        self._require_open()
        return self.server.get_atom_name(atom)

    def change_property(self, window: int, property_atom: int,
                        type_atom: int, value: object,
                        append: bool = False) -> None:
        self._require_open()
        self.server.change_property(window, property_atom, type_atom,
                                    value, append)

    def get_property(self, window: int, property_atom: int,
                     delete: bool = False) -> Optional[Tuple[int, object]]:
        self._require_open()
        return self.server.get_property(window, property_atom, delete)

    def delete_property(self, window: int, property_atom: int) -> None:
        self._require_open()
        self.server.delete_property(window, property_atom)

    # -- selections ----------------------------------------------------------

    def set_selection_owner(self, selection: int, window: int) -> None:
        self._require_open()
        self.server.set_selection_owner(self.client, selection, window)

    def get_selection_owner(self, selection: int) -> int:
        self._require_open()
        return self.server.get_selection_owner(selection)

    def convert_selection(self, selection: int, target: int,
                          property_atom: int, requestor: int) -> None:
        self._require_open()
        self.server.convert_selection(self.client, selection, target,
                                      property_atom, requestor)

    def send_event(self, window: int, event: Event,
                   event_mask: int = 0) -> None:
        self._require_open()
        self.server.send_event(window, event, event_mask)

    def set_input_focus(self, window: int) -> None:
        self._require_open()
        self.server.set_input_focus(window)

    # -- resources ----------------------------------------------------------

    def alloc_named_color(self, name: str) -> Color:
        self._require_open()
        return self.server.alloc_named_color(name)

    def load_font(self, name: str) -> Font:
        self._require_open()
        return self.server.load_font(name)

    def create_cursor(self, name: str) -> Cursor:
        self._require_open()
        return self.server.create_cursor(name)

    def create_bitmap(self, name: str, width: int = 0,
                      height: int = 0) -> Bitmap:
        self._require_open()
        return self.server.create_bitmap(name, width, height)

    def create_gc(self, **values) -> GraphicsContext:
        self._require_open()
        return self.server.create_gc(**values)

    def free_resource(self, rid: int) -> None:
        self._require_open()
        self.server.free_resource(rid)

    # -- drawing ----------------------------------------------------------

    def clear_window(self, window: int) -> None:
        self._require_open()
        self.server.clear_window(window)

    def fill_rectangle(self, window: int, gc: GraphicsContext, x: int,
                       y: int, width: int, height: int) -> None:
        self._require_open()
        self.server.fill_rectangle(window, gc, x, y, width, height)

    def draw_rectangle(self, window: int, gc: GraphicsContext, x: int,
                       y: int, width: int, height: int) -> None:
        self._require_open()
        self.server.draw_rectangle(window, gc, x, y, width, height)

    def draw_line(self, window: int, gc: GraphicsContext, x1: int, y1: int,
                  x2: int, y2: int) -> None:
        self._require_open()
        self.server.draw_line(window, gc, x1, y1, x2, y2)

    def draw_string(self, window: int, gc: GraphicsContext, x: int, y: int,
                    text: str) -> None:
        self._require_open()
        self.server.draw_string(window, gc, x, y, text)


__all__ = ["Display", "XProtocolError"]
