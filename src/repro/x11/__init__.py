"""repro.x11 — a simulated X11 display server and client library.

This package substitutes for the real X server the paper ran against
(see DESIGN.md section 1).  It implements the protocol *semantics* Tk
depends on — the window tree, event selection and delivery, atoms and
properties, ICCCM selections, colors/fonts/cursors/bitmaps, and
graphics contexts — plus a round-trip counter that makes server-traffic
claims measurable and a renderer that produces screen dumps.

Typical use::

    from repro.x11 import XServer, Display

    server = XServer()
    display = Display(server)          # one per application
    win = display.create_window(display.root, 0, 0, 200, 100)
    display.map_window(win)
"""

from . import events, keysyms, wire
from .atoms import AtomTable
from .display import Display
from .events import Event
from .faults import FaultPlan
from .render import Renderer, render_ppm
from .resources import (Bitmap, Color, Cursor, Font, GraphicsContext,
                        NAMED_COLORS, parse_color)
from .transport import (LoopbackTransport, ServerHost, SocketTransport,
                        ensure_host, resolve_transport, shutdown_host)
from .window import Window
from .wire import WireError
from .xserver import (Client, VirtualClock, XConnectionLost,
                      XProtocolError, XServer)

__all__ = [
    "XServer", "Display", "Client", "Window", "Event", "AtomTable",
    "Renderer", "render_ppm", "XProtocolError", "XConnectionLost",
    "FaultPlan", "VirtualClock",
    "Color", "Font", "Cursor", "Bitmap", "GraphicsContext",
    "NAMED_COLORS", "parse_color", "events", "keysyms", "wire",
    "LoopbackTransport", "SocketTransport", "ServerHost",
    "ensure_host", "shutdown_host", "resolve_transport", "WireError",
]
