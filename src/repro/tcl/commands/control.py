"""Control-flow commands: if, while, for, foreach, proc, catch, etc.

Control constructs are ordinary commands that make recursive calls to
the interpreter (paper section 2): the command procedure for ``if``
evaluates its first argument as an expression and, if nonzero, calls
the interpreter recursively on the body argument.
"""

from __future__ import annotations

from typing import List

from ..errors import TclBreak, TclContinue, TclError, TclReturn
from ..expr import expr_as_bool
from ..lists import parse_list
from ..strings import glob_match


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def cmd_if(interp, argv: List[str]) -> str:
    """if expr ?then? body ?elseif expr ?then? body ...? ?else? body"""
    i = 1
    while True:
        if i >= len(argv):
            raise _wrong_args("if test script ?elseif test script? "
                             "?else script?")
        condition = argv[i]
        i += 1
        if i < len(argv) and argv[i] == "then":
            i += 1
        if i >= len(argv):
            raise TclError(
                'wrong # args: no script following "%s" argument'
                % condition)
        body = argv[i]
        i += 1
        if expr_as_bool(interp, condition):
            return interp.eval(body)
        if i >= len(argv):
            return ""
        if argv[i] == "elseif":
            i += 1
            continue
        if argv[i] == "else":
            i += 1
        if i >= len(argv):
            raise TclError("wrong # args: no script following \"else\""
                           " argument")
        if i != len(argv) - 1:
            raise _wrong_args("if test script ?elseif test script? "
                             "?else script?")
        return interp.eval(argv[i])


def cmd_while(interp, argv: List[str]) -> str:
    if len(argv) != 3:
        raise _wrong_args("while test command")
    test, body = argv[1], argv[2]
    while expr_as_bool(interp, test):
        try:
            interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def cmd_for(interp, argv: List[str]) -> str:
    if len(argv) != 5:
        raise _wrong_args("for start test next command")
    start, test, nxt, body = argv[1:]
    interp.eval(start)
    while expr_as_bool(interp, test):
        try:
            interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            pass
        interp.eval(nxt)
    return ""


def cmd_foreach(interp, argv: List[str]) -> str:
    if len(argv) != 4:
        raise _wrong_args("foreach varName list command")
    names = parse_list(argv[1])
    if not names:
        raise TclError("foreach varlist is empty")
    values = parse_list(argv[2])
    body = argv[3]
    for chunk_start in range(0, len(values), len(names)):
        for offset, name in enumerate(names):
            position = chunk_start + offset
            value = values[position] if position < len(values) else ""
            interp.set_var(name, value)
        try:
            interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def cmd_break(interp, argv: List[str]) -> str:
    if len(argv) != 1:
        raise _wrong_args("break")
    raise TclBreak()


def cmd_continue(interp, argv: List[str]) -> str:
    if len(argv) != 1:
        raise _wrong_args("continue")
    raise TclContinue()


def cmd_proc(interp, argv: List[str]) -> str:
    if len(argv) != 4:
        raise _wrong_args("proc name args body")
    interp.define_proc(argv[1], argv[2], argv[3])
    return ""


def cmd_return(interp, argv: List[str]) -> str:
    if len(argv) > 2:
        raise _wrong_args("return ?value?")
    raise TclReturn(argv[1] if len(argv) == 2 else "")


def cmd_eval(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("eval arg ?arg ...?")
    script = " ".join(argv[1:])
    return interp.eval(script)


def cmd_catch(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise _wrong_args("catch command ?varName?")
    code = 0
    result = ""
    try:
        result = interp.eval(argv[1])
    except TclError as error:
        code = 1
        result = error.message
    except TclReturn as ret:
        code = 2
        result = ret.value
    except TclBreak:
        code = 3
    except TclContinue:
        code = 4
    if len(argv) == 3:
        interp.set_var(argv[2], result)
    return str(code)


def cmd_error(interp, argv: List[str]) -> str:
    if len(argv) < 2 or len(argv) > 4:
        raise _wrong_args("error message ?errorInfo? ?errorCode?")
    error = TclError(argv[1])
    if len(argv) >= 3 and argv[2]:
        error.info = [argv[2]]
    if len(argv) == 4:
        interp.set_global_var("errorCode", argv[3])
    raise error


def cmd_uplevel(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("uplevel ?level? command ?arg ...?")
    level, rest = _parse_level(argv)
    if not rest:
        raise _wrong_args("uplevel ?level? command ?arg ...?")
    frame = interp.frame_at_level(level)
    script = " ".join(rest)
    saved = interp.frames
    interp.frames = interp.frames[:frame.level + 1]
    try:
        return interp.eval(script)
    finally:
        interp.frames = saved


def cmd_upvar(interp, argv: List[str]) -> str:
    if len(argv) < 3:
        raise _wrong_args("upvar ?level? otherVar localVar "
                         "?otherVar localVar ...?")
    level, rest = _parse_level(argv)
    if len(rest) % 2 != 0 or not rest:
        raise _wrong_args("upvar ?level? otherVar localVar "
                         "?otherVar localVar ...?")
    target = interp.frame_at_level(level)
    for position in range(0, len(rest), 2):
        interp.link_var(interp.current_frame, rest[position + 1],
                        target, rest[position])
    return ""


def _parse_level(argv: List[str]) -> tuple:
    """Split an optional leading level argument from uplevel/upvar."""
    candidate = argv[1]
    looks_like_level = candidate.startswith("#") or candidate.isdigit()
    if looks_like_level and len(argv) > 2:
        return candidate, argv[2:]
    return "1", argv[1:]


def cmd_global(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("global varName ?varName ...?")
    frame = interp.current_frame
    if frame.level == 0:
        return ""
    for name in argv[1:]:
        if not frame.has_link(name) and not frame.has_local(name):
            interp.link_var(frame, name, interp.global_frame, name)
    return ""


def cmd_case(interp, argv: List[str]) -> str:
    """case string ?in? patList body ?patList body ...?

    The old-Tcl ``case`` command: glob patterns, ``default`` as the
    fallback.  Pairs may also be supplied as one brace-quoted argument.
    """
    if len(argv) < 3:
        raise _wrong_args("case string ?in? patList body ?patList body ...?")
    subject = argv[1]
    rest = argv[2:]
    if rest and rest[0] == "in":
        rest = rest[1:]
    if len(rest) == 1:
        rest = parse_list(rest[0])
    if len(rest) % 2 != 0 or not rest:
        raise TclError("extra case pattern with no body")
    default_body = None
    for position in range(0, len(rest), 2):
        patterns, body = rest[position], rest[position + 1]
        for pattern in parse_list(patterns):
            if pattern == "default":
                default_body = body
            elif glob_match(pattern, subject):
                return interp.eval(body)
    if default_body is not None:
        return interp.eval(default_body)
    return ""


def cmd_source(interp, argv: List[str]) -> str:
    if len(argv) != 2:
        raise _wrong_args("source fileName")
    try:
        with open(argv[1], "r") as handle:
            script = handle.read()
    except OSError as error:
        raise TclError('couldn\'t read file "%s": %s'
                       % (argv[1], error.strerror or error))
    try:
        return interp.eval(script)
    except TclReturn as ret:
        return ret.value


def register(interp) -> None:
    interp.register("if", cmd_if)
    interp.register("while", cmd_while)
    interp.register("for", cmd_for)
    interp.register("foreach", cmd_foreach)
    interp.register("break", cmd_break)
    interp.register("continue", cmd_continue)
    interp.register("proc", cmd_proc)
    interp.register("return", cmd_return)
    interp.register("eval", cmd_eval)
    interp.register("catch", cmd_catch)
    interp.register("error", cmd_error)
    interp.register("uplevel", cmd_uplevel)
    interp.register("upvar", cmd_upvar)
    interp.register("global", cmd_global)
    interp.register("case", cmd_case)
    interp.register("source", cmd_source)
