"""Deterministic replay: clean re-runs, ablation modes, divergence."""

import os

import pytest

from repro.obs.journal import Journal
from repro.obs.replay import (MODES, record_session, replay_all_modes,
                              replay_journal)

SCRIPT = """
button .b -text Hello -command {set ::clicked 1}
entry .e
pack append . .b {top} .e {top}
focus .e
"""

STEPS = [
    ("warp_pointer", 12, 12, 0),
    ("press_button", 1, 0),
    ("release_button", 1, 0),
    ("update",),
    ("press_key", "a", 0, None),
    ("release_key", "a", 0, None),
    ("update",),
]

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, os.pardir, "examples", "golden.journal")


@pytest.fixture(scope="module")
def session():
    return record_session(SCRIPT, STEPS, name="replaytest")


class TestCleanReplay:
    def test_default_mode_zero_divergence(self, session):
        result = replay_journal(session)
        assert result.matched
        assert result.first_divergence is None
        assert result.type_delta == {}
        assert result.recorded_requests == result.replayed_requests

    def test_timer_session_replays_on_same_timeline(self):
        script = SCRIPT + "\nafter 50 {set ::fired 1}\n"
        journal = record_session(
            script, [("update",), ("advance", 60), ("update",)],
            name="timer")
        advances = [args for name, args in journal.inputs()
                    if name == "advance"]
        assert advances and advances[0][0] == 60
        assert replay_journal(journal).matched

    def test_report_text_for_match(self, session):
        text = replay_journal(session).report()
        assert text.startswith("REPLAY mode=default: MATCH")


class TestAblationModes:
    def test_all_modes_have_no_unexpected_delta(self, session):
        results = replay_all_modes(session)
        assert set(results) == set(MODES)
        for mode, result in results.items():
            assert result.matched, "%s: %s" % (mode, result.report())
            assert result.unexpected_delta == {}

    def test_compile_off_wire_is_invariant(self, session):
        # Compiling trades CPU, never traffic: the wire must be
        # identical element for element.
        result = replay_journal(session, mode="compile_off")
        assert result.matched
        assert result.type_delta == {}

    def test_cache_off_delta_is_cache_shaped(self):
        # Enough widgets that the resource cache visibly collapses
        # allocations (the paper's §3.3 claim, as a wire diff): four
        # buttons share one font, so cache-off loads it four times.
        script = "\n".join("button .b%d -text b%d" % (i, i)
                           for i in range(4))
        journal = record_session(script, [("update",)], name="cache")
        result = replay_journal(journal, mode="cache_off")
        assert result.matched
        recorded, replayed = result.expected_delta["load_font"]
        assert recorded == 1 and replayed == 4

    def test_unknown_mode_rejected(self, session):
        with pytest.raises(ValueError, match="unknown replay mode"):
            replay_journal(session, mode="bogus")


class TestDivergence:
    def test_perturbed_widget_option_localized(self, session):
        # Same inputs, same request *types* — only the button label
        # changed.  The argument digest must localize the diff to the
        # button's own draw, not flag the whole stream.
        perturbed = SCRIPT.replace("-text Hello", "-text Howdy")
        result = replay_journal(session, script=perturbed)
        assert not result.matched
        assert result.first_divergence is not None
        # no request-count noise: the perturbation is value-level
        assert result.type_delta == {}
        rows = [row for row in result.context
                if row["index"] == result.first_divergence]
        assert rows
        recorded_op, replayed_op = rows[0]["recorded"], \
            rows[0]["replayed"]
        assert recorded_op[0] == replayed_op[0] == "draw_string"
        assert "Hello" in recorded_op[2]
        assert "Howdy" in replayed_op[2]

    def test_divergence_report_names_the_delta(self, session):
        perturbed = SCRIPT.replace("-text Hello", "-text Howdy")
        text = replay_journal(session, script=perturbed).report()
        assert "DIVERGED" in text
        assert "first divergence at wire index" in text
        assert "Hello" in text and "Howdy" in text

    def test_truncated_journal_never_matches(self, session):
        journal = Journal.loads(session.to_jsonl())
        journal.dropped = 7
        result = replay_journal(journal)
        assert not result.matched
        assert result.truncated
        assert "ring wrapped" in result.report()


class TestGoldenSession:
    def test_golden_journal_is_checked_in(self):
        assert os.path.exists(GOLDEN), \
            "run PYTHONPATH=src python examples/record_golden.py"

    def test_golden_replays_clean_in_default_mode(self):
        result = replay_journal(Journal.load(GOLDEN))
        assert result.matched, result.report()
        assert result.type_delta == {}

    def test_golden_replays_in_every_ablation_mode(self):
        journal = Journal.load(GOLDEN)
        for mode, result in replay_all_modes(journal).items():
            assert result.matched, "%s: %s" % (mode, result.report())

    def test_golden_covers_every_input_kind(self):
        names = {name for name, _ in Journal.load(GOLDEN).inputs()}
        assert {"warp_pointer", "press_button", "release_button",
                "press_key", "release_key", "update", "advance",
                "eval"} <= names


class TestCli:
    def test_cli_match_exits_zero(self, tmp_path, session, capsys):
        from repro.obs.replay import main
        path = tmp_path / "s.journal"
        session.save(str(path))
        assert main([str(path), "--all-modes"]) == 0
        out = capsys.readouterr().out
        assert out.count("MATCH") == len(MODES)

    def test_cli_divergence_exits_one(self, tmp_path, session):
        from repro.obs.replay import main
        perturbed = Journal.loads(session.to_jsonl())
        perturbed.meta = dict(perturbed.meta)
        perturbed.meta["script"] = SCRIPT.replace(
            "button .b -text Hello",
            "button .b -text Hello -background red")
        path = tmp_path / "bad.journal"
        perturbed.save(str(path))
        assert main([str(path)]) == 1


class TestFaultedReplay:
    """Sessions recorded under a fault plan replay their faults."""

    def _faulted_session(self):
        from repro.x11.faults import FaultPlan
        plan = FaultPlan(seed=5, error_rate=0.05, warmup=60,
                         max_faults=3)
        return record_session(SCRIPT, STEPS, name="faulted",
                              fault_plan=plan)

    def test_fault_plan_rides_in_header(self):
        session = self._faulted_session()
        spec = session.meta["fault_plan"]
        assert spec["seed"] == 5
        assert spec["error_rate"] == 0.05
        assert spec["warmup"] == 60

    def test_faulted_session_replays_byte_identically(self):
        session = self._faulted_session()
        result = replay_journal(session, mode="default")
        assert result.matched, result.report()
        assert session.to_jsonl() == result.replay_log.to_jsonl()

    def test_faulted_journal_round_trips_through_disk(self, tmp_path):
        session = self._faulted_session()
        path = tmp_path / "faulted.journal"
        session.save(str(path))
        reloaded = Journal.load(str(path))
        assert replay_journal(reloaded, mode="default").matched

    def test_construction_killed_by_fault_still_replays(self):
        # A plan with no warmup can kill TkApp construction itself;
        # the recording survives that, and so must the replay.
        from repro.x11.faults import FaultPlan
        plan = FaultPlan(seed=0, error_rate=1.0, max_faults=1)
        session = record_session(SCRIPT, [("update",)],
                                 name="stillborn", fault_plan=plan)
        result = replay_journal(session, mode="default")
        assert result.matched, result.report()
        assert any(stage == "new_app" for stage, _ in result.swallowed)
