"""Label, button, checkbutton, and radiobutton widgets.

As in Tk (paper Table I), a single module implements all four: they
share their geometry and drawing code and differ only in behaviour.
The active behaviours are the ones section 4 describes: a button
highlights when the mouse enters it, appears sunken while pressed, and
invokes its ``-command`` Tcl script when mouse button 1 is clicked and
released over it.  ``flash`` and ``invoke`` widget commands are
provided; check/radio buttons additionally maintain a Tcl *variable*.
"""

from __future__ import annotations

from typing import List, Tuple

from ..tcl.errors import TclError
from ..tk.widget import OptionSpec, Widget
from ..x11 import events as ev

_INDICATOR_PX = 16


_BASE_SPECS = (
    OptionSpec("activebackground", "activeBackground", "Foreground",
               "#eeeeee"),
    OptionSpec("activeforeground", "activeForeground", "Background",
               "black"),
    OptionSpec("anchor", "anchor", "Anchor", "center"),
    OptionSpec("background", "background", "Background", "#dddddd",
               synonyms=("bg",)),
    OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
               synonyms=("bd",)),
    OptionSpec("font", "font", "Font", "fixed"),
    OptionSpec("foreground", "foreground", "Foreground", "black",
               synonyms=("fg",)),
    OptionSpec("height", "height", "Height", "0"),
    OptionSpec("padx", "padX", "Pad", "3"),
    OptionSpec("pady", "padY", "Pad", "1"),
    OptionSpec("relief", "relief", "Relief", "raised"),
    OptionSpec("state", "state", "State", "normal"),
    OptionSpec("text", "text", "Text", ""),
    OptionSpec("textvariable", "textVariable", "Variable", ""),
    OptionSpec("width", "width", "Width", "0"),
)

_COMMAND_SPECS = _BASE_SPECS + (
    OptionSpec("command", "command", "Command", ""),
)


class Label(Widget):
    """A label displays a text string and has no behaviour."""

    widget_class = "Label"
    option_specs = _BASE_SPECS
    has_indicator = False

    def __init__(self, app, path: str, argv):
        super().__init__(app, path, argv)
        self._watch_textvariable()

    def _watch_textvariable(self) -> None:
        """Follow -textvariable with a write trace (live labels)."""
        name = self.options["textvariable"]
        if not name:
            return
        from ..tcl.commands.tracecmd import _table
        interp = self.app.interp
        if not interp.var_exists(name):
            interp.set_global_var(name, self.options["text"])
        self._text_trace = "tkLabelVarChanged-%s" % self.path
        interp.register(self._text_trace,
                        lambda ip, argv: self._text_changed())
        _table(interp).add(name, "w", self._text_trace)

    def _text_changed(self) -> None:
        self.update_geometry()
        self.schedule_redraw()

    def display_text(self) -> str:
        """The string to show: the -textvariable's value if set."""
        name = self.options["textvariable"]
        if name and self.app.interp.var_exists(name):
            return self.app.interp.get_global_var(name)
        return self.options["text"]

    def cleanup(self) -> None:
        name = self.options.get("textvariable", "")
        if name and hasattr(self, "_text_trace"):
            from ..tcl.commands.tracecmd import _table
            _table(self.app.interp).remove(name, "w", self._text_trace)
            self.app.interp.commands.pop(self._text_trace, None)
        super().cleanup()

    # -- geometry ----------------------------------------------------------

    def preferred_size(self) -> Tuple[int, int]:
        font = self.font()
        width_chars = self.int_option("width")
        height_lines = self.int_option("height")
        text = self.display_text()
        text_width = font.char_width * width_chars if width_chars > 0 \
            else font.text_width(text)
        text_height = font.line_height * height_lines if height_lines > 0 \
            else font.line_height
        border = self.int_option("borderwidth")
        width = text_width + 2 * self.int_option("padx") + 2 * border
        height = text_height + 2 * self.int_option("pady") + 2 * border
        if self.has_indicator:
            width += _INDICATOR_PX
        return (max(width, 1), max(height, 1))

    # -- drawing ----------------------------------------------------------

    def active(self) -> bool:
        return False

    def current_relief(self) -> str:
        return self.options["relief"]

    def draw(self) -> None:
        display = self.app.display
        window = self.window
        background = self.color("activebackground") if self.active() \
            else self.color("background")
        foreground = self.color("activeforeground") if self.active() \
            else self.color("foreground")
        display.set_window_background(window.id, background)
        font = self.font()
        text = self.display_text()
        indicator = _INDICATOR_PX if self.has_indicator else 0
        text_x = indicator + max(
            0, (window.width - indicator - font.text_width(text)) // 2)
        text_y = max(0, (window.height - font.line_height) // 2)
        gc = self.app.cache.gc(foreground=foreground, font=font.name)
        if self.has_indicator:
            self._draw_indicator(gc)
        display.draw_string(window.id, gc, text_x, text_y, text)
        self.draw_border(self.current_relief())

    def _draw_indicator(self, gc) -> None:  # pragma: no cover - overridden
        pass


class Button(Label):
    """A button: displays text and executes a command when invoked."""

    widget_class = "Button"
    option_specs = _COMMAND_SPECS

    def __init__(self, app, path: str, argv):
        self._pressed = False
        self._mouse_inside = False
        self.flash_count = 0
        super().__init__(app, path, argv)
        self.window.add_event_handler(
            ev.ENTER_WINDOW_MASK | ev.LEAVE_WINDOW_MASK |
            ev.BUTTON_PRESS_MASK | ev.BUTTON_RELEASE_MASK,
            self._on_event)

    # -- behaviour (the paper's "C code" for the widget) -----------------

    def _on_event(self, event) -> None:
        if self.options["state"] == "disabled":
            return
        if event.type == ev.ENTER_NOTIFY:
            self._mouse_inside = True
            self.schedule_redraw()
        elif event.type == ev.LEAVE_NOTIFY:
            self._mouse_inside = False
            self._pressed = False
            self.schedule_redraw()
        elif event.type == ev.BUTTON_PRESS and event.button == 1:
            self._pressed = True
            self.schedule_redraw()
        elif event.type == ev.BUTTON_RELEASE and event.button == 1:
            was_pressed = self._pressed
            self._pressed = False
            self.schedule_redraw()
            if was_pressed and self._mouse_inside:
                self.invoke()

    def active(self) -> bool:
        return self._mouse_inside and self.options["state"] != "disabled"

    def current_relief(self) -> str:
        return "sunken" if self._pressed else self.options["relief"]

    def invoke(self) -> None:
        """Execute the button's -command script."""
        command = self.command_script()
        if command is not None:
            self.app.interp.eval_global(command)

    # -- widget commands ----------------------------------------------------

    def cmd_invoke(self, args: List[str]) -> str:
        self.invoke()
        return ""

    def cmd_flash(self, args: List[str]) -> str:
        """Change colors back and forth a few times (paper section 4)."""
        original = self._mouse_inside
        for _ in range(4):
            self._mouse_inside = not self._mouse_inside
            self._redraw_now()
            self.flash_count += 1
        self._mouse_inside = original
        self._redraw_now()
        return ""


class Checkbutton(Button):
    """A button that toggles a Tcl variable between two values."""

    widget_class = "Checkbutton"
    option_specs = _COMMAND_SPECS + (
        OptionSpec("offvalue", "offValue", "Value", "0"),
        OptionSpec("onvalue", "onValue", "Value", "1"),
        OptionSpec("variable", "variable", "Variable", ""),
    )
    has_indicator = True

    def __init__(self, app, path: str, argv):
        super().__init__(app, path, argv)
        if not self.options["variable"]:
            # Default variable name: the window's leaf name, as in Tk.
            self.options["variable"] = self.window.name or "selectedButton"
        self._watch_variable()

    def _watch_variable(self) -> None:
        """Follow the -variable with a write trace so the indicator
        stays current however the variable is changed (as real Tk
        does)."""
        from ..tcl.commands.tracecmd import _table
        self._trace_command = "tkButtonVarChanged-%s" % self.path
        self.app.interp.register(
            self._trace_command,
            lambda interp, argv: self.schedule_redraw())
        _table(self.app.interp).add(self.options["variable"], "w",
                                    self._trace_command)

    def cleanup(self) -> None:
        if hasattr(self, "_trace_command"):
            from ..tcl.commands.tracecmd import _table
            _table(self.app.interp).remove(
                self.options.get("variable", ""), "w",
                self._trace_command)
            self.app.interp.commands.pop(self._trace_command, None)
        super().cleanup()

    def selected(self) -> bool:
        interp = self.app.interp
        name = self.options["variable"]
        if not interp.var_exists(name):
            return False
        return interp.get_global_var(name) == self.options["onvalue"]

    def invoke(self) -> None:
        self.toggle()
        command = self.command_script()
        if command is not None:
            self.app.interp.eval_global(command)

    def toggle(self) -> None:
        interp = self.app.interp
        name = self.options["variable"]
        new = self.options["offvalue"] if self.selected() \
            else self.options["onvalue"]
        interp.set_global_var(name, new)
        self.schedule_redraw()

    def cmd_toggle(self, args: List[str]) -> str:
        self.toggle()
        return ""

    def cmd_select(self, args: List[str]) -> str:
        self.app.interp.set_global_var(self.options["variable"],
                                       self.options["onvalue"])
        self.schedule_redraw()
        return ""

    def cmd_deselect(self, args: List[str]) -> str:
        self.app.interp.set_global_var(self.options["variable"],
                                       self.options["offvalue"])
        self.schedule_redraw()
        return ""

    def _draw_indicator(self, gc) -> None:
        display = self.app.display
        size = _INDICATOR_PX - 6
        y = max(0, (self.window.height - size) // 2)
        display.draw_rectangle(self.window.id, gc, 2, y, size, size)
        if self.selected():
            display.fill_rectangle(self.window.id, gc, 4, y + 2,
                                   size - 4, size - 4)


class Radiobutton(Checkbutton):
    """One of a group of buttons sharing a variable; selecting one
    stores its -value and deselects the others."""

    widget_class = "Radiobutton"
    option_specs = _COMMAND_SPECS + (
        OptionSpec("value", "value", "Value", ""),
        OptionSpec("variable", "variable", "Variable", "selectedButton"),
    )

    def selected(self) -> bool:
        interp = self.app.interp
        name = self.options["variable"]
        if not interp.var_exists(name):
            return False
        return interp.get_global_var(name) == self.options["value"]

    def invoke(self) -> None:
        self.cmd_select([])
        command = self.command_script()
        if command is not None:
            self.app.interp.eval_global(command)

    def toggle(self) -> None:
        self.cmd_select([])

    def cmd_select(self, args: List[str]) -> str:
        self.app.interp.set_global_var(self.options["variable"],
                                       self.options["value"])
        self.schedule_redraw()
        return ""

    def cmd_deselect(self, args: List[str]) -> str:
        interp = self.app.interp
        if self.selected():
            interp.set_global_var(self.options["variable"], "")
        self.schedule_redraw()
        return ""
