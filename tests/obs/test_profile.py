"""Tests for the profiler (repro.obs.profile)."""

from repro.obs import Profile, Tracer
from repro.obs import trace as trace_mod


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def build_trace():
    """proc outer (30ms total) -> cmd inner (10ms, 2 requests, 1 rt)."""
    clock = FakeClock()
    tracer = Tracer(clock)
    tracer.start()
    outer = tracer.begin("proc", "outer")
    clock.now += 10
    inner = tracer.begin("cmd", ".b", widget=".b")
    trace_mod.record_request("draw_string")
    trace_mod.record_request("draw_string")
    trace_mod.record_round_trip()
    clock.now += 10
    tracer.finish(inner)
    clock.now += 10
    tracer.finish(outer)
    tracer.stop()
    return tracer


class TestAggregation:
    def test_self_vs_cumulative(self):
        profile = Profile(build_trace().spans)
        outer = profile.by_name["proc outer"]
        inner = profile.by_name["cmd .b"]
        assert outer.cum_ms == 30
        assert outer.self_ms == 20       # 30 minus the child's 10
        assert inner.cum_ms == 10
        assert inner.self_ms == 10

    def test_request_and_round_trip_attribution(self):
        profile = Profile(build_trace().spans)
        inner = profile.by_name["cmd .b"]
        assert inner.requests == 2
        assert inner.round_trips == 1
        assert profile.by_request == {"draw_string": 2}

    def test_by_widget_rollup(self):
        profile = Profile(build_trace().spans)
        row = profile.by_widget[".b"]
        assert row.count == 1
        assert row.self_ms == 10
        assert row.requests == 2

    def test_repeated_calls_accumulate(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.start()
        for _ in range(3):
            span = tracer.begin("proc", "redraw")
            clock.now += 5
            tracer.finish(span)
        tracer.stop()
        row = Profile(tracer.spans).by_name["proc redraw"]
        assert row.count == 3
        assert row.cum_ms == 15

    def test_empty_trace(self):
        profile = Profile([])
        assert profile.by_name == {}
        assert profile.report()  # header-only report still renders


class TestReport:
    def test_report_contains_tables(self):
        text = Profile(build_trace().spans).report()
        assert "PROFILE by span" in text
        assert "PROFILE by widget" in text
        assert "PROFILE by x11 request type" in text
        assert "proc outer" in text
        assert "draw_string" in text

    def test_to_dict_ordering(self):
        data = Profile(build_trace().spans).to_dict()
        # ordered by self time, biggest first
        assert data["by_name"][0]["key"] == "proc outer"
        assert data["by_request_type"] == {"draw_string": 2}


def build_wire_trace():
    """A trace that crossed the wire: wire span + handle spans."""
    clock = FakeClock()
    tracer = Tracer(clock)
    tracer.start()
    outer = tracer.begin("proc", "outer")
    trace_mod.record_request("draw_string")
    trace_mod.record_request("draw_string")
    ctx, pairs = trace_mod.open_wire("batch", queue_ms=2)
    clock.now += 1
    trace_mod.record_handle(ctx, "batch", 0, 1)
    clock.now += 2
    trace_mod.record_handle(ctx, "draw_string", 1, 3)
    trace_mod.close_wire(ctx, pairs)
    tracer.finish(outer)
    tracer.stop()
    return tracer


class TestServerSideAttribution:
    def test_handle_time_attributed_to_request_name(self):
        profile = Profile(build_wire_trace().spans)
        assert profile.by_request_ms == {"batch": 1, "draw_string": 2}

    def test_counts_table_unperturbed_by_handle_spans(self):
        profile = Profile(build_wire_trace().spans)
        # the §3.3 traffic table still counts client-issued requests
        # only — handle spans never double-count
        assert profile.by_request == {"draw_string": 2}

    def test_to_dict_key_additive(self):
        assert "by_request_ms" not in \
            Profile(build_trace().spans).to_dict()
        data = Profile(build_wire_trace().spans).to_dict()
        assert data["by_request_ms"] == {"batch": 1, "draw_string": 2}

    def test_report_shows_handle_ms(self):
        text = Profile(build_wire_trace().spans).report()
        assert "draw_string" in text
        assert "handle 2ms" in text
        # server-only work (the batch framing tick) appears with a
        # zero client count rather than vanishing
        assert "handle 1ms" in text
