"""Tests for the button family (paper section 4)."""

import pytest

from repro.tcl import TclError
from repro.x11 import events as ev


class TestCreationCommand:
    def test_paper_example(self, app):
        """The exact creation command from section 4."""
        result = app.interp.eval(
            'button .hello -bg Red -text "Hello, world" '
            '-command "print Hello!\\n"')
        assert result == ".hello"
        assert app.interp.eval(".hello cget -text") == "Hello, world"
        assert app.interp.eval(".hello cget -bg") == "Red"

    def test_widget_command_created(self, app):
        app.interp.eval("button .b -text x")
        assert "​.b" not in app.interp.commands  # sanity: exact name below
        assert ".b" in app.interp.commands

    def test_creation_returns_path(self, app):
        assert app.interp.eval("label .l -text x") == ".l"

    def test_unknown_option_is_error(self, app):
        with pytest.raises(TclError, match="unknown option"):
            app.interp.eval("button .b -nosuch x")

    def test_missing_value_is_error(self, app):
        with pytest.raises(TclError):
            app.interp.eval("button .b -text")

    def test_synonym_bg_matches_background(self, app):
        app.interp.eval("button .b -bg pink")
        assert app.interp.eval(".b cget -background") == "pink"


class TestConfigure:
    def test_paper_reconfiguration(self, app):
        """'.hello configure -bg PalePink1 -relief sunken' (section 4)."""
        app.interp.eval("button .hello -bg Red -text hi")
        app.interp.eval(".hello configure -bg PalePink1 -relief sunken")
        assert app.interp.eval(".hello cget -bg") == "PalePink1"
        assert app.interp.eval(".hello cget -relief") == "sunken"

    def test_configure_query_single(self, app):
        app.interp.eval("button .b -text hi")
        entry = app.interp.eval(".b configure -text")
        assert entry == "-text text Text {} hi"

    def test_configure_query_all(self, app):
        app.interp.eval("button .b")
        listing = app.interp.eval(".b configure")
        assert "-background" in listing
        assert "-command" in listing

    def test_configure_changes_geometry(self, app, packed):
        packed("button .b -text ab", ".b")
        before = app.window(".b").requested_width
        app.interp.eval(".b configure -text {a much longer label}")
        app.update()
        assert app.window(".b").requested_width > before


class TestButtonBehaviour:
    def test_click_invokes_command(self, app, packed, click):
        packed("button .b -text go -command {set clicked 1}", ".b")
        click(app, ".b")
        assert app.interp.eval("set clicked") == "1"

    def test_invoke_widget_command(self, app, packed):
        packed("button .b -command {incr count} -text x", ".b")
        app.interp.eval("set count 0")
        app.interp.eval(".b invoke")
        app.interp.eval(".b invoke")
        assert app.interp.eval("set count") == "2"

    def test_flash(self, app, packed):
        packed("button .b -text x", ".b")
        app.interp.eval(".b flash")
        assert app.window(".b").widget.flash_count >= 4

    def test_disabled_button_ignores_clicks(self, app, packed, click):
        packed("button .b -text x -state disabled "
               "-command {set clicked 1}", ".b")
        click(app, ".b")
        assert app.interp.eval("info exists clicked") == "0"

    def test_release_outside_does_not_invoke(self, app, packed, server):
        packed("button .b -text x -command {set clicked 1}", ".b")
        window = app.window(".b")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 2, root_y + 2)
        server.press_button(1)
        server.warp_pointer(800, 800)      # drag off the button
        server.release_button(1)
        app.update()
        assert app.interp.eval("info exists clicked") == "0"

    def test_label_has_no_invoke(self, app, packed):
        packed("label .l -text x", ".l")
        with pytest.raises(TclError, match="bad option"):
            app.interp.eval(".l invoke")

    def test_command_error_reaches_error_info(self, app, packed, click):
        packed("button .b -text x -command {error inside-command}", ".b")
        with pytest.raises(TclError):
            app.window(".b").widget.invoke()


class TestGeometryRequests:
    def test_size_tracks_text(self, app, packed):
        packed("button .short -text ab", ".short")
        packed("button .long -text abcdefghij", ".long")
        short = app.window(".short").requested_width
        long_ = app.window(".long").requested_width
        assert long_ > short

    def test_explicit_width_in_chars(self, app, packed):
        packed("button .b -text ab -width 20 -padx 0 -bd 0", ".b")
        font = app.cache.font("fixed")
        assert app.window(".b").requested_width == 20 * font.char_width

    def test_padding_adds_size(self, app, packed):
        packed("button .a -text ab -padx 0 -pady 0 -bd 0", ".a")
        packed("button .b -text ab -padx 10 -pady 10 -bd 0", ".b")
        assert app.window(".b").requested_width == \
            app.window(".a").requested_width + 20


class TestCheckbutton:
    def test_toggle_sets_variable(self, app, packed):
        packed("checkbutton .c -text opt -variable flag", ".c")
        app.interp.eval(".c toggle")
        assert app.interp.eval("set flag") == "1"
        app.interp.eval(".c toggle")
        assert app.interp.eval("set flag") == "0"

    def test_click_toggles(self, app, packed, click):
        packed("checkbutton .c -text opt -variable flag", ".c")
        click(app, ".c")
        assert app.interp.eval("set flag") == "1"

    def test_custom_on_off_values(self, app, packed):
        packed("checkbutton .c -variable mode -onvalue yes "
               "-offvalue no -text x", ".c")
        app.interp.eval(".c select")
        assert app.interp.eval("set mode") == "yes"
        app.interp.eval(".c deselect")
        assert app.interp.eval("set mode") == "no"

    def test_command_runs_after_toggle(self, app, packed):
        packed("checkbutton .c -variable flag "
               "-command {set seen $flag} -text x", ".c")
        app.window(".c").widget.invoke()
        assert app.interp.eval("set seen") == "1"


class TestRadiobutton:
    def test_group_shares_variable(self, app, packed):
        packed("radiobutton .r1 -variable choice -value one -text 1",
               ".r1")
        packed("radiobutton .r2 -variable choice -value two -text 2",
               ".r2")
        app.interp.eval(".r1 select")
        assert app.interp.eval("set choice") == "one"
        app.interp.eval(".r2 select")
        assert app.interp.eval("set choice") == "two"

    def test_selected_state_follows_variable(self, app, packed):
        packed("radiobutton .r1 -variable choice -value one -text 1",
               ".r1")
        app.interp.eval("set choice one")
        assert app.window(".r1").widget.selected()
        app.interp.eval("set choice other")
        assert not app.window(".r1").widget.selected()

    def test_click_selects(self, app, packed, click):
        packed("radiobutton .r -variable choice -value mine -text x",
               ".r")
        click(app, ".r")
        assert app.interp.eval("set choice") == "mine"
