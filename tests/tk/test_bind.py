"""Tests for event bindings (paper section 3.2, Figure 7)."""

import io

import pytest

from repro.tcl import TclError
from repro.tk.bind import EventPattern, parse_sequence
from repro.x11 import events as ev


class TestSequenceParsing:
    def test_simple_event(self):
        (pattern,) = parse_sequence("<Enter>")
        assert pattern.event_type == ev.ENTER_NOTIFY

    def test_plain_character(self):
        (pattern,) = parse_sequence("a")
        assert pattern.event_type == ev.KEY_PRESS
        assert pattern.detail == "a"

    def test_keysym_in_angles(self):
        (pattern,) = parse_sequence("<Escape>")
        assert pattern.event_type == ev.KEY_PRESS
        assert pattern.detail == "Escape"

    def test_multi_event_sequence(self):
        patterns = parse_sequence("<Escape>q")
        assert len(patterns) == 2
        assert patterns[0].detail == "Escape"
        assert patterns[1].detail == "q"

    def test_double_button(self):
        (pattern,) = parse_sequence("<Double-Button-1>")
        assert pattern.event_type == ev.BUTTON_PRESS
        assert pattern.detail == "1"
        assert pattern.count == 2

    def test_triple(self):
        (pattern,) = parse_sequence("<Triple-1>")
        assert pattern.count == 3

    def test_control_modifier(self):
        (pattern,) = parse_sequence("<Control-q>")
        assert pattern.modifiers == ev.CONTROL_MASK
        assert pattern.detail == "q"

    def test_numeric_shorthand_is_button(self):
        (pattern,) = parse_sequence("<1>")
        assert pattern.event_type == ev.BUTTON_PRESS
        assert pattern.detail == "1"

    def test_b1_motion(self):
        (pattern,) = parse_sequence("<B1-Motion>")
        assert pattern.event_type == ev.MOTION_NOTIFY
        assert pattern.modifiers == ev.BUTTON1_MASK

    def test_key_release(self):
        (pattern,) = parse_sequence("<KeyRelease-a>")
        assert pattern.event_type == ev.KEY_RELEASE

    def test_space_keysym(self):
        (pattern,) = parse_sequence("<space>")
        assert pattern.event_type == ev.KEY_PRESS
        assert pattern.detail == "space"

    def test_missing_close_angle_is_error(self):
        with pytest.raises(TclError):
            parse_sequence("<Enter")

    def test_bad_keysym_is_error(self):
        with pytest.raises(TclError):
            parse_sequence("<NoSuchKeysym>")

    def test_empty_sequence_is_error(self):
        with pytest.raises(TclError):
            parse_sequence("   ")


class TestPatternMatching:
    def test_subset_modifiers_match(self):
        (pattern,) = parse_sequence("<Control-q>")
        event = ev.Event(ev.KEY_PRESS, keysym="q",
                         state=ev.CONTROL_MASK | ev.SHIFT_MASK)
        assert pattern.matches(event)

    def test_missing_modifier_fails(self):
        (pattern,) = parse_sequence("<Control-q>")
        assert not pattern.matches(ev.Event(ev.KEY_PRESS, keysym="q"))

    def test_detail_mismatch_fails(self):
        (pattern,) = parse_sequence("a")
        assert not pattern.matches(ev.Event(ev.KEY_PRESS, keysym="b"))


def bind_and_type(app, server, sequence, script, keys, path=".t",
                  state=0):
    app.interp.eval("frame %s -geometry 50x50" % path)
    app.interp.eval("pack append . %s {top}" % path)
    app.update()
    app.interp.eval("bind %s %s {%s}" % (path, sequence, script))
    window = app.window(path)
    for key in keys:
        server.press_key(key, state=state, window_id=window.id)
    app.update()


class TestBindCommand:
    def test_figure7_enter_binding(self, app, server):
        app.interp.eval("frame .x -geometry 60x60")
        app.interp.eval("pack append . .x {top}")
        app.update()
        app.interp.eval(r'bind .x <Enter> {print "hi\n"}')
        window = app.window(".x")
        server.warp_pointer(900, 900)   # make sure we are outside first
        app.update()
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 5, root_y + 5)
        app.update()
        assert app.interp.stdout.getvalue() == "hi\n"

    def test_figure7_key_binding(self, app, server):
        bind_and_type(app, server, "a", "set typed 1", ["a"])
        assert app.interp.eval("set typed") == "1"

    def test_figure7_escape_q_sequence(self, app, server):
        bind_and_type(app, server, "<Escape>q", "set seen 1",
                      ["Escape", "q"])
        assert app.interp.eval("set seen") == "1"

    def test_sequence_requires_both_events(self, app, server):
        bind_and_type(app, server, "<Escape>q", "set seen 1", ["q"])
        assert app.interp.eval("info exists seen") == "0"

    def test_sequence_wrong_order(self, app, server):
        bind_and_type(app, server, "<Escape>q", "set seen 1",
                      ["q", "Escape"])
        assert app.interp.eval("info exists seen") == "0"

    def test_figure7_double_click(self, app, server):
        app.interp.eval("frame .x -geometry 60x60")
        app.interp.eval("pack append . .x {top}")
        app.update()
        app.interp.eval("bind .x <Double-Button-1> {set coords %x,%y}")
        window = app.window(".x")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 7, root_y + 9)
        server.press_button(1)
        server.release_button(1)
        server.press_button(1)
        app.update()
        assert app.interp.eval("set coords") == "7,9"

    def test_single_click_does_not_fire_double(self, app, server):
        app.interp.eval("frame .x -geometry 60x60")
        app.interp.eval("pack append . .x {top}")
        app.update()
        app.interp.eval("bind .x <Double-Button-1> {set fired 1}")
        window = app.window(".x")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 5, root_y + 5)
        server.press_button(1)
        app.update()
        assert app.interp.eval("info exists fired") == "0"

    def test_slow_clicks_do_not_double(self, app, server):
        app.interp.eval("frame .x -geometry 60x60")
        app.interp.eval("pack append . .x {top}")
        app.update()
        app.interp.eval("bind .x <Double-Button-1> {set fired 1}")
        window = app.window(".x")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 5, root_y + 5)
        server.press_button(1)
        server.time_ms += 2000        # longer than the double-click time
        server.press_button(1)
        app.update()
        assert app.interp.eval("info exists fired") == "0"

    def test_control_q_with_state(self, app, server):
        bind_and_type(app, server, "<Control-q>", "set quit 1", ["q"],
                      state=ev.CONTROL_MASK)
        assert app.interp.eval("set quit") == "1"

    def test_control_binding_needs_control(self, app, server):
        bind_and_type(app, server, "<Control-q>", "set quit 1", ["q"])
        assert app.interp.eval("info exists quit") == "0"

    def test_more_specific_binding_wins(self, app, server):
        app.interp.eval("frame .t -geometry 50x50")
        app.interp.eval("pack append . .t {top}")
        app.update()
        app.interp.eval("bind .t <Key> {set which any}")
        app.interp.eval("bind .t a {set which letter-a}")
        window = app.window(".t")
        server.press_key("a", window_id=window.id)
        app.update()
        assert app.interp.eval("set which") == "letter-a"
        server.press_key("b", window_id=window.id)
        app.update()
        assert app.interp.eval("set which") == "any"

    def test_query_binding(self, app):
        app.interp.eval("frame .t")
        app.interp.eval("bind .t <Enter> {print hi}")
        assert app.interp.eval("bind .t <Enter>") == "print hi"

    def test_list_bindings(self, app):
        app.interp.eval("frame .t")
        app.interp.eval("bind .t <Enter> {print hi}")
        app.interp.eval("bind .t a {print a}")
        sequences = app.interp.eval("bind .t")
        assert "<Enter>" in sequences
        assert "a" in sequences

    def test_empty_script_removes_binding(self, app):
        app.interp.eval("frame .t")
        app.interp.eval("bind .t <Enter> {print hi}")
        app.interp.eval("bind .t <Enter> {}")
        assert app.interp.eval("bind .t <Enter>") == ""

    def test_class_bindings(self, app, server):
        """Bindings may be attached to a widget class name."""
        app.interp.eval("bind Frame x {set classbound 1}")
        app.interp.eval("frame .t -geometry 40x40")
        app.interp.eval("pack append . .t {top}")
        app.update()
        server.press_key("x", window_id=app.window(".t").id)
        app.update()
        assert app.interp.eval("set classbound") == "1"

    def test_window_binding_overrides_class(self, app, server):
        app.interp.eval("bind Frame x {set who class}")
        app.interp.eval("frame .t -geometry 40x40")
        app.interp.eval("pack append . .t {top}")
        app.update()
        app.interp.eval("bind .t x {set who window}")
        server.press_key("x", window_id=app.window(".t").id)
        app.update()
        assert app.interp.eval("set who") == "window"


class TestPercentSubstitution:
    def test_x_y_fields(self, app, server):
        app.interp.eval("frame .x -geometry 60x60")
        app.interp.eval("pack append . .x {top}")
        app.update()
        app.interp.eval('bind .x <Button-1> {set at "%x %y"}')
        window = app.window(".x")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 11, root_y + 13)
        server.press_button(1)
        app.update()
        assert app.interp.eval("set at") == "11 13"

    def test_keysym_and_window_fields(self, app, server):
        bind_and_type(app, server, "<Key>", "set info %K:%W", ["a"])
        assert app.interp.eval("set info") == "a:.t"

    def test_button_field(self, app, server):
        app.interp.eval("frame .x -geometry 60x60")
        app.interp.eval("pack append . .x {top}")
        app.update()
        app.interp.eval("bind .x <Button-3> {set b %b}")
        window = app.window(".x")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 1, root_y + 1)
        server.press_button(3)
        app.update()
        assert app.interp.eval("set b") == "3"

    def test_percent_percent(self, app, server):
        bind_and_type(app, server, "a", "set v 100%%", ["a"])
        assert app.interp.eval("set v") == "100%"

    def test_ascii_field_quoted(self, app, server):
        bind_and_type(app, server, "<space>", "set v [list %A]",
                      ["space"])
        assert app.interp.eval("set v") == "{ }"


class TestCrossTagSpecificity:
    def test_all_tag_bindings(self, app, server):
        app.interp.eval("frame .f -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind all <Control-q> {set quit 1}")
        server.press_key("q", state=ev.CONTROL_MASK,
                         window_id=app.window(".f").id)
        app.update()
        assert app.interp.eval("set quit") == "1"

    def test_specific_all_binding_beats_generic_window_binding(
            self, app, server):
        """A detailed binding on 'all' outranks a catch-all on the
        window, so global accelerators keep working inside entries."""
        app.interp.eval("entry .e")
        app.interp.eval("pack append . .e {top}")
        app.update()
        app.interp.eval("bind .e <Key> {set which window-generic}")
        app.interp.eval("bind all <Control-q> {set which all-specific}")
        server.press_key("q", state=ev.CONTROL_MASK,
                         window_id=app.window(".e").id)
        app.update()
        assert app.interp.eval("set which") == "all-specific"

    def test_window_beats_class_at_equal_specificity(self, app, server):
        app.interp.eval("frame .f -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind Frame x {set who class}")
        app.interp.eval("bind .f x {set who window}")
        server.press_key("x", window_id=app.window(".f").id)
        app.update()
        assert app.interp.eval("set who") == "window"
