"""Shimmer tests for the dual-representation value object.

Tcl 8.0's Tcl_Obj keeps the "everything is a string" semantics while
caching one internal rep (int, double, list) per value.  Because our
values are immutable, "shimmering" — dropping one rep to adopt another
— happens at variable-*write* boundaries: a write installs a new value
whose caches start empty.  These tests pin down both halves: reps are
cached and reused on reads, and no stale rep survives a write.
"""

import pytest

from repro.tcl import Interp
from repro.tcl.value import (Value, _NONNUM, attach_elements,
                             cached_elements, cached_number, literal,
                             number_of, to_str)


@pytest.fixture
def interp():
    return Interp()


class TestValueObject:
    def test_value_is_a_string(self):
        value = Value("42")
        assert isinstance(value, str)
        assert value == "42"
        assert {value: 1}["42"] == 1     # hashes like its string rep

    def test_numeric_rep_cached_on_first_use(self):
        value = Value("42")
        assert cached_number(value) == 42
        assert value.num == 42           # converted once, stored

    def test_non_numeric_rep_cached_as_nonnum(self):
        value = Value("hello")
        assert cached_number(value) is None
        assert value.num is _NONNUM      # "known non-number" is cached too
        assert cached_number(value) is None

    def test_raw_ints_and_floats_pass_through(self):
        assert cached_number(7) == 7
        assert cached_number(2.5) == 2.5
        assert cached_number(True) == 1

    def test_to_str_carries_the_number_back(self):
        out = to_str(42)
        assert out == "42"
        assert out.num == 42

    def test_to_str_float_round_trips_through_its_string(self):
        # The cache must equal what re-parsing the string rep gives,
        # so a value compares identically with or without the cache.
        out = to_str(1 / 3)
        assert out.num == float(str(out))

    def test_to_str_infinity_does_not_reparse(self):
        out = to_str(1e999)
        assert "inf" in out.lower()
        assert out.num is _NONNUM        # "inf" the string is not numeric

    def test_literal_wraps_once(self):
        lit = literal("99")
        assert literal(lit) is lit

    def test_list_rep_attach_and_fetch(self):
        value = Value("a b c")
        assert cached_elements(value) is None
        attach_elements(value, ["a", "b", "c"])
        assert cached_elements(value) == ("a", "b", "c")
        assert cached_elements("a b c") is None   # plain str: no cache


class TestNumberOf:
    """Table-driven coercion rules at the string<->number boundary."""

    @pytest.mark.parametrize("text, expected", [
        ("42", 42),
        (" 1 ", 1),                      # surrounding whitespace is fine
        ("-7", -7),
        ("+5", 5),
        ("3.5", 3.5),
        (".5", 0.5),
        ("0x10", 16),
        ("010", 8),                      # leading zero means octal
        ("1e3", 1000.0),
        ("08", None),                    # invalid octal, NOT 8.0
        ("- 5", None),                   # interior whitespace
        ("1_000", None),                 # Python digit separators
        ("inf", None),                   # spelled-out inf is a string
        ("nan", None),
        ("-inf", None),
        ("e5", None),
        ("0x", None),
        ("", None),
        ("abc", None),
    ])
    def test_parse(self, text, expected):
        assert number_of(text) == expected

    def test_float_literal_overflow_is_inf(self):
        assert number_of("1e999") == float("inf")


class TestShimmer:
    """Interpreter-level: caches are used on reads, dropped on writes."""

    def test_string_length_after_arithmetic(self, interp):
        interp.eval("set x 5")
        interp.eval("set y [expr {$x + 95}]")
        # The result arrived with a numeric cache; string commands must
        # still see the exact string rep.
        assert interp.eval("string length $y") == "3"
        assert interp.eval("expr {$y * 2}") == "200"

    def test_write_invalidates_numeric_rep(self, interp):
        interp.eval("set x 10")
        interp.eval("incr x")            # read through the numeric rep
        interp.eval("set x hello")       # write: new value, fresh caches
        assert interp.eval("string length $x") == "5"
        assert interp.eval(
            "expr {$x == \"hello\"}") == "1"

    def test_list_rep_survives_reads_across_commands(self, interp):
        interp.eval("set l {a b c}")
        assert interp.eval("lindex $l 1") == "b"
        assert interp.eval("llength $l") == "3"
        assert interp.eval("lrange $l 0 1") == "a b"

    def test_lappend_then_string_ops(self, interp):
        interp.eval("set l {a b}")
        interp.eval("lappend l c")
        assert interp.eval("set l") == "a b c"
        assert interp.eval("string length $l") == "5"
        assert interp.eval("lindex $l 2") == "c"

    def test_number_then_list_then_number(self, interp):
        # One value used under every rep in sequence.
        interp.eval("set v 12")
        assert interp.eval("expr {$v + 1}") == "13"
        assert interp.eval("llength $v") == "1"
        assert interp.eval("lindex $v 0") == "12"
        assert interp.eval("incr v") == "13"

    def test_upvar_alias_sees_writes(self, interp):
        interp.eval("""
            proc bump {name} {
                upvar $name local
                set local [expr {$local + 1}]
            }
        """)
        interp.eval("set counter 41")
        interp.eval("bump counter")
        assert interp.eval("set counter") == "42"
        assert interp.eval("string length $counter") == "2"

    def test_proc_formal_shimmering(self, interp):
        # A formal bound from a numeric result is still a full string.
        interp.eval("proc digits {n} {string length $n}")
        interp.eval("set big [expr {1000 * 1000}]")
        assert interp.eval("digits $big") == "7"

    def test_float_result_string_rep_is_tcl_formatted(self, interp):
        assert interp.eval("expr {7.0 / 2}") == "3.5"
        assert interp.eval("set x [expr {1.0 * 4}]") == "4.0"
        assert interp.eval("string length $x") == "3"

    def test_comparison_boundary_leading_zero(self, interp):
        # "08" is not a number, so == falls back to string comparison.
        assert interp.eval('expr {"08" == "8"}') == "0"
        assert interp.eval('expr {" 1 " == 1}') == "1"

    def test_overflow_literal_compares_numerically(self, interp):
        assert interp.eval("expr {1e999 > 1e308}") == "1"

    def test_spelled_inf_compares_as_string(self, interp):
        assert interp.eval('expr {"inf" == "inf"}') == "1"
        assert interp.eval('expr {"nan" == "nan"}') == "1"
