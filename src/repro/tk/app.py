"""The Tk application: window naming, the structure cache, and event
routing (paper sections 3.1-3.3).

A :class:`TkApp` bundles everything one Tk-based application owns: a
display connection, a Tcl interpreter with the Tk commands registered,
the window pathname table ("." is the main window, ".a.b" a grandchild,
section 3.1), the resource cache, the option database, the binding
table, the event dispatcher, the packer, and the selection/focus/send
managers.  Several applications may share one simulated
:class:`~repro.x11.xserver.XServer`, which is what ``send`` and the
selection work across.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..tcl.errors import TclError
from ..tcl.interp import Interp
from ..x11 import events as ev
from ..x11.display import Display
from ..x11.xserver import XServer
from .bind import BindingTable
from .cache import ResourceCache
from .dispatch import EventDispatcher
from .options import OptionDatabase
from .pack import Packer


def parse_path(path: str) -> Tuple[str, str]:
    """Split a window path name into (parent path, leaf name)."""
    if path == ".":
        return ("", "")
    if not path.startswith(".") or path.endswith(".") or ".." in path:
        raise TclError('bad window path name "%s"' % path)
    head, _, leaf = path.rpartition(".")
    return (head or ".", leaf)


class TkWindow:
    """Tk's client-side record of one window.

    Doubles as the *structure cache* of paper section 3.3: position,
    size, and parent/child relationships are kept here so widgets never
    have to query the X server for them.
    """

    def __init__(self, app: "TkApp", path: str, parent: Optional["TkWindow"],
                 class_name: str, width: int = 1, height: int = 1):
        self.app = app
        self.path = path
        self.parent = parent
        self.class_name = class_name
        self.name = parse_path(path)[1] if path != "." else ""
        self.children: List["TkWindow"] = []
        self.x = 0
        self.y = 0
        self.width = width
        self.height = height
        self.requested_width = width
        self.requested_height = height
        self.explicit_size = False
        self.manager = None            # geometry manager (section 3.4)
        self.mapped = False
        self.destroyed = False
        self.widget = None
        self._handlers: List[Tuple[int, Callable]] = []
        self._selected_mask = 0
        parent_id = parent.id if parent is not None else app.display.root
        self.id = app.display.create_window(parent_id, 0, 0, width, height)
        if parent is not None:
            parent.children.append(self)

    # -- event handlers (C-level handlers of section 3.2) ---------------

    def add_event_handler(self, mask: int, handler: Callable) -> None:
        self._handlers.append((mask, handler))
        self.update_select_mask()

    def update_select_mask(self) -> None:
        """Recompute and install the union of needed event masks."""
        mask = 0
        for handler_mask, _ in self._handlers:
            mask |= handler_mask
        mask |= self.app.bindings.select_mask(self.binding_tags())
        if mask != self._selected_mask:
            self._selected_mask = mask
            self.app.display.select_input(self.id, mask)

    def binding_tags(self) -> List[str]:
        return [self.path, self.class_name, "all"]

    # -- geometry (updates both server and the structure cache) ---------

    def move_resize(self, x: int, y: int, width: int, height: int) -> None:
        # A lost connection tears the application down, and teardown
        # re-runs geometry management (unpacking a child re-arranges
        # its parent); none of that may talk to the dead wire.
        if self.destroyed or self.app.display.closed:
            return
        width, height = max(1, width), max(1, height)
        if (x, y, width, height) == (self.x, self.y, self.width,
                                     self.height):
            return
        self.x, self.y = x, y
        size_changed = (width, height) != (self.width, self.height)
        self.width, self.height = width, height
        self.app.display.configure_window(self.id, x=x, y=y, width=width,
                                          height=height)
        if size_changed:
            self._size_changed()

    def resize(self, width: int, height: int) -> None:
        self.move_resize(self.x, self.y, width, height)

    def _size_changed(self) -> None:
        if self.widget is not None:
            self.widget.size_changed()
        if self.manager_of_children() is not None:
            self.manager_of_children().parent_configured(self)

    def manager_of_children(self):
        for child in self.children:
            if child.manager is not None:
                return child.manager
        return None

    def map(self) -> None:
        if not self.mapped and not self.destroyed \
                and not self.app.display.closed:
            self.mapped = True
            self.app.display.map_window(self.id)
            if self.widget is not None:
                self.widget.schedule_redraw()

    def unmap(self) -> None:
        if self.mapped and not self.destroyed \
                and not self.app.display.closed:
            self.mapped = False
            self.app.display.unmap_window(self.id)

    def root_position(self) -> Tuple[int, int]:
        x, y = self.x, self.y
        window = self.parent
        while window is not None:
            x += window.x
            y += window.y
            window = window.parent
        return x, y

    # -- lifetime ----------------------------------------------------------

    def destroy(self) -> None:
        if self.destroyed:
            return
        for child in list(self.children):
            child.destroy()
        self.destroyed = True
        if self.manager is not None:
            self.manager.forget(self)
        if self.widget is not None:
            self.widget.cleanup()
            self.widget = None
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        self.app._forget_window(self)
        # Destroying the main window tears down the whole application,
        # closing the display; the disconnect already destroyed every
        # window this client created, so only talk to a live connection.
        if not self.app.display.closed:
            self.app.display.destroy_window(self.id)

    def handle_event(self, event) -> None:
        """Route one X event addressed to this window."""
        if event.type == ev.CONFIGURE_NOTIFY:
            # Keep the structure cache current even for changes made
            # behind our back (e.g. a window manager).
            self.x, self.y = event.x, event.y
            if (event.width, event.height) != (self.width, self.height):
                self.width, self.height = event.width, event.height
                self._size_changed()
        for mask, handler in list(self._handlers):
            # A handler (or a binding it triggered) may destroy this
            # window — or the whole application — mid-dispatch; the
            # rest of the event must then die with it.
            if self.destroyed:
                return
            if mask & (ev.MASK_FOR_TYPE.get(event.type) or 0) or \
                    ev.MASK_FOR_TYPE.get(event.type) == 0:
                handler(event)
        if self.destroyed:
            return
        self.app.bindings.dispatch(self, event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TkWindow %s (%s) %dx%d>" % (self.path, self.class_name,
                                             self.width, self.height)


class TkApp:
    """One Tk-based application."""

    def __init__(self, server: XServer, name: str = "tk",
                 interp: Optional[Interp] = None,
                 main_class: str = "Toplevel",
                 cache_enabled: bool = True,
                 buffering_enabled: bool = True,
                 register_commands: bool = True,
                 transport=None):
        self.server = server
        self.display = Display(server, buffering_enabled=buffering_enabled,
                               transport=transport)
        self.interp = interp if interp is not None else Interp()
        # Application-wide observability hub on the server's virtual
        # clock.  The server's registry is *mounted* (x11.* metrics are
        # server-wide — the server may be shared between applications);
        # the interpreter's registry is *absorbed* so one `obs dump`
        # covers x11 + tk + tcl.
        from ..obs import Observability
        self.obs = Observability(clock=lambda: server.time_ms)
        self.obs.server = server
        self.obs.metrics.mount(server.obs.metrics)
        self.interp.rebind_obs(self.obs)
        self._m_events = self.obs.metrics.counter("tk.events.dispatched")
        # An X protocol error surfacing inside a Tcl command becomes an
        # ordinary TclError: scripts can catch it, bgerror can report
        # it, and the event loop survives it.
        from ..x11.xserver import XProtocolError
        if XProtocolError not in self.interp.native_error_types:
            self.interp.native_error_types = \
                self.interp.native_error_types + (XProtocolError,)
        self.cache = ResourceCache(self.display, enabled=cache_enabled,
                                   metrics=self.obs.metrics)
        self.options = OptionDatabase()
        self.bindings = BindingTable(self.interp)
        self.dispatcher = EventDispatcher(self)
        self.packer = Packer()
        self.destroyed = False
        self._reporting_error = False
        self.focus_window: Optional[TkWindow] = None
        self.grab_window: Optional[TkWindow] = None
        self._windows_by_path: Dict[str, TkWindow] = {}
        self._windows_by_id: Dict[int, TkWindow] = {}
        self._after_scripts: Dict[int, int] = {}
        self.main = TkWindow(self, ".", None, main_class,
                             width=200, height=200)
        self._register_window(self.main)
        # Key events propagate to the top level if no inner window wants
        # them; always listen there so focus redirection (section 3.7)
        # sees every keystroke in the application.
        self.main.add_event_handler(
            ev.KEY_PRESS_MASK | ev.KEY_RELEASE_MASK, lambda event: None)
        self._load_resource_manager_property()
        # Managers that need the window up-front.
        from .selection import SelectionManager
        from .send import SendManager
        self.selection = SelectionManager(self)
        self.sender = SendManager(self, name)
        self.name = self.sender.name
        if register_commands:
            from . import cmds
            from ..widgets import register_widget_commands
            cmds.register_tk_commands(self)
            register_widget_commands(self)
        if not hasattr(server, "apps"):
            server.apps = []
        server.apps.append(self)
        self.main.map()
        # Deliver the startup requests; applications must be visible on
        # the server as soon as the constructor returns (tests and other
        # clients inspect server state directly).
        self.display.flush()

    # ------------------------------------------------------------------
    # window table (section 3.1)
    # ------------------------------------------------------------------

    def window(self, path: str) -> TkWindow:
        window = self._windows_by_path.get(path)
        if window is None or window.destroyed:
            raise TclError('bad window path name "%s"' % path)
        return window

    def window_exists(self, path: str) -> bool:
        window = self._windows_by_path.get(path)
        return window is not None and not window.destroyed

    def create_window(self, path: str, class_name: str,
                      width: int = 1, height: int = 1) -> TkWindow:
        if path in self._windows_by_path and \
                not self._windows_by_path[path].destroyed:
            raise TclError('window name "%s" already exists in parent'
                           % parse_path(path)[1])
        parent_path, leaf = parse_path(path)
        if not leaf:
            raise TclError('bad window path name "%s"' % path)
        parent = self.window(parent_path)
        window = TkWindow(self, path, parent, class_name, width, height)
        self._register_window(window)
        return window

    def _register_window(self, window: TkWindow) -> None:
        self._windows_by_path[window.path] = window
        self._windows_by_id[window.id] = window

    def _forget_window(self, window: TkWindow) -> None:
        self._windows_by_path.pop(window.path, None)
        self._windows_by_id.pop(window.id, None)
        self.bindings.drop_tag(window.path)
        if self.focus_window is window:
            self.focus_window = None
        if window.path != ".":
            self.interp.commands.pop(window.path, None)
        if window is self.main:
            self.destroy()

    # ------------------------------------------------------------------
    # event routing
    # ------------------------------------------------------------------

    def deliver_event(self, event) -> None:
        if self.destroyed:
            return
        if self.sender.maybe_handle(event):
            return
        if self.selection.maybe_handle(event):
            return
        window = self._windows_by_id.get(event.window)
        if window is None or window.destroyed:
            return
        if self._blocked_by_grab(window, event):
            return
        if event.type in (ev.KEY_PRESS, ev.KEY_RELEASE) and \
                self.focus_window is not None and \
                not self.focus_window.destroyed:
            # Focus management (section 3.7): all keystrokes in any
            # window of the application go to the focus window.
            window = self.focus_window
        self._m_events.value += 1
        tracer = self.obs.tracer
        if tracer.enabled:
            span = tracer.begin("event", event.name, window.path)
            try:
                window.handle_event(event)
            finally:
                tracer.finish(span)
        else:
            window.handle_event(event)

    def set_focus(self, window: Optional[TkWindow]) -> None:
        self.focus_window = window

    def _blocked_by_grab(self, window: TkWindow, event) -> bool:
        """Pointer events outside a grab's subtree are discarded."""
        grab = self.grab_window
        if grab is None or grab.destroyed:
            self.grab_window = None
            return False
        if event.type not in (ev.BUTTON_PRESS, ev.BUTTON_RELEASE,
                              ev.MOTION_NOTIFY, ev.ENTER_NOTIFY,
                              ev.LEAVE_NOTIFY):
            return False
        current: Optional[TkWindow] = window
        while current is not None:
            if current is grab:
                return False
            current = current.parent
        return True

    # ------------------------------------------------------------------
    # option database wiring
    # ------------------------------------------------------------------

    def _load_resource_manager_property(self) -> None:
        """Read user preferences from the RESOURCE_MANAGER root property."""
        atom = self.display.intern_atom("RESOURCE_MANAGER")
        entry = self.display.get_property(self.display.root, atom)
        if entry is not None and isinstance(entry[1], str):
            self.options.load_string(entry[1])

    def option_value(self, window: TkWindow, db_name: str,
                     db_class: str) -> Optional[str]:
        """Query the option database for a widget option."""
        names, classes = self._option_path(window)
        return self.options.get(names, classes, db_name, db_class)

    def _option_path(self, window: TkWindow) -> Tuple[List[str], List[str]]:
        names: List[str] = []
        classes: List[str] = []
        current: Optional[TkWindow] = window
        while current is not None:
            names.append(current.name if current.path != "." else self.name)
            classes.append(current.class_name)
            current = current.parent
        names.reverse()
        classes.reverse()
        return names, classes

    # ------------------------------------------------------------------
    # background-error reporting (Tk's tkerror/bgerror mechanism)
    # ------------------------------------------------------------------

    def report_background_error(self, error) -> bool:
        """Report an error that escaped an event callback.

        If the application defines a ``bgerror`` proc (or the historical
        ``tkerror``), the error is handed to it and the dispatch loop
        keeps running; returns False when no handler exists, in which
        case the caller re-raises and the error unwinds as before.
        Both Tcl errors and X protocol errors are reported this way, so
        a BadWindow raised inside a binding cannot kill ``pump_all``.
        """
        if self._reporting_error:
            return False
        # Forensics first: if a flight-dump directory is configured,
        # capture the last few virtual seconds of telemetry before any
        # bgerror proc gets a chance to mutate state (never raises).
        self.obs.flight_autodump("bgerror")
        handler = None
        for candidate in ("bgerror", "tkerror"):
            if candidate in self.interp.commands:
                handler = candidate
                break
        if handler is None:
            return False
        from ..tcl.lists import quote_element
        message = getattr(error, "message", None) or str(error)
        self._reporting_error = True
        try:
            self.interp.eval_global(
                "%s %s" % (handler, quote_element(message)))
        except Exception:
            pass    # a broken bgerror must not re-kill the loop
        finally:
            self._reporting_error = False
        return True

    def connection_lost(self, error) -> None:
        """The display connection died (fault injection, server gone).

        Mirrors Tk's X I/O error handling: report once through the
        background-error path so scripts get to see it, then tear the
        application down — there is no wire left to keep running on.
        """
        if self.destroyed:
            return
        self.report_background_error(error)
        self.destroy()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def update(self) -> int:
        """Process all pending events (the ``update`` command)."""
        return self.dispatcher.update()

    def mainloop(self, until=None, max_iterations: int = 1000000) -> None:
        self.dispatcher.mainloop(until, max_iterations)

    def destroy(self) -> None:
        if self.destroyed:
            return
        self.destroyed = True
        # Deregister the tracer from the active set; its collected
        # spans stay readable for post-mortem dumps.
        self.obs.tracer.stop()
        if not self.main.destroyed:
            self.main.destroy()
        self.sender.unregister()
        self.display.close()
        if self in getattr(self.server, "apps", []):
            self.server.apps.remove(self)


def pump_all(server: XServer, max_rounds: int = 10000) -> int:
    """Process pending events for every application on ``server``.

    In-process stand-in for the X scheduler: used by send/selection
    waits and by tests that need two applications to make progress.
    Returns the number of rounds in which any application did work, so
    callers (the send wait loop) can detect a quiescent system.
    """
    worked = 0
    for _ in range(max_rounds):
        busy = False
        for app in list(getattr(server, "apps", [])):
            if not app.destroyed and app.dispatcher.do_one_event():
                busy = True
        if not busy:
            break
        worked += 1
    return worked
