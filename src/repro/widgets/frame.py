"""Frame widget: a container used to group and arrange other widgets.

Frames have no behaviour of their own; they exist to be parents for
geometry management (paper section 3.4).  The old-Tk ``-geometry``
option ("200x100") pins an explicit size, which is how the parent
window of the paper's Figure 8 example gets its fixed 120x160 size.
"""

from __future__ import annotations

from typing import Tuple

from ..tcl.errors import TclError
from ..tk.widget import OptionSpec, Widget


class Frame(Widget):
    widget_class = "Frame"
    option_specs = (
        OptionSpec("background", "background", "Background", "#dddddd",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "0",
                   synonyms=("bd",)),
        OptionSpec("geometry", "geometry", "Geometry", ""),
        OptionSpec("relief", "relief", "Relief", "flat"),
    )

    def preferred_size(self) -> Tuple[int, int]:
        geometry_spec = self.options["geometry"]
        if geometry_spec:
            return self._parse_geometry(geometry_spec)
        return (self.window.requested_width, self.window.requested_height)

    def configure_changed(self, changed) -> None:
        if self.options["geometry"]:
            # An explicit size wins over geometry propagation.
            width, height = self._parse_geometry(self.options["geometry"])
            self.window.explicit_size = True
            self.window.resize(width, height)
            self.window.requested_width = width
            self.window.requested_height = height
        super().configure_changed(changed)

    def _parse_geometry(self, spec: str) -> Tuple[int, int]:
        width_text, sep, height_text = spec.partition("x")
        if not sep:
            raise TclError('bad geometry "%s": expected widthxheight'
                           % spec)
        try:
            return (int(width_text), int(height_text))
        except ValueError:
            raise TclError('bad geometry "%s": expected widthxheight'
                           % spec)

    def draw(self) -> None:
        self.draw_border()
