#!wish -f
# A complete little application in pure Tcl (paper section 5): a to-do
# list.  Type a task and press Return to add it; select a task and
# press "Done" to remove it (after a confirmation dialog); the status
# line is a label wired to a variable.

wm title . "To-do"

set status "0 tasks"
set draft {}

entry .input -textvariable draft
label .status -textvariable status
listbox .tasks -scroll ".sb set" -geometry 24x8
scrollbar .sb -command ".tasks view"
button .done -text "Done" -command finishSelected

pack append . .input {top fillx} .status {top fillx} \
    .sb {right filly} .done {bottom} .tasks {top expand fill}

proc refreshStatus {} {
    global status
    set status "[.tasks size] tasks"
}

proc addTask {} {
    global draft
    if {[string length [string trim $draft]] == 0} {
        return
    }
    .tasks insert end [string trim $draft]
    set draft {}
    refreshStatus
}

proc finishSelected {} {
    set picked [.tasks curselection]
    if {[llength $picked] == 0} {
        mkdialog .oops "Select a task first" OK
        return
    }
    set index [index $picked 0]
    set task [.tasks get $index]
    if {[mkdialog .confirm "Finish \"$task\"?" Yes No] == 0} {
        .tasks delete $index
        refreshStatus
    }
}

bind .input <Return> {addTask}
focus .input
