"""Scale (slider) widget.

A scale displays a value in a range and invokes its ``-command`` with
the new value appended whenever the user moves the slider — the same
command-composition idiom as the scrollbar (paper section 4).
"""

from __future__ import annotations

from typing import List, Tuple

from ..tcl.errors import TclError
from ..tcl.strings import _to_int
from ..tk.widget import OptionSpec, Widget
from ..x11 import events as ev


class Scale(Widget):
    widget_class = "Scale"
    option_specs = (
        OptionSpec("background", "background", "Background", "#dddddd",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
                   synonyms=("bd",)),
        OptionSpec("command", "command", "Command", ""),
        OptionSpec("font", "font", "Font", "fixed"),
        OptionSpec("foreground", "foreground", "Foreground", "black",
                   synonyms=("fg",)),
        OptionSpec("from", "from", "From", "0"),
        OptionSpec("label", "label", "Label", ""),
        OptionSpec("length", "length", "Length", "100"),
        OptionSpec("orient", "orient", "Orient", "horizontal"),
        OptionSpec("showvalue", "showValue", "ShowValue", "1"),
        OptionSpec("sliderlength", "sliderLength", "SliderLength", "25"),
        OptionSpec("to", "to", "To", "100"),
        OptionSpec("width", "width", "Width", "15"),
    )

    def __init__(self, app, path: str, argv):
        self.value = 0
        super().__init__(app, path, argv)
        self.value = self._from()
        self.window.add_event_handler(
            ev.BUTTON_PRESS_MASK | ev.BUTTON_MOTION_MASK, self._on_event)

    def _from(self) -> int:
        return _to_int(self.options["from"])

    def _to(self) -> int:
        return _to_int(self.options["to"])

    # -- geometry ----------------------------------------------------------

    def preferred_size(self) -> Tuple[int, int]:
        length = self.int_option("length")
        width = self.int_option("width")
        font = self.font()
        extra = font.line_height if self.options["showvalue"] == "1" else 0
        if self.options["label"]:
            extra += font.line_height
        if self.options["orient"] == "horizontal":
            return (length, width + extra + 4)
        return (width + extra + 4, length)

    # -- widget commands ----------------------------------------------------

    def cmd_set(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s set value"'
                           % self.path)
        self._set_value(_to_int(args[0]), invoke=False)
        return ""

    def cmd_get(self, args: List[str]) -> str:
        return str(self.value)

    # -- behaviour -------------------------------------------------------

    def _on_event(self, event) -> None:
        if event.type == ev.MOTION_NOTIFY and \
                not event.state & ev.BUTTON1_MASK:
            return
        position = event.x if self.options["orient"] == "horizontal" \
            else event.y
        length = max(1, self.int_option("length"))
        low, high = self._from(), self._to()
        fraction = min(1.0, max(0.0, position / length))
        self._set_value(int(round(low + fraction * (high - low))),
                        invoke=True)

    def _set_value(self, value: int, invoke: bool) -> None:
        low, high = sorted((self._from(), self._to()))
        value = max(low, min(high, value))
        changed = value != self.value
        self.value = value
        self.schedule_redraw()
        if invoke and changed and self.options["command"]:
            self.app.interp.eval_global(
                "%s %d" % (self.options["command"], value))

    # -- drawing ----------------------------------------------------------

    def draw(self) -> None:
        display = self.app.display
        font = self.font()
        gc = self.app.cache.gc(foreground=self.color("foreground"),
                               font=font.name)
        y = 0
        if self.options["label"]:
            display.draw_string(self.window.id, gc, 2, y,
                                self.options["label"])
            y += font.line_height
        if self.options["showvalue"] == "1":
            display.draw_string(self.window.id, gc, 2, y, str(self.value))
            y += font.line_height
        length = self.int_option("length")
        width = self.int_option("width")
        low, high = self._from(), self._to()
        span = max(1, high - low)
        slider = self.int_option("sliderlength")
        position = int((self.value - low) / span *
                       max(1, length - slider))
        if self.options["orient"] == "horizontal":
            display.draw_rectangle(self.window.id, gc, 0, y,
                                   length - 1, width)
            display.fill_rectangle(self.window.id, gc, position, y,
                                   slider, width)
        else:
            display.draw_rectangle(self.window.id, gc, y, 0,
                                   width, length - 1)
            display.fill_rectangle(self.window.id, gc, y, position,
                                   width, slider)
        self.draw_border()
