"""Tcl list parsing and formatting.

Tcl has one data type — strings — but several commands expect their
strings to be formatted as Lisp-like lists (paper section 2): elements
separated by white space, with braces or backslashes quoting elements
that contain special characters.  These helpers implement the two
directions so that ``format_list(parse_list(s))`` preserves the element
values exactly, which is the invariant the property-based tests check.
"""

from __future__ import annotations

from typing import Iterable, List

from .errors import TclError
from .value import Value, attach_elements, cached_elements

_WHITESPACE = " \t\n\r\f\v"

#: Characters that force an element to be quoted when formatting.
_SPECIALS = set(_WHITESPACE) | set('{}[]$";\\')

_BACKSLASH_MAP = {
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "v": "\v",
}
_REVERSE_BACKSLASH = {v: "\\" + k for k, v in _BACKSLASH_MAP.items()}


def parse_list(text: str) -> List[str]:
    """Split a string into its list elements.

    Raises :class:`TclError` for malformed lists (unmatched braces or
    quotes), matching the diagnostics of the C implementation.

    A :class:`~repro.tcl.value.Value` carrying a cached list rep skips
    the parse; the first successful parse of a Value attaches one, so
    ``foreach``/``lindex`` over the same stored list split it once.
    A fresh list is returned either way — callers mutate their copy.
    """
    cached = cached_elements(text)
    if cached is not None:
        return list(cached)
    elements = _parse_list_uncached(text)
    attach_elements(text, elements)
    return elements


def _parse_list_uncached(text: str) -> List[str]:
    elements: List[str] = []
    pos = 0
    end = len(text)
    while True:
        while pos < end and text[pos] in _WHITESPACE:
            pos += 1
        if pos >= end:
            return elements
        if text[pos] == "{":
            element, pos = _parse_braced(text, pos)
        elif text[pos] == '"':
            element, pos = _parse_quoted(text, pos)
        else:
            element, pos = _parse_bare(text, pos)
        elements.append(element)


def _parse_braced(text: str, pos: int) -> tuple:
    end = len(text)
    depth = 1
    pos += 1
    start = pos
    pieces: List[str] = []
    while pos < end:
        ch = text[pos]
        if ch == "\\" and pos + 1 < end:
            if text[pos + 1] == "\n":
                pieces.append(text[start:pos])
                pieces.append(" ")
                pos += 2
                start = pos
            else:
                pos += 2
        elif ch == "{":
            depth += 1
            pos += 1
        elif ch == "}":
            depth -= 1
            pos += 1
            if depth == 0:
                pieces.append(text[start:pos - 1])
                if pos < end and text[pos] not in _WHITESPACE:
                    raise TclError(
                        "list element in braces followed by \"%s\" instead "
                        "of space" % text[pos:pos + 10])
                return "".join(pieces), pos
        else:
            pos += 1
    raise TclError("unmatched open brace in list")


def _parse_quoted(text: str, pos: int) -> tuple:
    end = len(text)
    pos += 1
    out: List[str] = []
    while pos < end:
        ch = text[pos]
        if ch == "\\":
            piece, pos = _parse_backslash(text, pos)
            out.append(piece)
        elif ch == '"':
            pos += 1
            if pos < end and text[pos] not in _WHITESPACE:
                raise TclError(
                    "list element in quotes followed by \"%s\" instead "
                    "of space" % text[pos:pos + 10])
            return "".join(out), pos
        else:
            out.append(ch)
            pos += 1
    raise TclError("unmatched open quote in list")


def _parse_bare(text: str, pos: int) -> tuple:
    end = len(text)
    out: List[str] = []
    while pos < end and text[pos] not in _WHITESPACE:
        if text[pos] == "\\":
            piece, pos = _parse_backslash(text, pos)
            out.append(piece)
        else:
            out.append(text[pos])
            pos += 1
    return "".join(out), pos


def _parse_backslash(text: str, pos: int) -> tuple:
    end = len(text)
    pos += 1  # skip the backslash
    if pos >= end:
        return "\\", pos
    ch = text[pos]
    pos += 1
    if ch in _BACKSLASH_MAP:
        return _BACKSLASH_MAP[ch], pos
    if ch == "x":
        digits = ""
        while pos < end and len(digits) < 2 and \
                text[pos] in "0123456789abcdefABCDEF":
            digits += text[pos]
            pos += 1
        return (chr(int(digits, 16)) if digits else "x"), pos
    if ch in "01234567":
        digits = ch
        while pos < end and len(digits) < 3 and text[pos] in "01234567":
            digits += text[pos]
            pos += 1
        return chr(int(digits, 8)), pos
    return ch, pos


def _braces_balanced(text: str) -> bool:
    """True if braces nest properly and no brace is backslash-escaped."""
    depth = 0
    i = 0
    end = len(text)
    while i < end:
        ch = text[i]
        if ch == "\\":
            # Escaped braces would change nesting; backslash-newline
            # would be collapsed to a space when parsed back.
            if i + 1 < end and text[i + 1] in "{}\n":
                return False
            i += 2
            continue
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return False
        i += 1
    return depth == 0


def quote_element(element: str) -> str:
    """Quote a single value so it reads back as exactly one list element."""
    if element == "":
        return "{}"
    needs_quoting = any(ch in _SPECIALS for ch in element) or \
        element[0] == '"' or element[0] == "#"
    if not needs_quoting:
        return element
    if _braces_balanced(element) and not element.endswith("\\"):
        return "{" + element + "}"
    out: List[str] = []
    for ch in element:
        if ch in '{}[]$" \\;':
            out.append("\\" + ch)
        elif ch in _REVERSE_BACKSLASH:
            out.append(_REVERSE_BACKSLASH[ch])
        else:
            out.append(ch)
    return "".join(out)


def format_list(elements: Iterable[str]) -> str:
    """Join values into a well-formed Tcl list string."""
    return " ".join(quote_element(element) for element in elements)


def list_value(elements: Iterable[str]) -> Value:
    """Format a list whose result carries its list rep pre-cached.

    ``parse_list(format_list(e)) == e`` is the formatting invariant, so
    the elements themselves *are* the list rep of the formatted string:
    commands that build lists (``list``, ``lrange``, ``lsort``) can
    hand their result straight to a consumer (``foreach``, ``lindex``)
    without the round trip through the parser.
    """
    elements = [element if type(element) is str or type(element) is Value
                else str(element) for element in elements]
    out = Value(" ".join(quote_element(element) for element in elements))
    out.elements = tuple(elements)
    return out
