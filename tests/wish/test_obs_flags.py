"""The wish --trace / --metrics-out observability flags."""

import json

from repro.wish.shell import main

SCRIPT = 'button .b -text hi\npack append . .b {top}\nupdate\ndestroy .\n'


def _write_script(tmp_path):
    script = tmp_path / "app.tcl"
    script.write_text(SCRIPT)
    return str(script)


class TestMetricsOut:
    def test_writes_obs_dump_json(self, tmp_path):
        out = tmp_path / "obs.json"
        status = main(["--metrics-out", str(out), "-f",
                       _write_script(tmp_path)])
        assert status == 0
        data = json.loads(out.read_text())
        assert set(data) - {"journal"} == {"metrics", "trace",
                                           "profile"}
        assert data["metrics"]["x11.requests{type=create_window}"] >= 2
        # --metrics-out alone still records spans for the profile
        assert data["trace"]["spans"]

    def test_flag_order_independent(self, tmp_path):
        out = tmp_path / "obs.json"
        status = main(["-f", _write_script(tmp_path),
                       "--metrics-out", str(out)])
        assert status == 0
        assert out.exists()


class TestTraceFlag:
    def test_prints_span_tree_to_stderr(self, tmp_path, capsys):
        status = main(["--trace", "-f", _write_script(tmp_path)])
        assert status == 0
        err = capsys.readouterr().err
        assert err.startswith("TRACE:")
        assert "cmd button" in err

    def test_trace_enables_wire_log(self, tmp_path):
        out = tmp_path / "obs.json"
        status = main(["--trace", "--metrics-out", str(out), "-f",
                       _write_script(tmp_path)])
        assert status == 0
        data = json.loads(out.read_text())
        assert any(entry["request"] == "create_window"
                   for entry in data["trace"]["wire"])


class TestNoFlags:
    def test_plain_run_unchanged(self, tmp_path, capsys):
        status = main(["-f", _write_script(tmp_path)])
        assert status == 0
        assert "TRACE" not in capsys.readouterr().err


class TestJournalFlag:
    def test_records_session_to_file(self, tmp_path):
        out = tmp_path / "session.journal"
        status = main(["--journal", str(out), "-f",
                       _write_script(tmp_path)])
        assert status == 0
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["k"] == "header"
        assert "button .b" in header["script"]
        kinds = {json.loads(line)["k"] for line in lines[1:]}
        assert {"req", "batch"} <= kinds

    def test_replay_of_recorded_session_matches(self, tmp_path, capsys):
        out = tmp_path / "session.journal"
        assert main(["--journal", str(out), "-f",
                     _write_script(tmp_path)]) == 0
        status = main(["--replay", str(out)])
        assert status == 0
        assert "REPLAY mode=default: MATCH" in capsys.readouterr().err

    def test_replay_all_ablation_modes(self, tmp_path, capsys):
        out = tmp_path / "session.journal"
        assert main(["--journal", str(out), "-f",
                     _write_script(tmp_path)]) == 0
        status = main(["--replay", str(out),
                       "--replay-mode", "cache_off",
                       "--replay-mode", "compile_off",
                       "--replay-mode", "buffering_off"])
        assert status == 0
        assert capsys.readouterr().err.count("MATCH") == 3

    def test_replay_divergence_exits_one(self, tmp_path, capsys):
        out = tmp_path / "session.journal"
        assert main(["--journal", str(out), "-f",
                     _write_script(tmp_path)]) == 0
        # tamper with the recorded setup: the replay must notice
        tampered = out.read_text().replace("-text hi", "-text bye")
        out.write_text(tampered)
        status = main(["--replay", str(out)])
        assert status == 1
        assert "DIVERGED" in capsys.readouterr().err

    def test_unknown_replay_mode_exits_two(self, tmp_path, capsys):
        out = tmp_path / "session.journal"
        assert main(["--journal", str(out), "-f",
                     _write_script(tmp_path)]) == 0
        status = main(["--replay", str(out),
                       "--replay-mode", "bogus"])
        assert status == 2
        assert "unknown replay mode" in capsys.readouterr().err
