"""Screen-dump renderer for the simulated display.

The real Tk drew pixels into X windows; the simulator records drawing
requests per window (fill/rect/line/text) and this module composites
them into a character-cell "screen dump" — the reproduction of the
paper's Figure 10.  A coarse PPM pixel renderer is also provided.

The character grid maps ``cell_width`` x ``cell_height`` pixels to one
character (defaults match the 6x13 "fixed" font rounded up, so text
drawn at font positions lands on sensible cells).
"""

from __future__ import annotations

from typing import List, Optional

from .window import Window
from .xserver import XServer


def _shade_for_pixel(pixel: Optional[int]) -> str:
    """Map a background pixel value to a shading character."""
    if pixel is None:
        return " "
    red = (pixel >> 16) & 0xFF
    green = (pixel >> 8) & 0xFF
    blue = pixel & 0xFF
    brightness = (red * 299 + green * 587 + blue * 114) // 1000
    if brightness >= 200:
        return " "
    if brightness >= 140:
        return "."
    if brightness >= 80:
        return ":"
    return "#"


class TextCanvas:
    """A character grid with clipped drawing primitives."""

    def __init__(self, columns: int, rows: int):
        self.columns = columns
        self.rows = rows
        self.cells: List[List[str]] = [[" "] * columns for _ in range(rows)]

    def put(self, column: int, row: int, char: str) -> None:
        if 0 <= column < self.columns and 0 <= row < self.rows:
            self.cells[row][column] = char

    def fill(self, column: int, row: int, width: int, height: int,
             char: str) -> None:
        for r in range(row, row + height):
            for c in range(column, column + width):
                self.put(c, r, char)

    def put_soft(self, column: int, row: int, char: str) -> None:
        """Write only over background shading or other border marks,
        never over text."""
        if 0 <= column < self.columns and 0 <= row < self.rows and \
                self.cells[row][column] in " .:#-|+":
            self.cells[row][column] = char

    def outline(self, column: int, row: int, width: int,
                height: int) -> None:
        if width <= 0 or height <= 0:
            return
        for c in range(column, column + width):
            self.put_soft(c, row, "-")
            self.put_soft(c, row + height - 1, "-")
        for r in range(row, row + height):
            self.put_soft(column, r, "|")
            self.put_soft(column + width - 1, r, "|")
        for c, r in ((column, row), (column + width - 1, row),
                     (column, row + height - 1),
                     (column + width - 1, row + height - 1)):
            self.put_soft(c, r, "+")

    def text(self, column: int, row: int, string: str) -> None:
        for offset, char in enumerate(string):
            self.put(column + offset, row, char)

    def render(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self.cells)


class Renderer:
    """Composites a window subtree into a :class:`TextCanvas`."""

    def __init__(self, server: XServer, cell_width: int = 8,
                 cell_height: int = 16):
        self.server = server
        self.cell_width = cell_width
        self.cell_height = cell_height

    def _to_cell(self, x: int, y: int) -> tuple:
        return (x // self.cell_width, y // self.cell_height)

    def render_window(self, window_id: int) -> str:
        """Render one window (and its descendants) as text."""
        window = self.server.window(window_id)
        columns = max(1, -(-window.width // self.cell_width))
        rows = max(1, -(-window.height // self.cell_height))
        canvas = TextCanvas(columns, rows)
        origin_x, origin_y = window.root_position()
        self._paint(window, canvas, origin_x, origin_y)
        return canvas.render()

    def render_screen(self) -> str:
        return self.render_window(self.server.root.id)

    def _paint(self, window: Window, canvas: TextCanvas,
               origin_x: int, origin_y: int) -> None:
        if not window.mapped and window.parent is not None:
            return
        window_x, window_y = window.root_position()
        base_col, base_row = self._to_cell(window_x - origin_x,
                                           window_y - origin_y)
        width_cells = max(1, window.width // self.cell_width)
        height_cells = max(1, window.height // self.cell_height)
        background = _shade_for_pixel(window.background)
        if background != " " or window.parent is not None:
            canvas.fill(base_col, base_row, width_cells, height_cells,
                        background)
        if window.border_width > 0:
            canvas.outline(base_col, base_row, width_cells, height_cells)
        for op in window.draw_ops:
            self._paint_op(op, canvas, base_col, base_row)
        for child in window.children:
            self._paint(child, canvas, origin_x, origin_y)

    def _paint_op(self, op, canvas: TextCanvas, base_col: int,
                  base_row: int) -> None:
        if op.kind == "fill":
            x, y, width, height = op.args
            col, row = self._to_cell(x, y)
            pixel = op.gc_values.get("foreground")
            char = _shade_for_pixel(pixel if pixel is not None else 0)
            if char == " ":
                char = "."
            canvas.fill(base_col + col, base_row + row,
                        max(1, width // self.cell_width),
                        max(1, height // self.cell_height), char)
        elif op.kind == "rect":
            x, y, width, height = op.args
            col, row = self._to_cell(x, y)
            canvas.outline(base_col + col, base_row + row,
                           max(2, -(-width // self.cell_width)),
                           max(2, -(-height // self.cell_height)))
        elif op.kind == "line":
            x1, y1, x2, y2 = op.args
            self._paint_line(canvas, base_col, base_row, x1, y1, x2, y2)
        elif op.kind == "text":
            x, y, text = op.args
            col, row = self._to_cell(x, y)
            canvas.text(base_col + col, base_row + row, text)

    def _paint_line(self, canvas: TextCanvas, base_col: int, base_row: int,
                    x1: int, y1: int, x2: int, y2: int) -> None:
        col1, row1 = self._to_cell(x1, y1)
        col2, row2 = self._to_cell(x2, y2)
        if row1 == row2:
            for col in range(min(col1, col2), max(col1, col2) + 1):
                canvas.put(base_col + col, base_row + row1, "-")
        elif col1 == col2:
            for row in range(min(row1, row2), max(row1, row2) + 1):
                canvas.put(base_col + col1, base_row + row, "|")
        else:
            steps = max(abs(col2 - col1), abs(row2 - row1))
            for step in range(steps + 1):
                col = col1 + (col2 - col1) * step // steps
                row = row1 + (row2 - row1) * step // steps
                canvas.put(base_col + col, base_row + row, "*")


def render_ppm(server: XServer, window_id: int, scale: int = 1) -> bytes:
    """Render a window subtree as a binary PPM image (backgrounds only)."""
    window = server.window(window_id)
    width, height = window.width * scale, window.height * scale
    white = (255, 255, 255)
    pixels = [[white] * width for _ in range(height)]
    origin_x, origin_y = window.root_position()

    def paint(win: Window) -> None:
        if not win.mapped and win.parent is not None:
            return
        win_x, win_y = win.root_position()
        x0 = (win_x - origin_x) * scale
        y0 = (win_y - origin_y) * scale
        pixel_value = win.background if win.background is not None \
            else 0xFFFFFF
        rgb = ((pixel_value >> 16) & 0xFF, (pixel_value >> 8) & 0xFF,
               pixel_value & 0xFF)
        for y in range(max(0, y0), min(height, y0 + win.height * scale)):
            row = pixels[y]
            for x in range(max(0, x0), min(width, x0 + win.width * scale)):
                row[x] = rgb
        for child in win.children:
            paint(child)

    paint(window)
    header = b"P6\n%d %d\n255\n" % (width, height)
    body = bytearray()
    for row in pixels:
        for rgb in row:
            body.extend(rgb)
    return header + bytes(body)
