"""The README's code snippets must actually work."""

import io

from repro.tk import TkApp
from repro.x11 import XServer


def test_readme_quickstart_snippet():
    server = XServer()
    app = TkApp(server, name="hello")
    app.interp.stdout = io.StringIO()

    app.interp.eval('button .hello -bg Red -text "Hello, world" '
                    '-command {print Hello!}')
    app.interp.eval('pack append . .hello {top expand fill}')
    app.update()

    app.interp.eval('.hello flash')
    app.interp.eval('.hello configure -bg PalePink1 -relief sunken')

    x, y = app.window('.hello').root_position()
    server.warp_pointer(x + 3, y + 3)
    server.press_button(1)
    server.release_button(1)
    app.update()

    assert app.interp.stdout.getvalue() == "Hello!"
    assert app.interp.eval(".hello cget -bg") == "PalePink1"


def test_readme_send_snippet():
    server = XServer()
    editor = TkApp(server, name="editor")
    debugger = TkApp(server, name="debugger")
    for application in (editor, debugger):
        application.interp.stdout = io.StringIO()
    debugger.interp.eval(
        'proc setBreakpoint {line} {return "break at $line"}')
    assert editor.interp.eval(
        'send debugger setBreakpoint 42') == "break at 42"


def test_readme_wish_snippet(tmp_path):
    import os
    from repro.wish import Wish
    (tmp_path / "a_file").write_text("x")
    shell = Wish(stdout=io.StringIO(), argv=[str(tmp_path)])
    script = os.path.join(os.path.dirname(__file__), "..", "..",
                          "examples", "browse.tcl")
    shell.run_file(script)
    assert int(shell.interp.eval(".list size")) >= 3
