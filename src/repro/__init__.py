"""repro — a pure-Python reproduction of "An X11 Toolkit Based on the
Tcl Language" (Ousterhout, USENIX Winter 1991).

Subpackages:

* :mod:`repro.tcl` — the Tcl command language and interpreter.
* :mod:`repro.x11` — a simulated X11 display server and client library.
* :mod:`repro.tk` — the Tk toolkit intrinsics (bind, pack, options,
  selection, focus, send, caches, dispatcher).
* :mod:`repro.widgets` — the Tk widget set.
* :mod:`repro.wish` — the windowing shell.
* :mod:`repro.baseline` — the Xt/Motif-like comparison toolkit.

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["tcl", "x11", "tk", "widgets", "wish", "baseline"]
