"""Server-side X resources: colors, fonts, cursors, bitmaps, and
graphics contexts.

Allocating any of these requires a round trip to the server (paper
section 3.3), which is why Tk caches them client-side.  The simulator
implements the server half: named-color lookup against an rgb.txt-style
table, fonts with synthetic but deterministic metrics, a cursor font
(including the paper's ``coffee_mug``), built-in bitmaps, and graphics
contexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

# A useful subset of X11's rgb.txt, including every color the paper
# mentions (MediumSeaGreen for resource naming, Red and PalePink1 for
# the button example).
NAMED_COLORS: Dict[str, Tuple[int, int, int]] = {
    "white": (255, 255, 255),
    "black": (0, 0, 0),
    "red": (255, 0, 0),
    "green": (0, 255, 0),
    "blue": (0, 0, 255),
    "yellow": (255, 255, 0),
    "cyan": (0, 255, 255),
    "magenta": (255, 0, 255),
    "gray": (190, 190, 190),
    "grey": (190, 190, 190),
    "lightgray": (211, 211, 211),
    "darkgray": (169, 169, 169),
    "darkslategray": (47, 79, 79),
    "dimgray": (105, 105, 105),
    "navy": (0, 0, 128),
    "royalblue": (65, 105, 225),
    "steelblue": (70, 130, 180),
    "lightsteelblue": (176, 196, 222),
    "skyblue": (135, 206, 235),
    "lightblue": (173, 216, 230),
    "cadetblue": (95, 158, 160),
    "aquamarine": (127, 255, 212),
    "seagreen": (46, 139, 87),
    "mediumseagreen": (60, 179, 113),
    "springgreen": (0, 255, 127),
    "palegreen": (152, 251, 152),
    "forestgreen": (34, 139, 34),
    "limegreen": (50, 205, 50),
    "darkgreen": (0, 100, 0),
    "olivedrab": (107, 142, 35),
    "khaki": (240, 230, 140),
    "gold": (255, 215, 0),
    "goldenrod": (218, 165, 32),
    "orange": (255, 165, 0),
    "darkorange": (255, 140, 0),
    "coral": (255, 127, 80),
    "tomato": (255, 99, 71),
    "orangered": (255, 69, 0),
    "firebrick": (178, 34, 34),
    "maroon": (176, 48, 96),
    "pink": (255, 192, 203),
    "lightpink": (255, 182, 193),
    "palepink1": (255, 218, 224),
    "hotpink": (255, 105, 180),
    "deeppink": (255, 20, 147),
    "violet": (238, 130, 238),
    "plum": (221, 160, 221),
    "orchid": (218, 112, 214),
    "purple": (160, 32, 240),
    "thistle": (216, 191, 216),
    "salmon": (250, 128, 114),
    "sienna": (160, 82, 45),
    "chocolate": (210, 105, 30),
    "tan": (210, 180, 140),
    "beige": (245, 245, 220),
    "wheat": (245, 222, 179),
    "ivory": (255, 255, 240),
    "bisque": (255, 228, 196),
    "antiquewhite": (250, 235, 215),
    "lavender": (230, 230, 250),
    "turquoise": (64, 224, 208),
    "chartreuse": (127, 255, 0),
    "slateblue": (106, 90, 205),
    "slategray": (112, 128, 144),
    "gainsboro": (220, 220, 220),
    "honeydew": (240, 255, 240),
    "mintcream": (245, 255, 250),
    "mistyrose": (255, 228, 225),
    "moccasin": (255, 228, 181),
    "navajowhite": (255, 222, 173),
    "oldlace": (253, 245, 230),
    "peachpuff": (255, 218, 185),
    "peru": (205, 133, 63),
    "rosybrown": (188, 143, 143),
    "saddlebrown": (139, 69, 19),
    "sandybrown": (244, 164, 96),
    "snow": (255, 250, 250),
    "brown": (165, 42, 42),
}

#: Cursor names from the X cursor font, including the paper's example.
CURSOR_NAMES = {
    "X_cursor", "arrow", "based_arrow_down", "based_arrow_up", "boat",
    "bogosity", "bottom_left_corner", "bottom_right_corner",
    "bottom_side", "bottom_tee", "box_spiral", "center_ptr", "circle",
    "clock", "coffee_mug", "cross", "cross_reverse", "crosshair",
    "diamond_cross", "dot", "dotbox", "double_arrow", "draft_large",
    "draft_small", "draped_box", "exchange", "fleur", "gobbler",
    "gumby", "hand1", "hand2", "heart", "icon", "iron_cross",
    "left_ptr", "left_side", "left_tee", "leftbutton", "ll_angle",
    "lr_angle", "man", "middlebutton", "mouse", "pencil", "pirate",
    "plus", "question_arrow", "right_ptr", "right_side", "right_tee",
    "rightbutton", "rtl_logo", "sailboat", "sb_down_arrow",
    "sb_h_double_arrow", "sb_left_arrow", "sb_right_arrow",
    "sb_up_arrow", "sb_v_double_arrow", "shuttle", "sizing", "spider",
    "spraycan", "star", "target", "tcross", "top_left_arrow",
    "top_left_corner", "top_right_corner", "top_side", "top_tee",
    "trek", "ul_angle", "umbrella", "ur_angle", "watch", "xterm",
}

#: Built-in bitmaps (name -> (width, height)).
BUILTIN_BITMAPS = {
    "gray50": (16, 16),
    "gray25": (16, 16),
    "star": (16, 16),
    "error": (17, 17),
    "hourglass": (19, 21),
    "info": (8, 21),
    "question": (10, 21),
    "warning": (6, 19),
}


@dataclass(frozen=True)
class Color:
    """An allocated colormap entry."""

    pixel: int
    red: int
    green: int
    blue: int

    @property
    def rgb(self) -> Tuple[int, int, int]:
        return (self.red, self.green, self.blue)


@dataclass(frozen=True)
class Font:
    """A loaded font with synthetic fixed-width metrics.

    Metrics are derived deterministically from the font name so that
    different fonts measure differently (important for geometry tests)
    but results are stable across runs.
    """

    fid: int
    name: str
    char_width: int
    ascent: int
    descent: int

    @property
    def line_height(self) -> int:
        return self.ascent + self.descent

    def text_width(self, text: str) -> int:
        return self.char_width * len(text)


@dataclass(frozen=True)
class Cursor:
    cid: int
    name: str


@dataclass(frozen=True)
class Bitmap:
    bid: int
    name: str
    width: int
    height: int


@dataclass
class GraphicsContext:
    gid: int
    values: Dict[str, object] = field(default_factory=dict)

    def change(self, **values) -> None:
        self.values.update(values)


def parse_color(name: str) -> Optional[Tuple[int, int, int]]:
    """Resolve a color specification: a name or #rgb/#rrggbb form."""
    if name.startswith("#"):
        digits = name[1:]
        if len(digits) in (3, 6, 12) and \
                all(c in "0123456789abcdefABCDEF" for c in digits):
            step = len(digits) // 3
            parts = [digits[i * step:(i + 1) * step] for i in range(3)]
            scale = 16 ** step - 1
            return tuple(int(part, 16) * 255 // scale for part in parts)
        return None
    return NAMED_COLORS.get(name.lower())


def font_metrics(name: str) -> Tuple[int, int, int]:
    """Synthetic (char_width, ascent, descent) for a font name.

    The default server font ("fixed") is 6x13; other names get stable
    name-derived metrics in a plausible range.
    """
    if name in ("fixed", "6x13"):
        return (6, 11, 2)
    if name == "8x13":
        return (8, 11, 2)
    if name == "9x15":
        return (9, 12, 3)
    digest = sum(ord(ch) for ch in name)
    char_width = 5 + digest % 5      # 5..9
    ascent = 9 + digest % 7          # 9..15
    descent = 2 + digest % 3         # 2..4
    return (char_width, ascent, descent)


def font_exists(name: str) -> bool:
    """The simulated server has any fixed-pattern font; reject only
    obviously malformed names."""
    return bool(name) and not name.isspace()
