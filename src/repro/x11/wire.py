"""Binary wire codec for the simulated X protocol.

Until now the Display→XServer boundary was in-process Python method
calls, which makes bandwidth — the quantity that dominates real X11
performance over thin links — unmeasurable.  This module gives every
request, reply, event, and error crossing that boundary a byte-exact
encoding, so a transport (see :mod:`repro.x11.transport`) can carry
the session over a real socket, count bytes per client, and let the
fault plan act on frames instead of calls.

Framing
-------

A frame is::

    +--------------+-----------+------------------+
    | length (u32) | type (u8) | payload (value)  |
    +--------------+-----------+------------------+

``length`` is big-endian and covers the type byte plus the payload.
The payload is exactly one *value* in the tagged encoding below; a
frame whose payload leaves trailing bytes is rejected.  The single
exception is the optional **trace context** on BATCH, ONEWAY, and
REQUEST frames (codec version 2): when the client has an active span
tracer, the transport appends one ``T_SPAN`` tagged i64 — the issuing
wire-span id — after the payload, and the server opens a child span
under that id for every request it handles (see
:mod:`repro.obs.trace`).  With no tracer active the field is absent
and every frame is byte-identical to codec version 1, so traced and
untraced runs of the same workload differ *only* by the 9-byte
suffix, and untraced byte accounting is unchanged.  Frame types:

========== ====== =================================================
SETUP      0x01   client hello (payload None)
SETUP_ACK  0x02   (client number, root id, screen width, height)
BATCH      0x03   list of (name, window, args, kwargs) request ops
BATCH_ACK  0x04   int: requests delivered
ONEWAY     0x05   one unbuffered request (name, window, args, kwargs)
ONEWAY_ACK 0x06   None
REQUEST    0x07   reply-bearing request (name, args, kwargs)
REPLY      0x08   the reply value
ERROR      0x09   (kind, message); kind 0=XProtocolError 1=XConnectionLost
EVENT      0x0A   one Event
MARK       0x0B   flow-control fence for input injection (uncounted)
BYE        0x0C   orderly client close-down
========== ====== =================================================

Values
------

Self-describing tagged encoding, one tag byte per value.  Integers are
signed 64-bit (with a big-int escape), strings are UTF-8 with a u32
length, containers carry a u32 count.  Dicts preserve insertion order
— no sorting, so an encode→decode→encode round trip is byte-stable.
The X resource dataclasses (Color, Font, Cursor, Bitmap,
GraphicsContext) and :class:`~repro.x11.events.Event` have dedicated
tags; a Client is encoded by connection number and resolved back to
the live object (or a :class:`ClientRef` placeholder) at decode time.

The codec is strict: unknown tags, unknown frame types, truncated
input, and trailing bytes all raise :class:`WireError`.  Nothing here
depends on wall time or interpreter identity, so the same session
produces the same bytes on every run — the transport tests compare
whole wire logs across transports for equality.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from .events import Event, WIRE_FIELDS
from .resources import Bitmap, Color, Cursor, Font, GraphicsContext
from .xserver import Client, XConnectionLost, XProtocolError

__all__ = [
    "WireError", "ClientRef", "encode_frame", "decode_frame",
    "decode_frame_ex", "extract_frames", "frame_name", "frame_size",
    "error_value", "error_from_value", "CODEC_VERSION", "TRACED_FRAMES",
    "SETUP", "SETUP_ACK", "BATCH", "BATCH_ACK", "ONEWAY", "ONEWAY_ACK",
    "REQUEST", "REPLY", "ERROR", "EVENT", "MARK", "BYE",
]

#: Codec version 2 added the optional trailing trace-context field on
#: BATCH/ONEWAY/REQUEST frames.  Version 1 frames remain decodable
#: (the field is optional) and version 1 decoders reject only *traced*
#: version 2 frames — untraced frames are byte-identical across both.
CODEC_VERSION = 2


class WireError(Exception):
    """Malformed or unrepresentable wire data."""


# ----------------------------------------------------------------------
# frame types
# ----------------------------------------------------------------------

SETUP = 0x01
SETUP_ACK = 0x02
BATCH = 0x03
BATCH_ACK = 0x04
ONEWAY = 0x05
ONEWAY_ACK = 0x06
REQUEST = 0x07
REPLY = 0x08
ERROR = 0x09
EVENT = 0x0A
MARK = 0x0B
BYE = 0x0C

#: Frame types that may carry a trailing trace-context field.  Only
#: client→server request traffic is traced: replies, events, and
#: errors inherit causality from the request frame they answer.
TRACED_FRAMES = frozenset((BATCH, ONEWAY, REQUEST))

FRAME_NAMES = {
    SETUP: "SETUP",
    SETUP_ACK: "SETUP_ACK",
    BATCH: "BATCH",
    BATCH_ACK: "BATCH_ACK",
    ONEWAY: "ONEWAY",
    ONEWAY_ACK: "ONEWAY_ACK",
    REQUEST: "REQUEST",
    REPLY: "REPLY",
    ERROR: "ERROR",
    EVENT: "EVENT",
    MARK: "MARK",
    BYE: "BYE",
}

#: Upper bound on a single frame body; anything larger in a length
#: prefix means the stream is garbage, not a request.
MAX_FRAME = 1 << 24

# ----------------------------------------------------------------------
# value tags
# ----------------------------------------------------------------------

T_NONE = 0x00
T_FALSE = 0x01
T_TRUE = 0x02
T_INT = 0x03
T_BIGINT = 0x04
T_STR = 0x05
T_BYTES = 0x06
T_FLOAT = 0x07
T_LIST = 0x08
T_TUPLE = 0x09
T_DICT = 0x0A
T_EVENT = 0x0B
T_GC = 0x0C
T_COLOR = 0x0D
T_FONT = 0x0E
T_CURSOR = 0x0F
T_BITMAP = 0x10
T_CLIENT = 0x11
#: Trace-context suffix tag (codec version 2).  Never a payload value:
#: it may appear only after the payload of a TRACED_FRAMES frame,
#: followed by one i64 span id.
T_SPAN = 0x12

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class ClientRef:
    """A decoded client with no live object to resolve to.

    Equality and hashing go by connection number, so a ClientRef can
    stand in for a :class:`~repro.x11.xserver.Client` in encoded data
    that merely names a connection.
    """

    __slots__ = ("number",)

    def __init__(self, number: int):
        self.number = number

    def __eq__(self, other):
        return isinstance(other, (Client, ClientRef)) and \
            other.number == self.number

    def __hash__(self):
        return hash(("client", self.number))

    def __repr__(self):  # pragma: no cover - debugging aid
        return "ClientRef(%d)" % self.number


def frame_name(ftype: int) -> str:
    return FRAME_NAMES.get(ftype, "0x%02X" % ftype)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

def _encode_value(value, out: bytearray) -> None:
    if value is None:
        out.append(T_NONE)
    elif value is True:
        out.append(T_TRUE)
    elif value is False:
        out.append(T_FALSE)
    elif isinstance(value, bool):  # numpy-ish bool subclasses
        out.append(T_TRUE if value else T_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(T_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big",
                                 signed=True)
            out.append(T_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(T_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, float):
        out.append(T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, list):
        out.append(T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, tuple):
        out.append(T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    elif isinstance(value, Event):
        out.append(T_EVENT)
        out.append(len(WIRE_FIELDS))
        for name in WIRE_FIELDS:
            _encode_value(getattr(value, name), out)
    elif isinstance(value, GraphicsContext):
        out.append(T_GC)
        _encode_value(value.gid, out)
        _encode_value(value.values, out)
    elif isinstance(value, Color):
        out.append(T_COLOR)
        for field in (value.pixel, value.red, value.green, value.blue):
            _encode_value(field, out)
    elif isinstance(value, Font):
        out.append(T_FONT)
        for field in (value.fid, value.name, value.char_width,
                      value.ascent, value.descent):
            _encode_value(field, out)
    elif isinstance(value, Cursor):
        out.append(T_CURSOR)
        _encode_value(value.cid, out)
        _encode_value(value.name, out)
    elif isinstance(value, Bitmap):
        out.append(T_BITMAP)
        for field in (value.bid, value.name, value.width, value.height):
            _encode_value(field, out)
    elif isinstance(value, (Client, ClientRef)):
        out.append(T_CLIENT)
        out += _I64.pack(value.number)
    else:
        raise WireError("unencodable value of type %s: %r"
                        % (type(value).__name__, value))


def encode_frame(ftype: int, value=None, ctx: Optional[int] = None
                 ) -> bytes:
    """One complete frame: length prefix, type byte, encoded payload.

    ``ctx`` is the optional trace context — the issuing wire-span id —
    appended as a ``T_SPAN`` suffix after the payload.  Only
    BATCH/ONEWAY/REQUEST frames may carry one; passing a context on
    any other type raises :class:`WireError`.  ``ctx=None`` (the
    untraced case) produces codec-version-1 bytes exactly.
    """
    if ftype not in FRAME_NAMES:
        raise WireError("unknown frame type 0x%02X" % ftype)
    body = bytearray()
    body.append(ftype)
    _encode_value(value, body)
    if ctx is not None:
        if ftype not in TRACED_FRAMES:
            raise WireError("trace context not allowed on %s frame"
                            % frame_name(ftype))
        body.append(T_SPAN)
        body += _I64.pack(ctx)
    return _U32.pack(len(body)) + bytes(body)


def _value_size(value) -> int:
    # Mirrors _encode_value case for case (same WireError on
    # unencodable values) without materialising bytes.  Exact-type
    # checks first — this runs on every loopback request and event —
    # with an isinstance chain below for subclasses.
    if value is None or value is True or value is False:
        return 1
    kind = type(value)
    if kind is int:
        if _I64_MIN <= value <= _I64_MAX:
            return 9
        return 5 + (value.bit_length() + 8) // 8
    if kind is str:
        if value.isascii():
            return 5 + len(value)
        return 5 + len(value.encode("utf-8"))
    if kind is float:
        return 9
    if kind is list or kind is tuple:
        total = 5
        for item in value:
            total += _value_size(item)
        return total
    if kind is dict:
        total = 5
        for key, item in value.items():
            total += _value_size(key) + _value_size(item)
        return total
    if kind is Event:
        # Hottest case by far — one frame per delivered event.  The
        # fields are almost always small ints, short ASCII strings, or
        # None, so size them inline rather than recursing per field.
        # Every WIRE_FIELD is a plain dataclass attribute (the only
        # Event property, ``name``, is not on the wire), so the
        # instance dict lookup is exactly getattr, minus the overhead.
        fields = value.__dict__
        total = 2
        for name in WIRE_FIELDS:
            item = fields[name]
            if item is None or item is True or item is False:
                total += 1
                continue
            item_kind = type(item)
            if item_kind is int:
                if _I64_MIN <= item <= _I64_MAX:
                    total += 9
                else:
                    total += 5 + (item.bit_length() + 8) // 8
            elif item_kind is str:
                if item.isascii():
                    total += 5 + len(item)
                else:
                    total += 5 + len(item.encode("utf-8"))
            else:
                total += _value_size(item)
        return total
    return _value_size_slow(value)


def _value_size_slow(value) -> int:
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            return 9
        return 5 + (value.bit_length() + 8) // 8
    if isinstance(value, str):
        if value.isascii():
            return 5 + len(value)
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return 5 + len(value)
    if isinstance(value, float):
        return 9
    if isinstance(value, (list, tuple)):
        return 5 + sum(_value_size(item) for item in value)
    if isinstance(value, dict):
        return 5 + sum(_value_size(key) + _value_size(item)
                       for key, item in value.items())
    if isinstance(value, Event):
        return 2 + sum(_value_size(getattr(value, name))
                       for name in WIRE_FIELDS)
    if isinstance(value, GraphicsContext):
        return 1 + _value_size(value.gid) + _value_size(value.values)
    if isinstance(value, Color):
        return 1 + sum(_value_size(field) for field in
                       (value.pixel, value.red, value.green, value.blue))
    if isinstance(value, Font):
        return 1 + sum(_value_size(field) for field in
                       (value.fid, value.name, value.char_width,
                        value.ascent, value.descent))
    if isinstance(value, Cursor):
        return 1 + _value_size(value.cid) + _value_size(value.name)
    if isinstance(value, Bitmap):
        return 1 + sum(_value_size(field) for field in
                       (value.bid, value.name, value.width, value.height))
    if isinstance(value, (Client, ClientRef)):
        return 9
    raise WireError("unencodable value of type %s: %r"
                    % (type(value).__name__, value))


def frame_size(ftype: int, value=None, ctx: Optional[int] = None) -> int:
    """Exact ``len(encode_frame(ftype, value, ctx))`` without encoding.

    The loopback transport accounts for bytes on every request; this
    keeps that accounting off the allocation path.  Must stay
    byte-for-byte in lockstep with :func:`encode_frame` — the codec
    tests assert equality over the whole value battery, and the
    transport-invariance gate compares the resulting counters with the
    socket transport's real encoded traffic.  A trace context adds the
    9-byte ``T_SPAN`` suffix, subject to the same frame-type rule.
    """
    if ftype not in FRAME_NAMES:
        raise WireError("unknown frame type 0x%02X" % ftype)
    size = 5 + _value_size(value)
    if ctx is not None:
        if ftype not in TRACED_FRAMES:
            raise WireError("trace context not allowed on %s frame"
                            % frame_name(ftype))
        size += 9
    return size


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------

def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise WireError("truncated value: need %d bytes at offset %d, "
                        "have %d" % (count, offset, len(data) - offset))


def _decode_value(data: bytes, offset: int,
                  resolve_client: Optional[Callable[[int], object]]):
    _need(data, offset, 1)
    tag = data[offset]
    offset += 1
    if tag == T_NONE:
        return None, offset
    if tag == T_TRUE:
        return True, offset
    if tag == T_FALSE:
        return False, offset
    if tag == T_INT:
        _need(data, offset, 8)
        return _I64.unpack_from(data, offset)[0], offset + 8
    if tag == T_BIGINT:
        _need(data, offset, 4)
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        _need(data, offset, length)
        raw = data[offset:offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == T_STR:
        _need(data, offset, 4)
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        _need(data, offset, length)
        try:
            text = data[offset:offset + length].decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError("invalid UTF-8 in string value: %s" % error)
        return text, offset + length
    if tag == T_BYTES:
        _need(data, offset, 4)
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        _need(data, offset, length)
        return bytes(data[offset:offset + length]), offset + length
    if tag == T_FLOAT:
        _need(data, offset, 8)
        return _F64.unpack_from(data, offset)[0], offset + 8
    if tag in (T_LIST, T_TUPLE):
        _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset, resolve_client)
            items.append(item)
        return (items if tag == T_LIST else tuple(items)), offset
    if tag == T_DICT:
        _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode_value(data, offset, resolve_client)
            item, offset = _decode_value(data, offset, resolve_client)
            result[key] = item
        return result, offset
    if tag == T_EVENT:
        _need(data, offset, 1)
        count = data[offset]
        offset += 1
        if count != len(WIRE_FIELDS):
            raise WireError("event field count %d does not match codec "
                            "(%d fields)" % (count, len(WIRE_FIELDS)))
        fields = {}
        for name in WIRE_FIELDS:
            fields[name], offset = _decode_value(data, offset,
                                                 resolve_client)
        return Event(**fields), offset
    if tag == T_GC:
        gid, offset = _decode_value(data, offset, resolve_client)
        values, offset = _decode_value(data, offset, resolve_client)
        return GraphicsContext(gid=gid, values=values), offset
    if tag == T_COLOR:
        fields = []
        for _ in range(4):
            item, offset = _decode_value(data, offset, resolve_client)
            fields.append(item)
        return Color(*fields), offset
    if tag == T_FONT:
        fields = []
        for _ in range(5):
            item, offset = _decode_value(data, offset, resolve_client)
            fields.append(item)
        return Font(*fields), offset
    if tag == T_CURSOR:
        cid, offset = _decode_value(data, offset, resolve_client)
        name, offset = _decode_value(data, offset, resolve_client)
        return Cursor(cid=cid, name=name), offset
    if tag == T_BITMAP:
        fields = []
        for _ in range(4):
            item, offset = _decode_value(data, offset, resolve_client)
            fields.append(item)
        return Bitmap(*fields), offset
    if tag == T_CLIENT:
        _need(data, offset, 8)
        number = _I64.unpack_from(data, offset)[0]
        offset += 8
        if resolve_client is not None:
            return resolve_client(number), offset
        return ClientRef(number), offset
    raise WireError("unknown value tag 0x%02X at offset %d"
                    % (tag, offset - 1))


def decode_frame_ex(frame: bytes,
                    resolve_client: Optional[Callable[[int],
                                                      object]] = None
                    ) -> Tuple[int, object, Optional[int]]:
    """Decode one frame into ``(frame_type, payload, trace_context)``.

    ``resolve_client`` maps a connection number to a live object for
    T_CLIENT values; without it they decode to :class:`ClientRef`.
    ``trace_context`` is the span id from an optional ``T_SPAN``
    suffix, or None for version-1 (untraced) frames.  Any other
    trailing bytes — including a trace suffix on a frame type that
    cannot carry one — are rejected.
    """
    if len(frame) < 5:
        raise WireError("truncated frame: %d bytes" % len(frame))
    (length,) = _U32.unpack_from(frame, 0)
    if length != len(frame) - 4:
        raise WireError("frame length %d does not match body of %d bytes"
                        % (length, len(frame) - 4))
    ftype = frame[4]
    if ftype not in FRAME_NAMES:
        raise WireError("unknown frame type 0x%02X" % ftype)
    value, offset = _decode_value(frame, 5, resolve_client)
    ctx = None
    if offset == len(frame) - 9 and frame[offset] == T_SPAN and \
            ftype in TRACED_FRAMES:
        ctx = _I64.unpack_from(frame, offset + 1)[0]
        offset += 9
    if offset != len(frame):
        raise WireError("%d trailing bytes after %s payload"
                        % (len(frame) - offset, frame_name(ftype)))
    return ftype, value, ctx


def decode_frame(frame: bytes,
                 resolve_client: Optional[Callable[[int], object]] = None
                 ) -> Tuple[int, object]:
    """Decode one complete frame into ``(frame_type, payload)``.

    The trace-context suffix, if present, is accepted and discarded;
    callers that propagate it use :func:`decode_frame_ex`.
    """
    ftype, value, _ = decode_frame_ex(frame, resolve_client)
    return ftype, value


def extract_frames(buffer: bytearray) -> List[bytes]:
    """Split every complete frame off the front of a stream buffer.

    Consumes the extracted bytes from ``buffer`` in place; a trailing
    partial frame is left for the next read.  An implausible length
    prefix raises :class:`WireError` — the stream cannot recover.
    """
    frames: List[bytes] = []
    while len(buffer) >= 4:
        (length,) = _U32.unpack_from(buffer, 0)
        if length < 1 or length > MAX_FRAME:
            raise WireError("implausible frame length %d" % length)
        if len(buffer) < 4 + length:
            break
        frames.append(bytes(buffer[:4 + length]))
        del buffer[:4 + length]
    return frames


# ----------------------------------------------------------------------
# error marshalling
# ----------------------------------------------------------------------

def error_value(error: Exception) -> tuple:
    """An X error as an ERROR-frame payload, preserving its type."""
    kind = 1 if isinstance(error, XConnectionLost) else 0
    return (kind, str(error))


def error_from_value(value) -> XProtocolError:
    """Rebuild the exception an ERROR frame carries."""
    kind, message = value
    if kind == 1:
        return XConnectionLost(message)
    return XProtocolError(message)
