"""String commands: string, format, scan, split, join, concat, expr.

Everything operates on Tcl's single data type — strings — so these
commands are the workhorses of data manipulation (paper section 2).
"""

from __future__ import annotations

from typing import List

from ..errors import TclError
from ..expr import expr_as_string
from ..lists import format_list, parse_list
from ..strings import glob_match, tcl_format, tcl_scan, _to_int


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def cmd_string(interp, argv: List[str]) -> str:
    if len(argv) < 3:
        raise _wrong_args("string option arg ?arg ...?")
    option = argv[1]
    if option == "compare":
        _exactly(argv, 4, "string compare string1 string2")
        left, right = argv[2], argv[3]
        return str((left > right) - (left < right))
    if option == "match":
        _exactly(argv, 4, "string match pattern string")
        return "1" if glob_match(argv[2], argv[3]) else "0"
    if option == "length":
        _exactly(argv, 3, "string length string")
        return str(len(argv[2]))
    if option == "index":
        _exactly(argv, 4, "string index string charIndex")
        position = _to_int(argv[3])
        text = argv[2]
        if 0 <= position < len(text):
            return text[position]
        return ""
    if option == "range":
        _exactly(argv, 5, "string range string first last")
        text = argv[2]
        first = _to_int(argv[3])
        last = len(text) - 1 if argv[4] == "end" else _to_int(argv[4])
        first = max(first, 0)
        if last >= len(text):
            last = len(text) - 1
        if first > last:
            return ""
        return text[first:last + 1]
    if option == "tolower":
        _exactly(argv, 3, "string tolower string")
        return argv[2].lower()
    if option == "toupper":
        _exactly(argv, 3, "string toupper string")
        return argv[2].upper()
    if option in ("trim", "trimleft", "trimright"):
        if len(argv) not in (3, 4):
            raise _wrong_args("string %s string ?chars?" % option)
        chars = argv[3] if len(argv) == 4 else None
        text = argv[2]
        if option == "trim":
            return text.strip(chars)
        if option == "trimleft":
            return text.lstrip(chars)
        return text.rstrip(chars)
    if option == "first":
        _exactly(argv, 4, "string first string1 string2")
        return str(argv[3].find(argv[2]))
    if option == "last":
        _exactly(argv, 4, "string last string1 string2")
        return str(argv[3].rfind(argv[2]))
    raise TclError(
        'bad option "%s": should be compare, first, index, last, '
        'length, match, range, tolower, toupper, trim, trimleft, '
        'or trimright' % option)


def _exactly(argv: List[str], count: int, usage: str) -> None:
    if len(argv) != count:
        raise _wrong_args(usage)


def cmd_format(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("format formatString ?arg ...?")
    return tcl_format(argv[1], argv[2:])


def cmd_scan(interp, argv: List[str]) -> str:
    if len(argv) < 4:
        raise _wrong_args("scan string format varName ?varName ...?")
    conversions = tcl_scan(argv[1], argv[2])
    if conversions is None:
        return "-1"
    names = argv[3:]
    if len(conversions) > len(names):
        raise TclError("different numbers of variable names and "
                       "field specifiers")
    for name, (_, value) in zip(names, conversions):
        interp.set_var(name, value)
    return str(len(conversions))


def cmd_split(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise _wrong_args("split string ?splitChars?")
    text = argv[1]
    separators = argv[2] if len(argv) == 3 else " \t\n\r"
    if separators == "":
        return format_list(list(text))
    fields: List[str] = []
    current: List[str] = []
    for ch in text:
        if ch in separators:
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
    fields.append("".join(current))
    return format_list(fields)


def cmd_join(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise _wrong_args("join list ?joinString?")
    separator = argv[2] if len(argv) == 3 else " "
    return separator.join(parse_list(argv[1]))


def cmd_concat(interp, argv: List[str]) -> str:
    return " ".join(arg.strip() for arg in argv[1:] if arg.strip())


def cmd_expr(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("expr arg ?arg ...?")
    return expr_as_string(interp, " ".join(argv[1:]))


def register(interp) -> None:
    interp.register("string", cmd_string)
    interp.register("format", cmd_format)
    interp.register("scan", cmd_scan)
    interp.register("split", cmd_split)
    interp.register("join", cmd_join)
    interp.register("concat", cmd_concat)
    interp.register("expr", cmd_expr)
