"""The ``obs`` and ``info metrics`` Tcl commands, end to end.

Includes the PR's acceptance scenario: tracing a button click must
produce a single span tree linking the event dispatch, the binding
fire, the Tcl evaluation, and the named X requests they caused.
"""

import io
import json

import pytest

from repro.tcl import Interp, TclError

from conftest import click


class TestObsMetricsCommand:
    def test_metrics_lists_stack_wide_metrics(self, app):
        app.interp.eval("button .b -text hi")
        text = app.interp.eval("obs metrics")
        assert "x11.requests{type=create_window}" in text
        assert "tk.cache.hits{kind=color}" in text
        assert "tcl.commands" in text

    def test_metrics_pattern_filters(self, app):
        text = app.interp.eval("obs metrics x11.round_trips")
        assert text.startswith("x11.round_trips")
        assert "tcl.commands" not in text

    def test_works_on_bare_interp(self):
        interp = Interp()
        interp.eval("set a 1")
        assert "tcl.commands" in interp.eval("obs metrics")

    def test_bad_option(self, app):
        with pytest.raises(TclError, match="bad option"):
            app.interp.eval("obs bogus")


class TestInfoMetrics:
    def test_flat_name_value_list(self, app):
        app.interp.eval("set a 1")
        result = app.interp.eval("info metrics tcl.compile.*")
        fields = result.split()
        assert "tcl.compile.hits" in fields
        assert "tcl.compile.misses" in fields
        # name value name value...
        assert len(fields) % 2 == 0

    def test_matches_legacy_counters(self, app):
        app.interp.eval("set a 1")
        pairs = app.interp.eval("info metrics tcl.commands").split()
        assert int(pairs[1]) == app.interp.cmd_count


class TestTraceCommand:
    def test_button_click_single_span_tree(self, app, server):
        """Acceptance: eval -> binding -> event dispatch -> X requests."""
        interp = app.interp
        interp.eval("proc doClick {} {.b flash}")
        interp.eval("button .b -text hi -command {doClick}")
        interp.eval("bind .b <ButtonRelease-1> {set released 1}")
        interp.eval("pack append . .b {top}")
        app.update()
        interp.eval("obs trace start")
        click(server, app, ".b")
        interp.eval("obs trace stop")
        # The release event is ONE root span with both consequences —
        # the widget's -command eval and the binding — nested under it.
        release = [root for root in app.obs.tracer.tree()
                   if root["name"] == "ButtonRelease"]
        assert len(release) == 1
        root = release[0]
        assert root["kind"] == "event"
        assert root["widget"] == ".b"
        kinds = {child["kind"] for child in root["children"]}
        assert kinds == {"eval", "binding"}
        # eval -> cmd -> proc -> widget cmd -> named X requests
        evals = [c for c in root["children"] if c["kind"] == "eval"]
        flat = _flatten(evals[0])
        widget_cmds = [node for node in flat
                       if node["kind"] == "cmd" and node["name"] == ".b"]
        assert widget_cmds and widget_cmds[0]["requests"]
        assert any(name in widget_cmds[0]["requests"]
                   for name in ("draw_string", "fill_rectangle",
                                "set_window_background"))
        text = interp.eval("obs trace dump")
        assert "event ButtonRelease [.b]" in text
        assert "binding <ButtonRelease-1> [.b]" in text

    def test_trace_dump_json(self, app, server):
        app.interp.eval("obs trace start")
        app.interp.eval("frame .f -geometry 10x10")
        app.interp.eval("obs trace stop")
        data = json.loads(app.interp.eval("obs trace dump -format json"))
        assert any(span["name"] == "frame" for span in data["spans"])

    def test_trace_wire_mode(self, app, server):
        app.interp.eval("obs trace start -wire")
        app.interp.eval("button .b -text hi")
        app.interp.eval("obs trace stop")
        wire = app.interp.eval("obs trace wire")
        assert "create_window" in wire

    def test_trace_clear(self, app):
        app.interp.eval("obs trace start")
        app.interp.eval("set a 1")
        app.interp.eval("obs trace stop")
        assert len(app.obs.tracer.spans) > 0
        app.interp.eval("obs trace clear")
        assert len(app.obs.tracer.spans) == 0

    def test_stop_without_start_is_ok(self, app):
        assert app.interp.eval("obs trace stop") == ""


class TestProfileCommand:
    def test_profile_report_from_trace(self, app, server):
        interp = app.interp
        interp.eval("proc mk {n} {button .b$n -text b$n}")
        interp.eval("obs trace start")
        interp.eval("mk 1")
        interp.eval("mk 2")
        interp.eval("obs trace stop")
        report = interp.eval("obs profile report")
        assert "PROFILE by span" in report
        assert "proc mk" in report
        assert "PROFILE by x11 request type" in report

    def test_profile_limit_switch(self, app):
        app.interp.eval("obs trace start")
        app.interp.eval("set a 1")
        app.interp.eval("obs trace stop")
        assert app.interp.eval("obs profile report -limit 1")


class TestObsDump:
    def test_dump_json_has_all_pillars(self, app, server):
        app.interp.eval("obs trace start")
        app.interp.eval("frame .f -geometry 10x10")
        app.interp.eval("obs trace stop")
        data = json.loads(app.interp.eval("obs dump -format json"))
        # a "journal" summary rides along only when one is attached
        # (e.g. CI's crash-forensics conftest)
        assert set(data) - {"journal"} == {"metrics", "trace",
                                           "profile"}
        assert "x11.round_trips" in data["metrics"]
        assert data["trace"]["spans"]
        assert data["profile"]["by_name"]

    def test_send_metrics_recorded(self, app, server):
        import io as _io
        from repro.tk import TkApp
        peer = TkApp(server, name="peer")
        peer.interp.stdout = _io.StringIO()
        app.interp.eval("send peer set x 1")
        assert app.obs.metrics.value("send.rpcs") == 1
        assert app.obs.metrics.value("send.wait_ms") == 1
        with pytest.raises(TclError):
            app.interp.eval("send nobody set x 1")
        assert app.obs.metrics.value("send.errors") == 1
        peer.destroy()

    def test_fault_counters_in_registry(self, app, server):
        from repro.x11 import FaultPlan
        plan = server.install_fault_plan(FaultPlan())
        plan.fail_request(name="create_window", error="BadAlloc")
        app.interp.eval("catch {frame .f -geometry 10x10}")
        server.clear_fault_plan()
        assert app.obs.metrics.value("x11.faults", type="error") == 1


def _flatten(node):
    nodes = [node]
    for child in node["children"]:
        nodes.extend(_flatten(child))
    return nodes


class TestInspect:
    """Remote introspection over send (tkinspect-style)."""

    @pytest.fixture
    def peer(self, server):
        from repro.tk import TkApp
        application = TkApp(server, name="peer")
        application.interp.stdout = io.StringIO()
        yield application
        if not application.destroyed:
            application.destroy()

    def test_lists_running_applications(self, app, peer):
        names = app.interp.eval("inspect").split()
        assert "obstest" in names and "peer" in names

    def test_fetches_remote_metrics(self, app, peer):
        peer.interp.eval("frame .f")
        peer.update()
        text = app.interp.eval("inspect peer metrics x11.requests*")
        assert "x11.requests{type=create_window}" in text

    def test_fetches_remote_trace_and_profile(self, app, peer):
        peer.interp.eval("obs trace start")
        peer.interp.eval("frame .f")
        peer.interp.eval("obs trace stop")
        assert app.interp.eval("inspect peer trace").startswith("TRACE:")
        assert "PROFILE by span" in \
            app.interp.eval("inspect peer profile 5")

    def test_fetches_remote_journal(self, app, peer, server):
        peer.interp.eval("obs journal start")
        peer.interp.eval("frame .f")
        peer.update()
        text = app.interp.eval("inspect peer journal 5")
        assert text.startswith("JOURNAL:")
        peer.interp.eval("obs journal stop")

    def test_fetches_remote_dump_as_json(self, app, peer):
        data = json.loads(app.interp.eval("inspect peer dump"))
        assert "metrics" in data

    def test_self_inspection_works(self, app):
        # the paper's trick composes reflexively: an app can inspect
        # itself through its own send machinery
        text = app.interp.eval("inspect obstest metrics x11.requests*")
        assert "x11.requests" in text

    def test_unknown_option_rejected(self, app, peer):
        from repro.tcl.errors import TclError
        with pytest.raises(TclError, match="bad option"):
            app.interp.eval("inspect peer frobnicate")


class TestObsRecorderCommand:
    def test_start_sample_dump(self, app):
        app.interp.eval("obs recorder start -cadence 1 -ring 16")
        app.interp.eval("label .l -text hi\npack append . .l {top}")
        app.update()
        text = app.interp.eval("obs recorder dump")
        assert text.startswith("RECORDER:")
        assert "x11.requests" in text
        filtered = app.interp.eval("obs recorder dump x11.batches*")
        assert "x11.batches" in filtered
        assert "tcl.commands" not in filtered

    def test_stop_keeps_series(self, app):
        app.interp.eval("obs recorder start -cadence 1")
        app.interp.eval("label .l -text hi\npack append . .l {top}")
        app.update()
        app.interp.eval("obs recorder stop")
        assert app.server._recorder is None
        assert app.interp.eval("obs recorder dump")

    def test_dump_before_start_errors(self, app):
        with pytest.raises(TclError, match="not started"):
            app.interp.eval("obs recorder dump")

    def test_bad_switch_and_bad_int(self, app):
        with pytest.raises(TclError, match="bad switch"):
            app.interp.eval("obs recorder start -bogus 1")
        with pytest.raises(TclError, match="expected integer"):
            app.interp.eval("obs recorder start -cadence abc")
        with pytest.raises(TclError, match="cadence_ms"):
            app.interp.eval("obs recorder start -cadence 0")

    def test_bad_subcommand(self, app):
        with pytest.raises(TclError, match="bad option"):
            app.interp.eval("obs recorder frobnicate")


class TestObsFlightCommand:
    def test_save_writes_flight_json(self, app, tmp_path):
        app.interp.eval("obs trace start -wire")
        app.interp.eval("label .l -text hi\npack append . .l {top}")
        app.update()
        path = str(tmp_path / "flight.json")
        assert app.interp.eval(
            "obs flight save {%s} -window 500" % path) == path
        with open(path) as handle:
            data = json.load(handle)
        assert data["kind"] == "flight"
        assert data["window_ms"] == 500
        app.interp.eval("obs trace stop")

    def test_wrong_args(self, app):
        with pytest.raises(TclError, match="wrong # args"):
            app.interp.eval("obs flight")
        with pytest.raises(TclError, match="wrong # args"):
            app.interp.eval("obs flight save")
        with pytest.raises(TclError, match="bad switch"):
            app.interp.eval("obs flight save /tmp/x -bogus 1")
