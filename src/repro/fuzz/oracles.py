"""Invariant oracles the fuzzer checks after every step.

Four invariants, each grounded in a contract the toolkit already
promises elsewhere:

``escape``
    No exception escapes the dispatcher: everything a script or widget
    raises routes to ``bgerror`` (PR 2's contract).  A ``TclError``
    from a *top-level* eval is the interpreter's normal error reporting
    and is allowed; anything escaping an event-loop pump is not.
``close-leak`` / ``selection-leak`` / ``stale-focus`` / ``stale-pointer``
    No X resource survives the destruction of its owner: a closed
    client's census bucket is empty, no selection claim outlives its
    window, and the server holds no destroyed window as focus or
    pointer target.
``registry-stale``
    A cleanly-destroyed application leaves no send-registry entry
    behind (the registry is advisory, so entries of *fault-killed*
    peers legitimately linger until a scrubbing lookup reclaims them —
    the fault plan's ``disconnected_clients`` set tells the two apart).
``dead-client-delivery``
    The output buffer never delivers a request on behalf of a closed
    connection: no ``req``/``batch`` journal entry attributed to a
    client may follow that client's ``disc`` entry.
``replay-divergence``
    The session journal replays byte-identically under
    ``replay_journal`` in default mode — determinism is itself an
    invariant.

Census and registry checks are purely introspective (no request ticks,
no events), so running them after every step cannot perturb the
session they are checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..tcl.errors import TclError
from ..x11.xserver import XProtocolError

#: Violation kinds whose detection requires the end-of-session replay.
SESSION_KINDS = frozenset(("dead-client-delivery", "replay-divergence"))


class Violation:
    """One invariant violation, tied to the step that surfaced it."""

    def __init__(self, kind: str, step: Optional[int], detail: str):
        self.kind = kind
        self.step = step          # step index; None = session-level
        self.detail = detail

    def __repr__(self) -> str:
        where = "step %d" % self.step if self.step is not None \
            else "session"
        return "<%s at %s: %s>" % (self.kind, where, self.detail)

    def format(self) -> str:
        where = "step %-3s" % self.step if self.step is not None \
            else "session "
        return "%s  %-21s %s" % (where, self.kind, self.detail)


def classify_swallowed(swallowed: List[Tuple[str, BaseException]],
                       step: int, faulted: bool) -> List[Violation]:
    """Sort the executor's swallowed exceptions into violations.

    ``faulted`` is True when a fault plan is installed: injected
    protocol errors at input-injection points (and application
    construction killed by a fault) are then expected, not bugs.
    """
    out = []
    for stage, error in swallowed:
        if stage == "eval":
            if isinstance(error, TclError):
                continue        # ordinary script error: bgerror country
            out.append(Violation(
                "escape", step, "%s escaped a top-level eval: %s"
                % (type(error).__name__, error)))
        elif stage == "pump":
            out.append(Violation(
                "escape", step, "%s escaped the event loop: %s"
                % (type(error).__name__, error)))
        elif stage == "inject":
            if faulted and isinstance(error, XProtocolError):
                continue        # the plan fired at the input's own tick
            out.append(Violation(
                "escape", step, "%s escaped input injection: %s"
                % (type(error).__name__, error)))
        elif stage == "new_app":
            if faulted:
                continue        # construction killed by a fault
            out.append(Violation(
                "escape", step, "%s escaped application setup: %s"
                % (type(error).__name__, error)))
    return out


def check_census(server, step: int, disconnected: Set[int],
                 app_clients: Dict[str, int]) -> List[Violation]:
    """The resource-ownership oracles, via ``resource_census()``."""
    out = []
    census = server.resource_census()
    for number, bucket in sorted(census.items()):
        if number == 0 or not bucket["closed"]:
            continue
        for field in ("windows", "resources", "properties",
                      "selections", "event_selections", "atoms"):
            if bucket[field]:
                out.append(Violation(
                    "close-leak", step,
                    "client %d is closed but still holds %s %s"
                    % (number, field, bucket[field][:8])))
    for atom, (window, owner) in sorted(server.selections.items(),
                                        key=lambda item: item[0]):
        if window.destroyed or window.id not in server.resources:
            out.append(Violation(
                "selection-leak", step,
                "selection atom %d still claimed by destroyed window %d"
                " (client %d)" % (atom, window.id, owner.number)))
    if server.focus_window.destroyed:
        out.append(Violation(
            "stale-focus", step,
            "server focus_window %d is destroyed"
            % server.focus_window.id))
    if server.pointer_window.destroyed:
        out.append(Violation(
            "stale-pointer", step,
            "server pointer_window %d is destroyed"
            % server.pointer_window.id))
    out.extend(_check_registry(server, step, disconnected, app_clients))
    return out


def _check_registry(server, step: int, disconnected: Set[int],
                    app_clients: Dict[str, int]) -> List[Violation]:
    """Stale send-registry entries of cleanly-destroyed applications."""
    from ..tcl.lists import parse_list
    atom = server.atoms.lookup("InterpRegistry")
    if not atom:
        return []
    entry = server.root.properties.get(atom)
    if entry is None or not isinstance(entry[1], str):
        return []
    try:
        lines = parse_list(entry[1])
    except TclError:
        return [Violation("registry-stale", step,
                          "registry property is not a valid list")]
    live = {app.name for app in getattr(server, "apps", [])
            if not app.destroyed}
    out = []
    for line in lines:
        try:
            fields = parse_list(line)
        except TclError:
            continue
        if len(fields) != 2:
            continue
        name = fields[0]
        if name in live:
            continue
        client = app_clients.get(name)
        if client is not None and client in disconnected:
            continue    # fault-killed peer: advisory entry, scrubbed lazily
        out.append(Violation(
            "registry-stale", step,
            'registry entry "%s" (comm window %s) survived a clean '
            "shutdown" % (name, fields[1])))
    return out


def check_dead_client_requests(journal) -> List[Violation]:
    """Scan the journal: no request delivery after a client's disc."""
    out = []
    dead: Set[int] = set()
    for entry in journal.entries():
        kind = entry["k"]
        if kind == "disc":
            dead.add(entry["client"])
        elif kind in ("req", "batch"):
            client = entry.get("client")
            if client is not None and client in dead:
                out.append(Violation(
                    "dead-client-delivery", None,
                    "%s %r (seq %d) delivered for closed client %d"
                    % (kind, entry.get("name", "batch"), entry["seq"],
                       client)))
    return out


def check_replay_identity(journal) -> List[Violation]:
    """Replay the journal in default mode; require byte-identity."""
    from ..obs.replay import replay_journal
    result = replay_journal(journal, mode="default")
    if result.replay_log is None:
        return [Violation("replay-divergence", None,
                          "replay produced no journal")]
    recorded = journal.to_jsonl().splitlines()
    replayed = result.replay_log.to_jsonl().splitlines()
    if recorded == replayed:
        return []
    index = next((i for i in range(min(len(recorded), len(replayed)))
                  if recorded[i] != replayed[i]),
                 min(len(recorded), len(replayed)))
    rec = recorded[index] if index < len(recorded) else "<end>"
    rep = replayed[index] if index < len(replayed) else "<end>"
    return [Violation(
        "replay-divergence", None,
        "journals diverge at line %d (%d recorded / %d replayed): "
        "recorded %.120s | replayed %.120s"
        % (index, len(recorded), len(replayed), rec, rep))]


__all__ = ["Violation", "SESSION_KINDS", "classify_swallowed",
           "check_census", "check_dead_client_requests",
           "check_replay_identity"]
