"""Tests for raise/lower (window stacking) and grab (modal input)."""

import pytest

from repro.tcl import TclError


def overlapping_frames(app):
    """Two siblings occupying the same area of a fixed-size parent."""
    app.interp.eval("wm geometry . 100x100")
    app.interp.eval("frame .a -geometry 80x80 -bg white")
    app.interp.eval("frame .b -geometry 80x80 -bg black")
    app.interp.eval("place .a -x 0 -y 0")
    app.interp.eval("place .b -x 0 -y 0")
    app.update()


class TestStacking:
    def test_later_sibling_is_on_top(self, app, server):
        overlapping_frames(app)
        assert server.root.window_at(10, 10).id == app.window(".b").id

    def test_raise_brings_to_top(self, app, server):
        overlapping_frames(app)
        app.interp.eval("raise .a")
        app.display.flush()     # deliver before inspecting server state
        assert server.root.window_at(10, 10).id == app.window(".a").id

    def test_lower_sends_to_bottom(self, app, server):
        overlapping_frames(app)
        app.interp.eval("lower .b")
        app.display.flush()     # deliver before inspecting server state
        assert server.root.window_at(10, 10).id == app.window(".a").id

    def test_clicks_go_to_top_window(self, app, server):
        overlapping_frames(app)
        app.interp.eval("bind .a <Button-1> {set hit a}")
        app.interp.eval("bind .b <Button-1> {set hit b}")
        server.warp_pointer(10, 10)
        server.press_button(1)
        app.update()
        assert app.interp.eval("set hit") == "b"
        app.interp.eval("raise .a")
        server.warp_pointer(11, 11)
        server.press_button(1)
        app.update()
        assert app.interp.eval("set hit") == "a"

    def test_raise_missing_window_is_error(self, app):
        with pytest.raises(TclError, match="bad window path"):
            app.interp.eval("raise .ghost")


class TestGrab:
    def make_two_buttons(self, app):
        app.interp.eval("button .inside -text in -command {set hit in}")
        app.interp.eval("button .outside -text out "
                        "-command {set hit out}")
        app.interp.eval("pack append . .inside {top} .outside {top}")
        app.update()

    def click(self, app, server, path):
        window = app.window(path)
        x, y = window.root_position()
        server.warp_pointer(x + 2, y + 2)
        server.press_button(1)
        server.release_button(1)
        app.update()

    def test_grab_blocks_outside_clicks(self, app, server):
        self.make_two_buttons(app)
        app.interp.eval("grab set .inside")
        self.click(app, server, ".outside")
        assert app.interp.eval("info exists hit") == "0"
        # The button didn't even see the press.
        assert not app.window(".outside").widget._pressed

    def test_grab_allows_inside_clicks(self, app, server):
        self.make_two_buttons(app)
        app.interp.eval("grab set .inside")
        self.click(app, server, ".inside")
        assert app.interp.eval("set hit") == "in"

    def test_grab_release_restores(self, app, server):
        self.make_two_buttons(app)
        app.interp.eval("grab set .inside")
        app.interp.eval("grab release .inside")
        self.click(app, server, ".outside")
        assert app.interp.eval("set hit") == "out"

    def test_grab_current(self, app):
        self.make_two_buttons(app)
        assert app.interp.eval("grab current") == ""
        app.interp.eval("grab set .inside")
        assert app.interp.eval("grab current") == ".inside"

    def test_grab_subtree_included(self, app, server):
        app.interp.eval("frame .dlg")
        app.interp.eval("button .dlg.ok -text ok -command {set hit ok}")
        app.interp.eval("pack append . .dlg {top}")
        app.interp.eval("pack append .dlg .dlg.ok {top}")
        app.update()
        app.interp.eval("grab set .dlg")
        self.click(app, server, ".dlg.ok")
        assert app.interp.eval("set hit") == "ok"

    def test_keystrokes_unaffected_by_grab(self, app, server):
        """Grabs constrain the pointer; the keyboard follows focus."""
        app.interp.eval("entry .e")
        app.interp.eval("frame .dlg -geometry 20x20")
        app.interp.eval("pack append . .e {top} .dlg {top}")
        app.update()
        app.interp.eval("focus .e")
        app.interp.eval("grab set .dlg")
        server.press_key("x", window_id=app.main.id)
        app.update()
        assert app.interp.eval(".e get") == "x"

    def test_grab_cleared_when_window_destroyed(self, app, server):
        self.make_two_buttons(app)
        app.interp.eval("frame .modal")
        app.interp.eval("pack append . .modal {top}")
        app.interp.eval("grab set .modal")
        app.interp.eval("destroy .modal")
        self.click(app, server, ".outside")
        assert app.interp.eval("set hit") == "out"
