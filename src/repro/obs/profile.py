"""The profiler: span aggregation into attribution tables.

Collapses a tracer's finished spans into three views:

* **by name** — per ``(kind, name)`` call count, self and cumulative
  virtual-time, X-request and round-trip attribution (so ``proc
  redraw`` or ``cmd button`` show up with their true cost);
* **by widget** — the same rolled up to the nearest widget path, which
  answers "which widget is hammering the server";
* **by request type** — total per named X request across the trace,
  the paper's §3.3 server-traffic table for an arbitrary workload.
  When the trace crossed the wire (server-side ``xhandle`` spans are
  present), each request type additionally gets its summed server
  handling time, so "how often" and "how expensive on the server" are
  attributed to the same originating request name.

Self time is a span's duration minus its direct children's durations;
cumulative time is the span's own duration (virtual clock, so nested
work is naturally included).  All aggregation is iterative — traces
can hold thousands of spans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .trace import Span, Tracer


class ProfileRow:
    """Aggregate stats for one profile key."""

    __slots__ = ("key", "count", "self_ms", "cum_ms",
                 "requests", "round_trips")

    def __init__(self, key: str):
        self.key = key
        self.count = 0
        self.self_ms = 0
        self.cum_ms = 0
        self.requests = 0
        self.round_trips = 0

    def to_dict(self) -> Dict[str, object]:
        return {"key": self.key, "count": self.count,
                "self_ms": self.self_ms, "cum_ms": self.cum_ms,
                "requests": self.requests,
                "round_trips": self.round_trips}


class Profile:
    """Aggregated view over one set of finished spans."""

    def __init__(self, spans: Iterable[Span]):
        spans = list(spans)
        child_ms: Dict[int, int] = {}
        for span in spans:
            if span.parent_id is not None:
                child_ms[span.parent_id] = (
                    child_ms.get(span.parent_id, 0) + span.duration)
        self.by_name: Dict[str, ProfileRow] = {}
        self.by_widget: Dict[str, ProfileRow] = {}
        self.by_request: Dict[str, int] = {}
        #: request name -> summed server-side handling ms, from the
        #: cross-boundary ``xhandle`` spans (empty for traces that
        #: never crossed the wire); counts stay in :attr:`by_request`
        #: so the pinned §3.3 traffic table is unchanged.
        self.by_request_ms: Dict[str, int] = {}
        for span in spans:
            if span.kind == "xhandle":
                self.by_request_ms[span.name] = (
                    self.by_request_ms.get(span.name, 0)
                    + span.duration)
            self_ms = span.duration - child_ms.get(span.id, 0)
            request_count = sum(span.requests.values())
            row = self._row(self.by_name,
                            "%s %s" % (span.kind, span.name))
            row.count += 1
            row.self_ms += self_ms
            row.cum_ms += span.duration
            row.requests += request_count
            row.round_trips += span.round_trips
            if span.widget:
                row = self._row(self.by_widget, span.widget)
                row.count += 1
                row.self_ms += self_ms
                # Cumulative per widget would double-count nested
                # spans on the same widget; self time adds up cleanly.
                row.requests += request_count
                row.round_trips += span.round_trips
            for name, count in span.requests.items():
                self.by_request[name] = (
                    self.by_request.get(name, 0) + count)

    @staticmethod
    def _row(table: Dict[str, ProfileRow], key: str) -> ProfileRow:
        row = table.get(key)
        if row is None:
            row = table[key] = ProfileRow(key)
        return row

    # -- output --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        order = lambda rows: [row.to_dict() for row in sorted(
            rows.values(), key=lambda r: (-r.self_ms, r.key))]
        data = {"by_name": order(self.by_name),
                "by_widget": order(self.by_widget),
                "by_request_type": dict(sorted(self.by_request.items()))}
        if self.by_request_ms:
            data["by_request_ms"] = dict(
                sorted(self.by_request_ms.items()))
        return data

    def report(self, limit: int = 20) -> str:
        """The three tables as aligned text (``obs profile report``)."""
        lines = []

        def table(title: str, rows: List[ProfileRow]):
            lines.append("%s (virtual ms)" % title)
            lines.append("  %-36s %6s %7s %7s %6s %6s"
                         % ("name", "count", "self", "cum",
                            "reqs", "rtrip"))
            for row in rows[:limit]:
                lines.append("  %-36s %6d %7d %7d %6d %6d"
                             % (row.key, row.count, row.self_ms,
                                row.cum_ms, row.requests,
                                row.round_trips))

        by_self = lambda rows: sorted(
            rows.values(), key=lambda r: (-r.self_ms, r.key))
        table("PROFILE by span", by_self(self.by_name))
        if self.by_widget:
            lines.append("")
            table("PROFILE by widget", by_self(self.by_widget))
        if self.by_request or self.by_request_ms:
            lines.append("")
            lines.append("PROFILE by x11 request type")
            for name, count in sorted(self.by_request.items(),
                                      key=lambda item: (-item[1],
                                                        item[0])):
                line = "  %-36s %6d" % (name, count)
                if name in self.by_request_ms:
                    line += "  handle %dms" % self.by_request_ms[name]
                lines.append(line)
            # Server work with no client-side attribution (the batch
            # framing tick, requests whose issuing span was untraced)
            # still shows its handling cost rather than vanishing.
            for name in sorted(set(self.by_request_ms)
                               - set(self.by_request)):
                lines.append("  %-36s %6d  handle %dms"
                             % (name, 0, self.by_request_ms[name]))
        return "\n".join(lines)


def profile(tracer: Tracer) -> Profile:
    """Aggregate a tracer's finished spans."""
    return Profile(tracer.spans)


__all__ = ["Profile", "ProfileRow", "profile"]
