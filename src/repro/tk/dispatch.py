"""Event dispatching (paper section 3.2).

Tk provides a centralized dispatcher supporting four kinds of events:

* **X events** — drained from the display connection and routed to the
  application's window handlers and Tcl bindings;
* **file events** — trigger when a file becomes readable;
* **timer events** — trigger at a point in time (``after``);
* **when-idle events** — trigger when all other pending events have
  been processed (used e.g. to coalesce widget redraws).

Time is the simulated server's millisecond clock, so tests are
deterministic: when nothing else is runnable and a blocking wait is
requested, the dispatcher advances the clock to the next timer
deadline instead of sleeping.
"""

from __future__ import annotations

import heapq
import select as _select
from collections import deque
from itertools import count
from typing import Callable, Dict, List, Optional

from ..tcl.errors import TclError
from ..x11.xserver import XConnectionLost, XProtocolError


class EventDispatcher:
    """The per-application event dispatcher."""

    def __init__(self, app):
        self.app = app
        self._timers: List[tuple] = []       # heap of (when, seq, id)
        self._timer_callbacks: Dict[int, Callable] = {}
        self._idle: deque = deque()
        self._files: List[tuple] = []        # (fileobj, callback)
        self._ids = count(1)

    # -- clock ----------------------------------------------------------

    def now(self) -> int:
        return self.app.display.server.time_ms

    def _advance_clock(self, when: int) -> None:
        server = self.app.display.server
        if when > server.time_ms:
            if server._jrec is not None:
                # A blocking wait jumping to a timer deadline is an
                # *input* to the session: journal it so a replay moves
                # the virtual clock along the same timeline.
                server._jrec.input("advance", (when, self.app.name))
            server.time_ms = when

    # -- timer events ------------------------------------------------------

    def after(self, ms: int, callback: Callable) -> int:
        """Schedule ``callback`` to run ``ms`` milliseconds from now."""
        timer_id = next(self._ids)
        when = self.now() + max(0, ms)
        heapq.heappush(self._timers, (when, timer_id))
        self._timer_callbacks[timer_id] = callback
        return timer_id

    def cancel_after(self, timer_id: int) -> None:
        self._timer_callbacks.pop(timer_id, None)

    def next_timer_deadline(self) -> Optional[int]:
        while self._timers and self._timers[0][1] not in \
                self._timer_callbacks:
            heapq.heappop(self._timers)
        return self._timers[0][0] if self._timers else None

    def _run_due_timer(self) -> bool:
        deadline = self.next_timer_deadline()
        if deadline is None or deadline > self.now():
            return False
        _, timer_id = heapq.heappop(self._timers)
        callback = self._timer_callbacks.pop(timer_id, None)
        if callback is None:
            return self._run_due_timer()
        callback()
        return True

    # -- when-idle events --------------------------------------------------

    def when_idle(self, callback: Callable) -> None:
        self._idle.append(callback)

    def _run_idle(self) -> bool:
        if not self._idle:
            return False
        # Run the handlers present now, not ones they themselves queue,
        # so a redraw that re-schedules itself cannot starve the loop.
        for _ in range(len(self._idle)):
            if not self._idle:
                break
            self._idle.popleft()()
        return True

    # -- file events ----------------------------------------------------------

    def create_file_handler(self, fileobj, callback: Callable) -> None:
        """Call ``callback(fileobj)`` whenever ``fileobj`` is readable."""
        self._files.append((fileobj, callback))

    def delete_file_handler(self, fileobj) -> None:
        self._files = [(f, cb) for f, cb in self._files if f is not fileobj]

    def _poll_files(self) -> bool:
        if not self._files:
            return False
        try:
            readable, _, _ = _select.select(
                [f for f, _ in self._files], [], [], 0)
        except (ValueError, OSError):
            return False
        ran = False
        for fileobj, callback in list(self._files):
            if fileobj in readable:
                callback(fileobj)
                ran = True
        return ran

    # -- X events ------------------------------------------------------------

    def _process_x_event(self) -> bool:
        display = self.app.display
        event = display.next_event()
        if event is None:
            return False
        self.app.deliver_event(event)
        return True

    # -- the loop --------------------------------------------------------

    def do_one_event(self, block: bool = False) -> bool:
        """Process one pending event; optionally wait for one.

        Priority order matches Tk: X events, then timers, then file
        events, then idle handlers.  In blocking mode with nothing
        runnable, the virtual clock jumps to the next timer deadline.
        Returns False if nothing was (or will become) runnable.

        A Tcl or X protocol error escaping any handler is routed to the
        application's ``bgerror``/``tkerror`` proc if one is defined
        (Tk's background-error mechanism); only without a handler does
        it unwind the loop.  A lost connection is fatal, as in real Tk:
        it is reported once through the background-error path and the
        application is torn down — retrying requests against a dead
        wire would spin forever.
        """
        try:
            return self._do_one_event(block)
        except XConnectionLost as error:
            handle = getattr(self.app, "connection_lost", None)
            if handle is None:
                raise
            handle(error)
            return False
        except (TclError, XProtocolError) as error:
            report = getattr(self.app, "report_background_error", None)
            if report is None or not report(error):
                raise
            return True

    def _do_one_event(self, block: bool) -> bool:
        if self._process_x_event():
            return True
        if self._run_due_timer():
            return True
        if self._poll_files():
            return True
        if self._run_idle():
            return True
        if self.app.display.flush():
            # Going idle is the flush point of the output buffer (the
            # Xlib discipline): deliver buffered one-way requests now,
            # before blocking, so their events can arrive.
            return True
        if block:
            deadline = self.next_timer_deadline()
            if deadline is not None:
                self._advance_clock(deadline)
                return self._run_due_timer()
        return False

    def update(self) -> int:
        """Process events until none are pending; returns the count."""
        processed = 0
        while self.do_one_event(block=False):
            processed += 1
            if processed > 100000:
                raise RuntimeError("update did not converge")
        return processed

    def do_events(self, limit: int) -> int:
        """Process up to ``limit`` pending events; returns the count.

        The cooperative-scheduling variant of :meth:`update`: a fleet
        driver interleaving hundreds of sessions pumps each one with a
        bounded budget per scheduler round, so a session with a long
        redraw cascade cannot starve its neighbors.  A return value
        equal to ``limit`` means the session still has pending work and
        should be revisited before its next input.
        """
        processed = 0
        while processed < limit and self.do_one_event(block=False):
            processed += 1
        return processed

    def pending_work(self) -> bool:
        display = self.app.display
        return bool(display.pending() or display.pending_output() or
                    self._idle or self.next_timer_deadline() is not None)

    def mainloop(self, until: Optional[Callable[[], bool]] = None,
                 max_iterations: int = 1000000) -> None:
        """Run until the application is destroyed (or ``until`` holds)."""
        for _ in range(max_iterations):
            if self.app.destroyed:
                return
            if until is not None and until():
                return
            if not self.do_one_event(block=True):
                return
