"""``python -m repro.wish`` — run the windowing shell CLI."""

import sys

from .shell import main

sys.exit(main())
