"""Tests for the client-side output buffer and request coalescing.

The tentpole of the Xlib-style batching work: one-way requests enqueue
into the Display's output buffer and reach the server as one batch at
flush time; reply-bearing requests auto-flush first; a coalescing pass
merges/drops redundant requests without reordering survivors.
"""

import pytest

from repro.x11 import (Display, FaultPlan, XConnectionLost,
                       XProtocolError, XServer)
from repro.x11 import events as ev


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def display(server):
    return Display(server, buffering_enabled=True)


def _metrics(server):
    return server.obs.metrics


class TestBuffering:
    def test_oneway_requests_do_not_reach_server(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        before = server.requests
        display.map_window(win)
        display.set_window_background(win, 7)
        assert server.requests == before
        assert display.pending_output() == 2
        assert not server.window(win).mapped

    def test_flush_delivers_in_order(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.map_window(win)
        display.set_window_background(win, 7)
        delivered = display.flush()
        assert delivered == 2
        assert display.pending_output() == 0
        assert server.window(win).mapped
        assert server.window(win).background == 7

    def test_flush_counts_one_batch(self, server, display):
        metrics = _metrics(server)
        before = metrics.value("x11.batches")
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.map_window(win)
        display.flush()
        assert metrics.value("x11.batches") == before + 1
        assert metrics.value("x11.requests", type="batch") == before + 1

    def test_empty_flush_is_free(self, server, display):
        before = server.requests
        assert display.flush() == 0
        assert server.requests == before

    def test_reply_bearing_request_auto_flushes(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.configure_window(win, width=55)
        assert display.pending_output() == 1
        geometry = display.get_geometry(win)
        assert display.pending_output() == 0
        assert geometry[2] == 55

    def test_pending_flushes_when_queue_empty(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.map_window(win)
        # XPending semantics: with no events queued, write out the
        # buffer so the server can generate some.
        assert display.pending() > 0
        types = [event.type for event in _drain(display)]
        assert ev.MAP_NOTIFY in types

    def test_ablation_flag_restores_synchronous_path(self, server):
        display = Display(server, buffering_enabled=False)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.map_window(win)
        assert display.pending_output() == 0
        assert server.window(win).mapped

    def test_close_flushes_buffer(self, server):
        display = Display(server, buffering_enabled=True)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.map_window(win)
        display.close()
        # The map was delivered before the disconnect destroyed the
        # client's windows.
        assert not server.window_exists(win)

    def test_event_order_preserved_across_batches(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.map_window(win)
        display.configure_window(win, width=20)
        display.unmap_window(win)
        display.flush()
        types = [event.type for event in _drain(display)]
        assert types == [ev.MAP_NOTIFY, ev.CONFIGURE_NOTIFY,
                         ev.UNMAP_NOTIFY]


def _drain(display):
    out = []
    while display.pending():
        out.append(display.next_event())
    return out


class TestCoalescing:
    def test_consecutive_configures_merge(self, server, display):
        metrics = _metrics(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        before = metrics.value("x11.requests", type="configure_window")
        display.configure_window(win, width=20)
        display.configure_window(win, height=30)
        display.configure_window(win, width=40)
        dropped_before = metrics.value("x11.requests_coalesced")
        display.flush()
        assert metrics.value("x11.requests",
                             type="configure_window") == before + 1
        assert metrics.value("x11.requests_coalesced") == \
            dropped_before + 2
        assert server.window(win).width == 40     # later fields win
        assert server.window(win).height == 30    # earlier field kept

    def test_configure_merge_blocked_by_intervening_request(
            self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.flush()
        display.configure_window(win, width=20)
        display.map_window(win)           # references the same window
        display.configure_window(win, width=30)
        display.flush()
        # Merging across the map would reorder the ConfigureNotify
        # relative to MapNotify; both configures must survive.
        types = [event.type for event in _drain(display)]
        assert types == [ev.CONFIGURE_NOTIFY, ev.MAP_NOTIFY,
                         ev.CONFIGURE_NOTIFY]

    def test_configures_on_distinct_windows_both_survive(
            self, server, display):
        a = display.create_window(display.root, 0, 0, 10, 10)
        b = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        display.configure_window(a, width=21)
        display.configure_window(b, width=22)
        display.flush()
        assert server.window(a).width == 21
        assert server.window(b).width == 22

    def test_clear_supersedes_earlier_draws(self, server, display):
        metrics = _metrics(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        gc = display.create_gc(foreground=1)
        before = metrics.value("x11.requests", type="fill_rectangle")
        display.fill_rectangle(win, gc, 0, 0, 5, 5)
        display.draw_string(win, gc, 1, 1, "gone")
        display.clear_window(win)
        display.draw_string(win, gc, 2, 2, "kept")
        display.flush()
        # The superseded draws never reach the server.
        assert metrics.value("x11.requests",
                             type="fill_rectangle") == before
        ops = server.window(win).draw_ops
        assert [op.kind for op in ops] == ["text"]
        assert ops[0].args[2] == "kept"

    def test_destroy_breaks_clear_chain(self, server, display):
        """Draws on a window destroyed mid-buffer must still be
        delivered in order (and fail), not silently dropped."""
        win = display.create_window(display.root, 0, 0, 10, 10)
        gc = display.create_gc(foreground=1)
        display.flush()
        display.draw_string(win, gc, 1, 1, "to the old window")
        display.destroy_window(win)
        with pytest.raises(XProtocolError, match="BadWindow"):
            # The draw lands on the just-destroyed window: the server
            # reports the error after finishing the batch.
            display.clear_window(win)
            display.flush()

    def test_select_input_last_write_wins(self, server, display):
        metrics = _metrics(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        before = metrics.value("x11.requests", type="select_input")
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.select_input(win, ev.KEY_PRESS_MASK)
        display.flush()
        assert metrics.value("x11.requests",
                             type="select_input") == before + 1
        assert server.window(win).event_selections[display.client] == \
            ev.KEY_PRESS_MASK

    def test_change_property_last_write_wins(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        atom = display.intern_atom("P")
        string = display.intern_atom("STRING")
        metrics = _metrics(server)
        before = metrics.value("x11.requests", type="change_property")
        display.change_property(win, atom, string, "first")
        display.change_property(win, atom, string, "second")
        display.flush()
        assert metrics.value("x11.requests",
                             type="change_property") == before + 1
        assert display.get_property(win, atom)[1] == "second"

    def test_appends_are_never_dropped(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        atom = display.intern_atom("Q")
        string = display.intern_atom("STRING")
        display.change_property(win, atom, string, ["a"], append=True)
        display.change_property(win, atom, string, ["b"], append=True)
        display.flush()
        assert list(display.get_property(win, atom)[1]) == ["a", "b"]

    def test_write_before_append_survives(self, server, display):
        """An append depends on the preceding write: neither may be
        dropped even though both target the same key."""
        win = display.create_window(display.root, 0, 0, 10, 10)
        atom = display.intern_atom("R")
        string = display.intern_atom("STRING")
        display.change_property(win, atom, string, ["base"])
        display.change_property(win, atom, string, ["more"], append=True)
        display.flush()
        assert list(display.get_property(win, atom)[1]) == ["base", "more"]

    def test_distinct_properties_not_coalesced(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        a = display.intern_atom("A")
        b = display.intern_atom("B")
        string = display.intern_atom("STRING")
        display.change_property(win, a, string, "one")
        display.change_property(win, b, string, "two")
        display.flush()
        assert display.get_property(win, a)[1] == "one"
        assert display.get_property(win, b)[1] == "two"


class TestReplyBarriers:
    """Satellite regression: reply-bearing ops are coalescing barriers.

    Replayed and fuzzed op lists hand :func:`_coalesce` buffers where
    reply-bearing requests interleave with one-ways.  A reply observes
    server state, so nothing may merge or be superseded across it —
    otherwise the replay sees a different interleaving than the
    recording did.
    """

    def _coalesce(self, ops):
        from repro.x11.display import _coalesce
        return _coalesce(list(ops))

    def test_configures_do_not_merge_across_reply(self):
        ops = [("configure_window", 5, (), {"width": 20}),
               ("get_geometry", 5, (5,), {}),
               ("configure_window", 5, (), {"width": 30})]
        kept, dropped = self._coalesce(ops)
        assert dropped == 0
        assert [op[0] for op in kept] == ["configure_window",
                                          "get_geometry",
                                          "configure_window"]
        assert kept[0][3] == {"width": 20}   # not merged forward

    def test_clear_does_not_supersede_draw_across_reply(self):
        ops = [("draw_line", 5, (5, 1, 0, 0, 9, 9), {}),
               ("get_geometry", 5, (5,), {}),
               ("clear_window", 5, (5,), {})]
        kept, dropped = self._coalesce(ops)
        assert dropped == 0
        assert [op[0] for op in kept] == ["draw_line", "get_geometry",
                                          "clear_window"]

    def test_property_write_survives_across_reply(self):
        ops = [("change_property", 5, (5, 7, 7, "old"), {}),
               ("get_property", 5, (5, 7, False), {}),
               ("change_property", 5, (5, 7, 7, "new"), {})]
        kept, dropped = self._coalesce(ops)
        assert dropped == 0
        assert len(kept) == 3

    def test_select_input_survives_across_reply(self):
        client = object()
        ops = [("select_input", 5, (client, 5, 1), {}),
               ("query_tree", 5, (5,), {}),
               ("select_input", 5, (client, 5, 2), {})]
        kept, dropped = self._coalesce(ops)
        assert dropped == 0
        assert len(kept) == 3

    def test_without_barrier_rules_still_apply(self):
        """Control: the same buffers with the reply removed do merge."""
        configures = [("configure_window", 5, (), {"width": 20}),
                      ("configure_window", 5, (), {"width": 30})]
        kept, dropped = self._coalesce(configures)
        assert dropped == 1 and kept[0][3] == {"width": 30}
        client = object()
        selects = [("select_input", 5, (client, 5, 1), {}),
                   ("select_input", 5, (client, 5, 2), {})]
        kept, dropped = self._coalesce(selects)
        assert dropped == 1 and kept[0][2][2] == 2

    def test_every_reply_op_is_a_barrier(self):
        from repro.x11.display import _REPLY_OPS
        for name in _REPLY_OPS:
            ops = [("configure_window", 5, (), {"width": 20}),
                   (name, None, (), {}),
                   ("configure_window", 5, (), {"width": 30})]
            kept, dropped = self._coalesce(ops)
            assert dropped == 0, name
            assert len(kept) == 3, name


class TestBatchErrors:
    def test_error_deferred_to_flush(self, server, display):
        """An error from a mid-batch request surfaces at flush time and
        does not stop later requests (the async X error model)."""
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        display.configure_window(99999, width=5)    # BadWindow
        display.map_window(win)                     # must still land
        with pytest.raises(XProtocolError, match="BadWindow"):
            display.flush()
        assert server.window(win).mapped

    def test_first_error_reported(self, server, display):
        display.configure_window(11111, width=5)
        display.configure_window(22222, width=5)
        with pytest.raises(XProtocolError, match="11111"):
            display.flush()

    def test_disconnect_mid_batch_aborts(self, server, display):
        """A FaultPlan disconnect firing inside a batch aborts the
        remainder with XConnectionLost."""
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(display.client, on_request="map_window")
        display.map_window(win)
        display.set_window_background(win, 3)
        with pytest.raises(XConnectionLost):
            display.flush()
        assert display.closed
        # Every subsequent call surfaces the dead connection.
        with pytest.raises(XConnectionLost):
            display.pending()

    def test_disconnect_on_batch_write_loses_whole_batch(self, server,
                                                         display):
        """A disconnect triggered by the batch tick itself models the
        connection dying on the wire write."""
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(display.client, on_request="batch")
        display.map_window(win)
        with pytest.raises(XConnectionLost):
            display.flush()
        assert not server.window_exists(win)   # scrubbed at close-down

    def test_flush_on_closed_display_raises(self, server, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        display.map_window(win)
        server.disconnect(display.client)
        with pytest.raises(XConnectionLost):
            display.flush()
        assert display.pending_output() == 0   # buffer discarded

    def test_lost_batch_is_consumed_not_retried(self, server, display):
        """Satellite regression: flush consumes the buffer *before*
        XConnectionLost propagates.  Requests handed to a dead wire are
        gone; a retrying caller must not re-deliver the prefix that
        already executed before the connection died."""
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        plan = server.install_fault_plan(FaultPlan())
        plan.disconnect_client(display.client, on_request="map_window")
        display.map_window(win)
        display.set_window_background(win, 3)
        requests_before = server.requests
        with pytest.raises(XConnectionLost):
            display.flush()
        # the failed batch is consumed, not parked for a retry
        assert display.pending_output() == 0
        requests_after = server.requests
        # a retrying caller gets a clean no-op, and nothing reaches the
        # server a second time
        assert display.flush() == 0
        assert server.requests == requests_after
        assert requests_after > requests_before  # the prefix did run

    def test_protocol_error_batch_also_consumed(self, server, display):
        """The async-error path (batch survives, one request failed)
        must leave the buffer just as empty: the batch was delivered."""
        display.configure_window(99999, width=5)    # BadWindow
        with pytest.raises(XProtocolError, match="BadWindow"):
            display.flush()
        assert display.pending_output() == 0
        assert display.flush() == 0

    def test_metrics_track_batch_sizes(self, server, display):
        metrics = _metrics(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.flush()
        display.map_window(win)
        display.set_window_background(win, 1)
        display.configure_window(win, width=12)
        display.flush()
        assert metrics.value("x11.batch_size") >= 1       # observations
        assert metrics.get("x11.batch_size").total >= 3   # requests
