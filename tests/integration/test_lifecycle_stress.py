"""Stress/lifecycle tests: repeated create/destroy cycles must not
leak windows, commands, bindings, or server resources."""

import io

import pytest

from repro.tk import TkApp
from repro.x11 import XServer


@pytest.fixture
def app():
    application = TkApp(XServer(), name="stress")
    application.interp.stdout = io.StringIO()
    return application


class TestNoLeaks:
    def test_window_tables_shrink_after_destroy(self, app):
        baseline_paths = len(app._windows_by_path)
        baseline_ids = len(app._windows_by_id)
        for cycle in range(10):
            for index in range(20):
                app.interp.eval("button .b%d -text x -command {}"
                                % index)
                app.interp.eval("pack append . .b%d {top}" % index)
            app.update()
            for index in range(20):
                app.interp.eval("destroy .b%d" % index)
            app.update()
        assert len(app._windows_by_path) == baseline_paths
        assert len(app._windows_by_id) == baseline_ids

    def test_widget_commands_removed(self, app):
        baseline = len(app.interp.commands)
        for cycle in range(5):
            app.interp.eval("entry .e")
            app.interp.eval("destroy .e")
        assert len(app.interp.commands) == baseline

    def test_server_window_count_stable(self, app):
        server = app.display.server
        for _ in range(5):
            app.interp.eval("frame .f")
            app.interp.eval("frame .f.inner")
            app.interp.eval("destroy .f")
        baseline = len(server.resources)
        for _ in range(5):
            app.interp.eval("frame .f")
            app.interp.eval("frame .f.inner")
            app.interp.eval("destroy .f")
        assert len(server.resources) == baseline

    def test_bindings_dropped_with_window(self, app):
        for cycle in range(5):
            app.interp.eval("frame .f -geometry 20x20")
            app.interp.eval("bind .f a {set x 1}")
            app.interp.eval("destroy .f")
        assert app.bindings._bindings.get(".f") is None

    def test_many_apps_connect_and_leave(self):
        server = XServer()
        survivor = TkApp(server, name="survivor")
        survivor.interp.stdout = io.StringIO()
        for round_number in range(10):
            transient = TkApp(server, name="transient%d" % round_number)
            transient.interp.stdout = io.StringIO()
            transient.interp.eval("button .b -text x")
            survivor.interp.eval(
                "send transient%d set v %d" % (round_number,
                                               round_number))
            transient.destroy()
        assert survivor.interp.eval("winfo interps") == "survivor"

    def test_deep_widget_tree(self, app):
        path = ""
        for depth in range(20):
            path += ".f%d" % depth
            app.interp.eval("frame %s" % path)
        assert app.interp.eval("winfo exists %s" % path) == "1"
        app.interp.eval("destroy .f0")
        assert app.interp.eval("winfo exists %s" % path) == "0"

    def test_hundred_widget_application(self, app):
        """Well beyond the paper's 'many tens of widgets'."""
        app.interp.eval("wm geometry . 800x800")
        for index in range(100):
            kind = ("button", "label", "checkbutton",
                    "entry")[index % 4]
            app.interp.eval("%s .w%d %s" % (
                kind, index,
                "-text w%d" % index if kind != "entry" else ""))
            app.interp.eval("pack append . .w%d {top}" % index)
        app.update()
        assert len(app.interp.eval("winfo children .").split()) == 100
        app.interp.eval("destroy .")
        assert app.destroyed


class TestDestroyMidDispatch:
    """A binding or command may destroy its own widget, an ancestor,
    or the whole application while events for the doomed subtree are
    still queued; the remainder of the dispatch must die quietly with
    the widgets (no handler runs on a dead window, nothing escapes to
    the caller, no server resources leak)."""

    def _count_errors(self, app):
        app.interp.eval("set errs 0")
        app.interp.eval("proc bgerror msg {global errs; incr errs}")

    def test_binding_destroys_own_widget(self, app):
        server = app.display.server
        self._count_errors(app)
        app.interp.eval("frame .f -geometry 40x40")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval(
            "bind .f <Key> {destroy %W; set after_ran 1}")
        window = app.window(".f")
        # Queue a second event for the same window: it must not be
        # dispatched once the first one's binding kills the window.
        server.press_key("a", window_id=window.id)
        server.press_key("b", window_id=window.id)
        app.update()
        assert app.interp.eval("winfo exists .f") == "0"
        # The destroying binding itself ran to completion exactly
        # once (the queued second event died with the window).
        assert app.interp.eval("set after_ran") == "1"
        assert app.interp.eval("set errs") == "0"

    def test_binding_destroys_ancestor_with_queued_sibling_events(
            self, app):
        server = app.display.server
        self._count_errors(app)
        app.interp.eval("frame .f -geometry 80x80")
        app.interp.eval("frame .f.a -geometry 30x30")
        app.interp.eval("frame .f.b -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.interp.eval("pack append .f .f.a {top} .f.b {top}")
        app.update()
        app.interp.eval("bind .f.a <Key> {destroy .f}")
        app.interp.eval("bind .f.b <Key> {set b_ran 1}")
        a_id = app.window(".f.a").id
        b_id = app.window(".f.b").id
        # Queue events for BOTH children before dispatching either:
        # .f.a's handler destroys the shared ancestor, so .f.b's
        # already-queued event must evaporate.
        server.press_key("a", window_id=a_id)
        server.press_key("b", window_id=b_id)
        app.update()
        assert app.interp.eval("winfo exists .f.b") == "0"
        assert app.interp.eval("info exists b_ran") == "0"
        assert app.interp.eval("set errs") == "0"

    def test_binding_destroys_whole_application(self, app):
        server = app.display.server
        self._count_errors(app)
        app.interp.eval("frame .f -geometry 40x40")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f <Key> {destroy .}")
        window = app.window(".f")
        server.press_key("a", window_id=window.id)
        server.press_key("b", window_id=window.id)   # queued behind it
        app.update()                                 # must not raise
        assert app.destroyed

    def test_destroy_binding_firing_destroy_again_is_safe(self, app):
        self._count_errors(app)
        app.interp.eval("frame .f -geometry 40x40")
        app.interp.eval("frame .f.inner -geometry 20x20")
        app.interp.eval("pack append . .f {top}")
        app.update()
        # <Destroy> on the child re-enters destroy on the parent that
        # is already being torn down.
        app.interp.eval("bind .f.inner <Destroy> {destroy .f}")
        app.interp.eval("destroy .f")
        app.update()
        assert app.interp.eval("winfo exists .f") == "0"
        assert app.interp.eval("set errs") == "0"

    def test_no_server_leak_after_mid_dispatch_destroy(self, app):
        server = app.display.server
        self._count_errors(app)
        app.update()
        baseline = len(server.resources)
        for round_number in range(5):
            app.interp.eval("frame .f -geometry 60x60")
            app.interp.eval("frame .f.a -geometry 20x20")
            app.interp.eval("pack append . .f {top}")
            app.interp.eval("pack append .f .f.a {top}")
            app.update()
            app.interp.eval("bind .f.a <Key> {destroy .f}")
            server.press_key("a",
                             window_id=app.window(".f.a").id)
            app.update()
        assert len(server.resources) == baseline
        assert app.interp.eval("set errs") == "0"

    def test_command_destroying_button_mid_click(self, app):
        server = app.display.server
        self._count_errors(app)
        app.interp.eval(
            "button .b -text x -command {destroy .b}")
        app.interp.eval("pack append . .b {top}")
        app.update()
        window = app.window(".b")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 2, root_y + 2)
        server.press_button(1)
        server.release_button(1)
        app.update()
        assert app.interp.eval("winfo exists .b") == "0"
        assert app.interp.eval("set errs") == "0"
