"""Filesystem and process commands: file, glob, pwd, cd, exec.

``file`` accepts both the old word order used in the paper's Figure 9
(``file $name isdirectory``) and the modern one
(``file isdirectory $name``).

``exec`` does not spawn real operating-system processes; it dispatches
to the interpreter's ``exec_handler`` (a :class:`ProcessRegistry` in
wish), which runs simulated programs in-process.  This is the
substitution documented in DESIGN.md: the paper's examples only need
``ls``, ``sh -c "browse dir &"`` and the ``mx`` editor, all of which the
registry provides.
"""

from __future__ import annotations

import os
from typing import List

from ..errors import TclError
from ..lists import format_list
from ..strings import glob_match

_FILE_OPTIONS = {
    "exists", "isdirectory", "isfile", "readable", "writable",
    "executable", "owned", "size", "mtime", "atime", "dirname", "tail",
    "rootname", "extension", "type",
}


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def cmd_file(interp, argv: List[str]) -> str:
    if len(argv) != 3:
        raise _wrong_args("file option name")
    first, second = argv[1], argv[2]
    if first in _FILE_OPTIONS:
        option, name = first, second
    elif second in _FILE_OPTIONS:
        option, name = second, first  # old-Tcl word order (Figure 9)
    else:
        raise TclError(
            'bad option "%s": no valid file option in "file %s %s"'
            % (first, first, second))
    return _file_option(option, name)


def _file_option(option: str, name: str) -> str:
    if option == "exists":
        return "1" if os.path.exists(name) else "0"
    if option == "isdirectory":
        return "1" if os.path.isdir(name) else "0"
    if option == "isfile":
        return "1" if os.path.isfile(name) else "0"
    if option == "readable":
        return "1" if os.access(name, os.R_OK) else "0"
    if option == "writable":
        return "1" if os.access(name, os.W_OK) else "0"
    if option == "executable":
        return "1" if os.access(name, os.X_OK) else "0"
    if option == "owned":
        try:
            return "1" if os.stat(name).st_uid == os.getuid() else "0"
        except OSError:
            return "0"
    if option in ("size", "mtime", "atime"):
        try:
            stat = os.stat(name)
        except OSError as error:
            raise TclError('couldn\'t stat "%s": %s'
                           % (name, error.strerror or error))
        if option == "size":
            return str(stat.st_size)
        if option == "mtime":
            return str(int(stat.st_mtime))
        return str(int(stat.st_atime))
    if option == "dirname":
        return os.path.dirname(name) or "."
    if option == "tail":
        return os.path.basename(name)
    if option == "rootname":
        return os.path.splitext(name)[0]
    if option == "extension":
        return os.path.splitext(name)[1]
    if option == "type":
        if os.path.islink(name):
            return "link"
        if os.path.isdir(name):
            return "directory"
        if os.path.isfile(name):
            return "file"
        raise TclError('couldn\'t stat "%s"' % name)
    raise TclError('bad file option "%s"' % option)


def cmd_glob(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("glob ?-nocomplain? name ?name ...?")
    patterns = argv[1:]
    complain = True
    if patterns[0] == "-nocomplain":
        complain = False
        patterns = patterns[1:]
    matches: List[str] = []
    for pattern in patterns:
        directory, _, leaf = pattern.rpartition("/")
        base = directory or "."
        try:
            names = os.listdir(base)
        except OSError:
            names = []
        for name in sorted(names):
            if name.startswith(".") and not leaf.startswith("."):
                continue
            if glob_match(leaf or pattern, name):
                matches.append(directory + "/" + name if directory
                               else name)
    if not matches and complain:
        raise TclError('no files matched glob pattern%s "%s"'
                       % ("s" if len(patterns) > 1 else "",
                          " ".join(patterns)))
    return format_list(matches)


def cmd_pwd(interp, argv: List[str]) -> str:
    if len(argv) != 1:
        raise _wrong_args("pwd")
    return os.getcwd()


def cmd_cd(interp, argv: List[str]) -> str:
    if len(argv) > 2:
        raise _wrong_args("cd ?dirName?")
    target = argv[1] if len(argv) == 2 else os.path.expanduser("~")
    try:
        os.chdir(target)
    except OSError as error:
        raise TclError('couldn\'t change working directory to "%s": %s'
                       % (target, error.strerror or error))
    return ""


def cmd_exec(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise _wrong_args("exec arg ?arg ...?")
    handler = getattr(interp, "exec_handler", None)
    if handler is None:
        raise TclError(
            'couldn\'t find "%s" to execute (no process registry '
            'installed in this interpreter)' % argv[1])
    return handler(argv[1:])


def register(interp) -> None:
    interp.register("file", cmd_file)
    interp.register("glob", cmd_glob)
    interp.register("pwd", cmd_pwd)
    interp.register("cd", cmd_cd)
    interp.register("exec", cmd_exec)
