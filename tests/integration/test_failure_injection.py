"""Failure-injection tests: destroyed windows, dying applications,
errors inside callbacks — the system must degrade with Tcl errors, not
crashes or hangs."""

import io

import pytest

from repro.tcl import TclError
from repro.tk import TkApp, pump_all
from repro.x11 import XServer, XProtocolError
from repro.x11 import events as ev


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def app(server):
    application = TkApp(server, name="victim")
    application.interp.stdout = io.StringIO()
    return application


class TestDestroyedWindows:
    def test_widget_command_after_destroy_is_clean_error(self, app):
        app.interp.eval("button .b -text x")
        app.interp.eval("destroy .b")
        with pytest.raises(TclError, match="invalid command name"):
            app.interp.eval(".b configure -text y")

    def test_binding_that_destroys_its_own_window(self, app, server):
        """A binding may destroy the window it fires on (the browser's
        Control-q does exactly this)."""
        app.interp.eval("frame .f -geometry 40x40")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f x {destroy .f}")
        server.press_key("x", window_id=app.window(".f").id)
        app.update()
        assert app.interp.eval("winfo exists .f") == "0"
        # Queue stays healthy afterwards.
        app.update()

    def test_command_that_destroys_the_button(self, app, server):
        app.interp.eval("button .b -text x -command {destroy .b}")
        app.interp.eval("pack append . .b {top}")
        app.update()
        window = app.window(".b")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 2, root_y + 2)
        server.press_button(1)
        server.release_button(1)
        app.update()
        assert app.interp.eval("winfo exists .b") == "0"

    def test_destroy_parent_during_pack(self, app):
        app.interp.eval("frame .f")
        app.interp.eval("button .f.b -text x")
        app.interp.eval("pack append .f .f.b {top}")
        app.interp.eval("destroy .f")
        app.update()
        assert app.interp.eval("winfo exists .f.b") == "0"

    def test_events_for_destroyed_window_dropped(self, app, server):
        app.interp.eval("frame .f -geometry 40x40")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f x {set fired 1}")
        window_id = app.window(".f").id
        server.press_key("x", window_id=window_id)
        # Destroy before the event is processed.
        app.interp.eval("destroy .f")
        app.update()     # must not raise
        assert app.interp.eval("info exists fired") == "0"

    def test_focus_window_destroyed_mid_stream(self, app, server):
        app.interp.eval("entry .e")
        app.interp.eval("pack append . .e {top}")
        app.update()
        app.interp.eval("focus .e")
        server.press_key("a", window_id=app.main.id)
        app.interp.eval("destroy .e")
        app.update()    # pending keystroke must not crash
        assert app.interp.eval("focus") == "none"


class TestErrorsInCallbacks:
    def test_command_error_recorded_in_error_info(self, app, server):
        app.interp.eval("button .b -text x -command {error exploded}")
        app.interp.eval("pack append . .b {top}")
        app.update()
        window = app.window(".b")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 2, root_y + 2)
        server.press_button(1)
        server.release_button(1)
        with pytest.raises(TclError, match="exploded"):
            app.update()
        assert "exploded" in app.interp.get_global_var("errorInfo")
        app.update()   # the queue keeps working afterwards

    def test_catch_in_command_contains_error(self, app):
        app.interp.eval("button .b -text x "
                        "-command {catch {error handled} msg}")
        app.window(".b").widget.invoke()
        assert app.interp.eval("set msg") == "handled"

    def test_bad_color_in_configure_is_tcl_error(self, app):
        app.interp.eval("button .b -text x")
        app.interp.eval(".b configure -bg DoesNotExist")
        app.interp.eval("pack append . .b {top}")
        with pytest.raises(TclError, match="unknown color"):
            app.window(".b").widget.draw()

    def test_bad_font_is_tcl_error_at_creation(self, app):
        with pytest.raises(TclError, match="font"):
            app.interp.eval("button .b -text x -font {  }")


class TestDyingApplications:
    def test_send_to_destroyed_app_fails_cleanly(self, server, app):
        peer = TkApp(server, name="shortlived")
        peer.interp.stdout = io.StringIO()
        peer.destroy()
        with pytest.raises(TclError, match="no registered interpreter"):
            app.interp.eval("send shortlived set x 1")

    def test_registry_consistent_after_crash_like_exit(self, server,
                                                       app):
        peer = TkApp(server, name="crashy")
        peer.destroy()
        survivors = app.sender.application_names()
        assert "crashy" not in survivors
        assert "victim" in survivors

    def test_selection_owner_app_dies(self, server, app):
        owner = TkApp(server, name="owner")
        owner.interp.stdout = io.StringIO()
        owner.interp.eval("listbox .l")
        owner.interp.eval("pack append . .l {top}")
        owner.update()
        owner.interp.eval(".l insert end hello")
        owner.interp.eval(".l select from 0")
        assert app.interp.eval("selection get") == "hello"
        owner.destroy()
        pump_all(server)
        with pytest.raises(TclError):
            app.interp.eval("selection get")

    def test_pump_all_survives_app_destruction(self, server, app):
        peer = TkApp(server, name="transient")
        peer.interp.stdout = io.StringIO()
        peer.dispatcher.after(0, peer.destroy)
        pump_all(server)
        assert peer.destroyed
        assert not app.destroyed


class TestServerEdgeCases:
    def test_operations_on_destroyed_x_window(self, server):
        from repro.x11 import Display
        display = Display(server)
        window = display.create_window(display.root, 0, 0, 10, 10)
        display.destroy_window(window)
        with pytest.raises(XProtocolError):
            display.map_window(window)
        with pytest.raises(XProtocolError):
            display.change_property(window, 1, 1, "x")

    def test_pointer_over_destroyed_window(self, server):
        from repro.x11 import Display
        display = Display(server)
        window = display.create_window(display.root, 0, 0, 50, 50)
        display.map_window(window)
        server.warp_pointer(10, 10)
        display.destroy_window(window)
        server.warp_pointer(12, 12)   # must not crash
        server.press_button(1)

    def test_double_destroy_is_harmless(self, app):
        app.interp.eval("frame .f")
        window = app.window(".f")
        window.destroy()
        window.destroy()

    def test_update_during_update_guard(self, app):
        """An update triggered from inside a callback terminates."""
        app.interp.eval("button .b -text x -command {update}")
        app.interp.eval("pack append . .b {top}")
        app.update()
        app.window(".b").widget.invoke()


class TestInterpreterRobustness:
    def test_deleting_command_mid_script(self, app):
        app.interp.eval("proc once {} {rename once {}\nreturn ran}")
        assert app.interp.eval("once") == "ran"
        with pytest.raises(TclError):
            app.interp.eval("once")

    def test_redefining_widget_command_breaks_gracefully(self, app):
        app.interp.eval("button .b -text x")
        app.interp.eval("proc .b args {return hijacked}")
        assert app.interp.eval(".b anything") == "hijacked"

    def test_bgerror_style_recovery(self, app, server):
        """After a binding error, subsequent events still work."""
        app.interp.eval("frame .f -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f a {error bad}")
        app.interp.eval("bind .f b {set good 1}")
        with pytest.raises(TclError):
            server.press_key("a", window_id=app.window(".f").id)
            app.update()
        server.press_key("b", window_id=app.window(".f").id)
        app.update()
        assert app.interp.eval("set good") == "1"


class TestPartialCreation:
    def test_failed_creation_leaves_no_window(self, app):
        with pytest.raises(TclError):
            app.interp.eval("button .b -text x -font {  }")
        assert app.interp.eval("winfo exists .b") == "0"

    def test_name_reusable_after_failed_creation(self, app):
        with pytest.raises(TclError):
            app.interp.eval("button .b -text x -font {  }")
        app.interp.eval("button .b -text recovered")
        assert app.interp.eval(".b cget -text") == "recovered"


class TestBackgroundErrors:
    def test_bgerror_catches_binding_errors(self, app, server):
        """With bgerror defined (as in wish), a broken binding reports
        instead of killing the event loop."""
        app.interp.eval("proc bgerror {msg} {global reported\n"
                        "set reported $msg}")
        app.interp.eval("frame .f -geometry 30x30")
        app.interp.eval("pack append . .f {top}")
        app.update()
        app.interp.eval("bind .f a {error kaboom}")
        server.press_key("a", window_id=app.window(".f").id)
        app.update()          # must NOT raise
        assert app.interp.eval("set reported") == "kaboom"

    def test_bgerror_catches_timer_errors(self, app):
        app.interp.eval("proc bgerror {msg} {global reported\n"
                        "set reported $msg}")
        app.interp.eval("after 10 {error late-boom}")
        app.server.time_ms += 20
        app.update()
        assert app.interp.eval("set reported") == "late-boom"

    def test_broken_bgerror_does_not_cascade(self, app):
        app.interp.eval("proc bgerror {msg} {error worse}")
        app.interp.eval("after 10 {error original}")
        app.server.time_ms += 20
        app.update()          # swallowed; the loop survives

    def test_without_bgerror_errors_propagate(self, app):
        from repro.tcl import TclError
        import pytest
        app.interp.eval("after 10 {error raw}")
        app.server.time_ms += 20
        with pytest.raises(TclError, match="raw"):
            app.update()
