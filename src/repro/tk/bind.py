"""Event bindings (paper section 3.2 and Figure 7).

The ``bind`` command arranges for Tcl commands to be executed when X
events — or *sequences* of X events — occur in a window::

    bind .x <Enter>            {print "hi\\n"}
    bind .x a                  {print "you typed 'a'\\n"}
    bind .x <Escape>q          {print "you typed escape-q\\n"}
    bind .x <Double-Button-1>  {print "mouse at %x %y\\n"}

Before executing the command Tk replaces ``%`` sequences with fields
from the event (``%x``/``%y`` above).

This module implements the event-pattern language (modifiers,
Double/Triple counts, multi-event sequences), the per-window event
history used to match sequences, the specificity rules that pick one
binding when several match, and the ``%`` substitution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..tcl.errors import TclError
from ..tcl.lists import quote_element
from ..x11 import events as ev
from ..x11.keysyms import is_keysym

#: Double/Triple clicks must fall within this many milliseconds/pixels.
DOUBLE_TIME_MS = 500
DOUBLE_SPACE_PX = 20

#: Maximum events remembered for sequence matching.
_HISTORY = 12

_EVENT_TYPES = {
    "KeyPress": ev.KEY_PRESS, "Key": ev.KEY_PRESS,
    "KeyRelease": ev.KEY_RELEASE,
    "ButtonPress": ev.BUTTON_PRESS, "Button": ev.BUTTON_PRESS,
    "ButtonRelease": ev.BUTTON_RELEASE,
    "Motion": ev.MOTION_NOTIFY,
    "Enter": ev.ENTER_NOTIFY, "Leave": ev.LEAVE_NOTIFY,
    "FocusIn": ev.FOCUS_IN, "FocusOut": ev.FOCUS_OUT,
    "Expose": ev.EXPOSE,
    "Destroy": ev.DESTROY_NOTIFY,
    "Unmap": ev.UNMAP_NOTIFY, "Map": ev.MAP_NOTIFY,
    "Configure": ev.CONFIGURE_NOTIFY,
    "Property": ev.PROPERTY_NOTIFY,
}

_MODIFIERS = {
    "Control": ev.CONTROL_MASK,
    "Shift": ev.SHIFT_MASK,
    "Lock": ev.LOCK_MASK,
    "Meta": ev.MOD1_MASK, "M": ev.MOD1_MASK, "Alt": ev.MOD1_MASK,
    "B1": ev.BUTTON1_MASK, "Button1": ev.BUTTON1_MASK,
    "B2": ev.BUTTON2_MASK, "Button2": ev.BUTTON2_MASK,
    "B3": ev.BUTTON3_MASK, "Button3": ev.BUTTON3_MASK,
}

#: Extra event mask each event type requires the window to select.
_SELECT_MASKS = {
    ev.KEY_PRESS: ev.KEY_PRESS_MASK,
    ev.KEY_RELEASE: ev.KEY_RELEASE_MASK,
    ev.BUTTON_PRESS: ev.BUTTON_PRESS_MASK,
    ev.BUTTON_RELEASE: ev.BUTTON_RELEASE_MASK,
    ev.MOTION_NOTIFY: ev.POINTER_MOTION_MASK,
    ev.ENTER_NOTIFY: ev.ENTER_WINDOW_MASK,
    ev.LEAVE_NOTIFY: ev.LEAVE_WINDOW_MASK,
    ev.FOCUS_IN: ev.FOCUS_CHANGE_MASK,
    ev.FOCUS_OUT: ev.FOCUS_CHANGE_MASK,
    ev.EXPOSE: ev.EXPOSURE_MASK,
    ev.DESTROY_NOTIFY: ev.STRUCTURE_NOTIFY_MASK,
    ev.UNMAP_NOTIFY: ev.STRUCTURE_NOTIFY_MASK,
    ev.MAP_NOTIFY: ev.STRUCTURE_NOTIFY_MASK,
    ev.CONFIGURE_NOTIFY: ev.STRUCTURE_NOTIFY_MASK,
    ev.PROPERTY_NOTIFY: ev.PROPERTY_CHANGE_MASK,
}


@dataclass(frozen=True)
class EventPattern:
    """One element of a binding sequence."""

    event_type: int
    detail: str = ""          # keysym, or button number as a string
    modifiers: int = 0
    count: int = 1            # 2 for Double-, 3 for Triple-
    any_modifiers: bool = False

    def matches(self, event) -> bool:
        if event.type != self.event_type:
            return False
        if self.detail:
            if self.event_type in (ev.KEY_PRESS, ev.KEY_RELEASE):
                if event.keysym != self.detail:
                    return False
            elif self.event_type in (ev.BUTTON_PRESS, ev.BUTTON_RELEASE):
                if str(event.button) != self.detail:
                    return False
        if not self.any_modifiers and (self.modifiers & ~event.state):
            return False
        return True

    @property
    def specificity(self) -> tuple:
        return (self.count, 1 if self.detail else 0,
                bin(self.modifiers).count("1"))


def parse_sequence(sequence: str) -> Tuple[EventPattern, ...]:
    """Parse a binding sequence like ``<Escape>q``."""
    patterns: List[EventPattern] = []
    position = 0
    end = len(sequence)
    while position < end:
        ch = sequence[position]
        if ch in " \t":
            position += 1
            continue
        if ch == "<":
            close = sequence.find(">", position)
            if close < 0:
                raise TclError(
                    'missing ">" in binding "%s"' % sequence)
            patterns.append(_parse_angle(sequence[position + 1:close],
                                         sequence))
            position = close + 1
        else:
            patterns.append(EventPattern(ev.KEY_PRESS, detail=ch))
            position += 1
    if not patterns:
        raise TclError('no events specified in binding "%s"' % sequence)
    return tuple(patterns)


def _parse_angle(body: str, sequence: str) -> EventPattern:
    tokens = [token for token in body.split("-") if token]
    if not tokens:
        raise TclError('no event type in binding "%s"' % sequence)
    modifiers = 0
    count = 1
    any_modifiers = False
    event_type: Optional[int] = None
    detail = ""
    for token in tokens:
        if token in _MODIFIERS:
            modifiers |= _MODIFIERS[token]
        elif token == "Double":
            count = 2
        elif token == "Triple":
            count = 3
        elif token == "Any":
            any_modifiers = True
        elif token in _EVENT_TYPES:
            if event_type is not None:
                raise TclError(
                    'extra event type "%s" in binding "%s"'
                    % (token, sequence))
            event_type = _EVENT_TYPES[token]
        elif event_type is not None or detail:
            if detail:
                raise TclError(
                    'extra detail "%s" in binding "%s"' % (token, sequence))
            detail = token
        else:
            detail = token
    if event_type is None:
        if detail.isdigit():
            event_type = ev.BUTTON_PRESS
        elif detail and is_keysym(detail):
            event_type = ev.KEY_PRESS
        else:
            raise TclError(
                'bad event type or keysym "%s" in binding "%s"'
                % (detail or body, sequence))
    if detail and event_type in (ev.KEY_PRESS, ev.KEY_RELEASE) and \
            not is_keysym(detail):
        raise TclError('bad keysym "%s" in binding "%s"' % (detail,
                                                            sequence))
    return EventPattern(event_type, detail, modifiers, count,
                        any_modifiers)


@dataclass
class _Binding:
    sequence_text: str
    patterns: Tuple[EventPattern, ...]
    script: str
    #: Compiled form of ``script``, prepared at bind time when the
    #: script contains no % sequences (so the text to evaluate is the
    #: same for every event).  Rebinding replaces the whole _Binding,
    #: which invalidates this automatically.
    compiled: object = None

    @property
    def specificity(self) -> tuple:
        return (len(self.patterns) + self.patterns[-1].count - 1,
                self.patterns[-1].specificity)


class BindingTable:
    """All Tcl bindings of one application, indexed by tag.

    A tag is normally a window path name; widget class names (e.g.
    ``Button``) are also accepted so that default behaviours can be
    expressed in Tcl.
    """

    def __init__(self, interp):
        self.interp = interp
        self._bindings: Dict[str, Dict[str, _Binding]] = {}
        self._history: Dict[str, deque] = {}

    # -- binding management -------------------------------------------

    def bind(self, tag: str, sequence: str, script: str) -> None:
        patterns = parse_sequence(sequence)
        if not script:
            self.unbind(tag, sequence)
            return
        for pattern in patterns[:-1]:
            if pattern.event_type not in (ev.KEY_PRESS, ev.BUTTON_PRESS):
                raise TclError(
                    "only key and button presses may appear before the "
                    'last event of a binding: "%s"' % sequence)
        binding = _Binding(sequence, patterns, script)
        if "%" not in script:
            # Event handlers are the hottest re-evaluated scripts in a
            # running UI (paper section 3.2): compile them once here
            # rather than per dispatched event.  Scripts with %
            # sequences change text per event and go through
            # substitute_percents (and the interpreter's compile
            # cache) instead.
            binding.compiled = self.interp.compile(script)
        table = self._bindings.setdefault(tag, {})
        table[sequence] = binding

    def unbind(self, tag: str, sequence: str) -> None:
        table = self._bindings.get(tag)
        if table is not None:
            table.pop(sequence, None)

    def binding(self, tag: str, sequence: str) -> Optional[str]:
        table = self._bindings.get(tag, {})
        entry = table.get(sequence)
        return entry.script if entry is not None else None

    def sequences(self, tag: str) -> List[str]:
        return sorted(self._bindings.get(tag, {}))

    def drop_tag(self, tag: str) -> None:
        """Forget everything about a destroyed window."""
        self._bindings.pop(tag, None)
        self._history.pop(tag, None)

    def select_mask(self, tags: List[str]) -> int:
        """The X event mask a window must select for its bindings."""
        mask = 0
        for tag in tags:
            for binding in self._bindings.get(tag, {}).values():
                for pattern in binding.patterns:
                    mask |= _SELECT_MASKS.get(pattern.event_type, 0)
        return mask

    # -- event dispatch ---------------------------------------------------

    def dispatch(self, window, event) -> bool:
        """Run the best matching binding for ``event`` on ``window``.

        Candidates come from three tags — the window's path name, its
        widget class, and "all".  The most *specific* match wins
        (sequence length, detail, modifiers); between equally specific
        bindings, the more local tag wins (window over class over all).
        Returns True if a binding fired.
        """
        history = self._remember(window.path, event)
        best = None
        best_key = None
        for rank, tag in enumerate((window.path, window.class_name,
                                    "all")):
            binding = self._best_match(tag, event, history)
            if binding is None:
                continue
            key = (binding.specificity, -rank)
            if best_key is None or key > best_key:
                best, best_key = binding, key
        if best is None:
            return False
        if self.interp._trace_on:
            tracer = self.interp._tracer
            span = tracer.begin("binding", best.sequence_text, window.path)
            try:
                self._fire(best, window, event)
            finally:
                tracer.finish(span)
        else:
            self._fire(best, window, event)
        return True

    def _fire(self, binding: "_Binding", window, event) -> None:
        if binding.compiled is not None:
            self.interp.eval_background(binding.compiled)
        else:
            script = substitute_percents(binding.script, event, window)
            self.interp.eval_background(script)

    def _remember(self, path: str, event) -> deque:
        history = self._history.setdefault(path, deque(maxlen=_HISTORY))
        if event.type in (ev.KEY_PRESS, ev.BUTTON_PRESS):
            history.append(event)
        return history

    def _best_match(self, tag: str, event, history) -> Optional[_Binding]:
        best: Optional[_Binding] = None
        for binding in self._bindings.get(tag, {}).values():
            if not self._sequence_matches(binding, event, history):
                continue
            if best is None or binding.specificity > best.specificity:
                best = binding
        return best

    def _sequence_matches(self, binding: _Binding, event,
                          history) -> bool:
        patterns = binding.patterns
        last = patterns[-1]
        if not last.matches(event):
            return False
        if len(patterns) == 1 and last.count == 1:
            return True
        # Multi-event sequences and Double/Triple need the history
        # (which already ends with the current event if it is a press).
        events = list(history)
        if not events or events[-1] is not event:
            return False
        position = len(events) - 1
        for pattern in reversed(patterns):
            for repeat in range(pattern.count):
                if position < 0:
                    return False
                candidate = events[position]
                if not pattern.matches(candidate):
                    return False
                if repeat + 1 < pattern.count:
                    previous = events[position - 1] if position > 0 \
                        else None
                    if previous is None or \
                            not _close_in_time(previous, candidate):
                        return False
                position -= 1
        return True


def _close_in_time(earlier, later) -> bool:
    if later.time - earlier.time > DOUBLE_TIME_MS:
        return False
    return (abs(later.x_root - earlier.x_root) <= DOUBLE_SPACE_PX and
            abs(later.y_root - earlier.y_root) <= DOUBLE_SPACE_PX)


def substitute_percents(script: str, event, window) -> str:
    """Replace % sequences in a binding script with event fields."""
    out: List[str] = []
    i = 0
    end = len(script)
    while i < end:
        ch = script[i]
        if ch != "%" or i + 1 >= end:
            out.append(ch)
            i += 1
            continue
        code = script[i + 1]
        i += 2
        out.append(_percent_field(code, event, window))
    return "".join(out)


def _percent_field(code: str, event, window) -> str:
    if code == "%":
        return "%"
    if code == "x":
        return str(event.x)
    if code == "y":
        return str(event.y)
    if code == "X":
        return str(event.x_root)
    if code == "Y":
        return str(event.y_root)
    if code == "b":
        return str(event.button)
    if code == "k":
        return str(ord(event.keychar)) if event.keychar else "0"
    if code == "K":
        return event.keysym or "??"
    if code == "A":
        return quote_element(event.keychar) if event.keychar else "{}"
    if code == "W":
        return window.path
    if code == "w":
        return str(event.width)
    if code == "h":
        return str(event.height)
    if code == "t":
        return str(event.time)
    if code == "s":
        return str(event.state)
    if code == "T":
        return str(event.type)
    if code == "#":
        return str(event.serial)
    if code == "E":
        return "1" if event.send_event else "0"
    # Unknown % sequences are passed through untouched, as Tk does.
    return "%" + code
