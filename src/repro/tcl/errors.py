"""Result codes and exceptions for the Tcl interpreter.

Tcl commands complete with one of five codes (paper section 2; the codes
match the historical C implementation).  In this Python implementation the
non-OK codes are modelled as exceptions so that command procedures written
in Python can simply raise them; control-flow commands such as ``for`` and
``while`` catch ``TclBreak``/``TclContinue``, and procedure invocation
catches ``TclReturn``.
"""

from __future__ import annotations

TCL_OK = 0
TCL_ERROR = 1
TCL_RETURN = 2
TCL_BREAK = 3
TCL_CONTINUE = 4


class TclError(Exception):
    """An error raised while parsing or executing a Tcl command.

    The ``message`` becomes the interpreter result; the interpreter
    accumulates a human-readable stack trace in its ``errorInfo``
    variable as the error propagates (mirroring Tcl's errorInfo).
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class TclParseError(TclError):
    """A syntax error detected while parsing a command or expression."""


class _FlowControl(Exception):
    """Base class for Tcl's non-error, non-OK completion codes."""

    code = TCL_OK


class TclReturn(_FlowControl):
    """Raised by the ``return`` command; caught at procedure boundaries."""

    code = TCL_RETURN

    def __init__(self, value: str = ""):
        super().__init__(value)
        self.value = value


class TclBreak(_FlowControl):
    """Raised by ``break``; caught by the innermost loop command."""

    code = TCL_BREAK


class TclContinue(_FlowControl):
    """Raised by ``continue``; caught by the innermost loop command."""

    code = TCL_CONTINUE
