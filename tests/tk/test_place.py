"""Tests for the placer — the second geometry manager (section 3.4's
"variety of geometry managers" point)."""

import pytest

from repro.tcl import TclError


@pytest.fixture
def sized(app):
    app.interp.eval("wm geometry . 200x100")
    app.update()
    return app


class TestPlacement:
    def test_absolute_position(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -x 30 -y 40")
        sized.update()
        window = sized.window(".f")
        assert (window.x, window.y) == (30, 40)
        assert window.mapped

    def test_relative_position(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -relx 0.5 -rely 0.5")
        sized.update()
        window = sized.window(".f")
        assert (window.x, window.y) == (100, 50)

    def test_center_anchor(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -relx 0.5 -rely 0.5 -anchor center")
        sized.update()
        window = sized.window(".f")
        assert (window.x, window.y) == (90, 45)

    def test_relwidth_full(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -x 0 -y 0 -relwidth 1.0 -height 30")
        sized.update()
        window = sized.window(".f")
        assert window.width == 200
        assert window.height == 30

    def test_mixed_offsets(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -relx 0.25 -x 5 -y 0")
        sized.update()
        assert sized.window(".f").x == 55

    def test_bad_anchor_is_error(self, sized):
        sized.interp.eval("frame .f")
        with pytest.raises(TclError, match="bad anchor"):
            sized.interp.eval("place .f -anchor diagonal")

    def test_bad_float_is_error(self, sized):
        sized.interp.eval("frame .f")
        with pytest.raises(TclError, match="floating-point"):
            sized.interp.eval("place .f -relx wide")


class TestTracking:
    def test_follows_parent_resize(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -relx 0.5 -rely 0.5")
        sized.update()
        sized.interp.eval("wm geometry . 400x200")
        sized.update()
        window = sized.window(".f")
        assert (window.x, window.y) == (200, 100)

    def test_place_forget_unmaps(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -x 0 -y 0")
        sized.update()
        sized.interp.eval("place forget .f")
        assert not sized.window(".f").mapped

    def test_place_info(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -x 3 -rely 0.5")
        info = sized.interp.eval("place info .f")
        assert "-x 3" in info
        assert "-rely 0.5" in info

    def test_winfo_manager_reports_place(self, sized):
        sized.interp.eval("frame .f")
        sized.interp.eval("place .f -x 0 -y 0")
        assert sized.interp.eval("winfo manager .f") == "place"


class TestManagerInterplay:
    def test_place_displaces_pack(self, sized):
        """Only one geometry manager manages a window at a time."""
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("pack append . .f {top}")
        sized.update()
        sized.interp.eval("place .f -x 77 -y 0")
        sized.update()
        assert sized.window(".f").x == 77
        assert sized.interp.eval("winfo manager .f") == "place"
        # And the packer no longer lists it.
        assert ".f" not in sized.interp.eval("pack info .")

    def test_pack_displaces_place(self, sized):
        sized.interp.eval("frame .f -geometry 20x10")
        sized.interp.eval("place .f -x 77 -y 0")
        sized.update()
        sized.interp.eval("pack append . .f {top}")
        sized.update()
        assert sized.interp.eval("winfo manager .f") == "pack"
        assert sized.interp.eval("place info .f") == ""

    def test_siblings_under_different_managers(self, sized):
        sized.interp.eval("frame .packed -geometry 50x20")
        sized.interp.eval("frame .placed -geometry 20x20")
        sized.interp.eval("pack append . .packed {top}")
        sized.interp.eval("place .placed -x 150 -y 70")
        sized.update()
        assert sized.interp.eval("winfo manager .packed") == "pack"
        assert sized.interp.eval("winfo manager .placed") == "place"
        assert sized.window(".placed").x == 150
