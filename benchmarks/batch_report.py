"""Output-buffering traffic report and gate.

Measures the request traffic of the standard widget-redraw workload —
a toplevel full of packed widgets put through rounds of resize churn
and text changes, the pattern behind the paper's §3.3 traffic argument
— with the Xlib-style output buffer on and off.  The headline number
is **requests delivered** to the server (batch wrapper ticks excluded):
buffering must cut it by at least ``GATE_PCT`` percent, or the
coalescer has regressed.

The workload is deterministic (virtual clock, no wall time), so the
counts are exact and the gate is immune to machine variance.  Results
go to ``BENCH_batch.json``.

Usage::

    PYTHONPATH=src python benchmarks/batch_report.py           # regenerate
    PYTHONPATH=src python benchmarks/batch_report.py --check   # CI gate
"""

import io
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.tk import TkApp  # noqa: E402
from repro.x11 import XServer  # noqa: E402

BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_batch.json")

#: The gate: minimum percent reduction in requests delivered to the
#: server with buffering on vs. off, on the widget-redraw workload.
GATE_PCT = 30.0

#: widget classes exercised by the redraw workload
WIDGETS = ("button", "label", "entry", "checkbutton", "scrollbar",
           "message")

#: rounds of geometry churn + text changes
ROUNDS = 12


def _run_workload(buffering_enabled: bool) -> dict:
    """Request counts for one full create + churn + redraw workload."""
    server = XServer()
    app = TkApp(server, name="bench",
                buffering_enabled=buffering_enabled)
    app.interp.stdout = io.StringIO()
    metrics = server.obs.metrics

    for index, widget_class in enumerate(WIDGETS):
        app.interp.eval("%s .w%d" % (widget_class, index))
        app.interp.eval("pack append . .w%d {top frame center fillx}"
                        % index)
    app.update()

    def delivered():
        return (metrics.total("x11.requests") -
                metrics.value("x11.requests", type="batch"))

    base = delivered()
    # Churn rounds arrive faster than the event loop runs them down —
    # the realistic bursty case output buffering exists for.  The
    # packer reconfigures every child synchronously on each resize, so
    # each round queues a configure per window; only the final merged
    # geometry needs to reach the server.
    for round_index in range(ROUNDS):
        app.interp.eval("wm geometry . %dx%d"
                        % (220 + 4 * round_index, 260 + 4 * round_index))
        for index, widget_class in enumerate(WIDGETS):
            if widget_class in ("button", "label", "message",
                                "checkbutton"):
                app.interp.eval(".w%d configure -text {round %d}"
                                % (index, round_index))
    app.update()

    return {
        "requests_delivered": delivered() - base,
        "batches": metrics.value("x11.batches"),
        "requests_coalesced": metrics.value("x11.requests_coalesced"),
        "round_trips": metrics.value("x11.round_trips"),
        "configure_window": metrics.value("x11.requests",
                                          type="configure_window"),
        "clear_window": metrics.value("x11.requests",
                                      type="clear_window"),
    }


#: generous wall-clock bound (ms) on the socket transport's p99 RTT;
#: the workload's round trips cross a local socketpair, so anything
#: slower than this means the host loop is stalling, not the machine.
WALL_RTT_P99_MS = 250.0

#: wall-clock percentiles reported for each transport
WALL_PERCENTILES = (0.50, 0.95, 0.99)


def _percentile(samples, quantile):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, int(round(quantile * (len(ordered) - 1)))))
    return ordered[index]


def _run_wire_workload(kind: str) -> dict:
    """Bytes and round-trip latency of the workload over one transport.

    The virtual-clock RTT histogram and the byte counters land in the
    server registry and must be transport-invariant; wall-clock RTT
    samples live only in the transport (never in a registry — fleet
    runs must stay bit-identical) and are reported per transport.
    """
    import time

    from repro.x11.transport import resolve_transport, shutdown_host

    server = XServer()
    samples = []

    def factory(srv):
        transport = resolve_transport(srv, kind)
        samples.append(transport.enable_wall_rtt(time.perf_counter_ns))
        return transport

    try:
        app = TkApp(server, name="bench", buffering_enabled=True,
                    transport=factory)
        app.interp.stdout = io.StringIO()
        for index, widget_class in enumerate(WIDGETS):
            app.interp.eval("%s .w%d" % (widget_class, index))
            app.interp.eval("pack append . .w%d {top frame center fillx}"
                            % index)
        app.update()
        for round_index in range(ROUNDS):
            app.interp.eval("wm geometry . %dx%d"
                            % (220 + 4 * round_index,
                               260 + 4 * round_index))
            for index, widget_class in enumerate(WIDGETS):
                if widget_class in ("button", "label", "message",
                                    "checkbutton"):
                    app.interp.eval(".w%d configure -text {round %d}"
                                    % (index, round_index))
        app.update()

        metrics = server.obs.metrics
        number = app.display.client.number
        rtt = metrics.histogram("x11.wire.rtt_ms", client=number,
                                transport=kind)
        wall_ms = [ns / 1e6 for ns in samples[0]]
        return {
            "transport": kind,
            "bytes_out": metrics.value("x11.wire.bytes_out",
                                       client=str(number),
                                       transport=kind),
            "bytes_in": metrics.value("x11.wire.bytes_in",
                                      client=str(number),
                                      transport=kind),
            "round_trips": rtt.value,
            "rtt_virtual_ms": {
                "p50": rtt.percentile(0.50),
                "p95": rtt.percentile(0.95),
                "p99": rtt.percentile(0.99),
            },
            "rtt_wall_ms": {
                "p%d" % int(q * 100):
                    round(_percentile(wall_ms, q), 4)
                    if wall_ms else None
                for q in WALL_PERCENTILES
            },
        }
    finally:
        shutdown_host(server)


def run_report() -> dict:
    buffered = _run_workload(True)
    synchronous = _run_workload(False)
    on, off = buffered["requests_delivered"], \
        synchronous["requests_delivered"]
    reduction = (off - on) / off * 100.0 if off else 0.0
    wire = {kind: _run_wire_workload(kind)
            for kind in ("loopback", "socket")}
    report = {
        "workload": {
            "widgets": list(WIDGETS),
            "rounds": ROUNDS,
        },
        "buffering_on": buffered,
        "buffering_off": synchronous,
        "reduction_pct": round(reduction, 2),
        "gate_pct": GATE_PCT,
        "wire": wire,
    }
    print("widget-redraw workload (%d widgets, %d churn rounds)"
          % (len(WIDGETS), ROUNDS))
    print("  requests delivered: %5d buffered  %5d synchronous  "
          "(-%.1f%%)" % (on, off, reduction))
    print("  batches: %d   coalesced away: %d   round trips: %d/%d"
          % (buffered["batches"], buffered["requests_coalesced"],
             buffered["round_trips"], synchronous["round_trips"]))
    for kind, stats in wire.items():
        print("  wire[%s]: %d bytes out, %d bytes in, %d round trips, "
              "wall RTT p50/p95/p99 = %s/%s/%s ms"
              % (kind, stats["bytes_out"], stats["bytes_in"],
                 stats["round_trips"], stats["rtt_wall_ms"]["p50"],
                 stats["rtt_wall_ms"]["p95"],
                 stats["rtt_wall_ms"]["p99"]))
    return report


def check(report: dict) -> int:
    reduction = report["reduction_pct"]
    if reduction < GATE_PCT:
        print("FAIL: buffering cut requests delivered by only %.1f%% "
              "(gate: >=%.0f%%)" % (reduction, GATE_PCT))
        return 1
    if report["buffering_on"]["round_trips"] != \
            report["buffering_off"]["round_trips"]:
        print("FAIL: buffering changed the round-trip count (%d vs %d)"
              % (report["buffering_on"]["round_trips"],
                 report["buffering_off"]["round_trips"]))
        return 1
    loop, sock = report["wire"]["loopback"], report["wire"]["socket"]
    for field in ("bytes_out", "bytes_in", "round_trips",
                  "rtt_virtual_ms"):
        if loop[field] != sock[field]:
            print("FAIL: wire %s differs across transports "
                  "(loopback %s vs socket %s)"
                  % (field, loop[field], sock[field]))
            return 1
    for kind, stats in report["wire"].items():
        if any(stats["rtt_wall_ms"][key] is None
               for key in ("p50", "p95", "p99")):
            print("FAIL: no wall RTT samples for %s transport" % kind)
            return 1
    if sock["rtt_wall_ms"]["p99"] > WALL_RTT_P99_MS:
        print("FAIL: socket wall RTT p99 %.2f ms exceeds %.0f ms"
              % (sock["rtt_wall_ms"]["p99"], WALL_RTT_P99_MS))
        return 1
    print("OK: buffering cut requests delivered by %.1f%% "
          "(gate: >=%.0f%%), round trips unchanged" % (reduction, GATE_PCT))
    print("OK: wire bytes and virtual RTT transport-invariant "
          "(%d out / %d in, %d round trips); socket wall p99 %.2f ms"
          % (sock["bytes_out"], sock["bytes_in"], sock["round_trips"],
             sock["rtt_wall_ms"]["p99"]))
    return 0


def main(argv) -> int:
    checking = "--check" in argv
    report = run_report()
    if checking:
        return check(report)
    with open(BENCH_FILE, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % BENCH_FILE)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
