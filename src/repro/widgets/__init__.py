"""repro.widgets — the Tk widget set (paper sections 4 and 7).

The widgets the paper reports complete (panes/frames, labels, buttons,
check buttons, radio buttons, messages, listboxes, scrollbars, scales)
plus the two it promises (entries and menus).

For each widget type there is one Tcl *creation command* named after
the type; creating a widget also creates a *widget command* named after
its window path (section 4)::

    button .hello -bg Red -text "Hello, world" -command "print Hello!"
    .hello flash
    .hello configure -bg PalePink1 -relief sunken
"""

from __future__ import annotations

from ..tk.widget import creation_command
from .buttons import Button, Checkbutton, Label, Radiobutton
from .canvas import Canvas
from .entry import Entry
from .frame import Frame
from .listbox import Listbox
from .menu import Menu, Menubutton
from .message import Message
from .scale import Scale
from .scrollbar import Scrollbar
from .text import Text

#: creation-command name -> widget class
WIDGET_TYPES = {
    "label": Label,
    "button": Button,
    "checkbutton": Checkbutton,
    "radiobutton": Radiobutton,
    "frame": Frame,
    "message": Message,
    "scrollbar": Scrollbar,
    "listbox": Listbox,
    "scale": Scale,
    "entry": Entry,
    "menu": Menu,
    "menubutton": Menubutton,
    "canvas": Canvas,
    "text": Text,
}


def register_widget_commands(app) -> None:
    """Register every widget creation command in the app's interp."""
    for name, widget_class in WIDGET_TYPES.items():
        app.interp.register(name, creation_command(widget_class, name))


__all__ = ["Label", "Button", "Checkbutton", "Radiobutton", "Frame",
           "Message", "Scrollbar", "Listbox", "Scale", "Entry", "Menu",
           "Menubutton", "Canvas", "Text", "WIDGET_TYPES",
           "register_widget_commands"]
