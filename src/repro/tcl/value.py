"""Dual-representation Tcl values (the Tcl_Obj idea).

Tcl's semantics say every value *is* a string (paper section 2), and the
seed interpreter took that literally: ``incr`` re-parsed its operand on
every iteration and ``expr`` re-converted each ``$var`` read.  Tcl 8.0
kept the string semantics but changed the representation: a value
carries its string rep plus at most one cached *internal* rep (integer,
double, list, ...), converted on first use and invalidated on write.

:class:`Value` is that object.  It subclasses ``str`` so every existing
consumer — command procedures, the journal encoder, dict keys — sees an
ordinary string, while the expression evaluator and the list commands
attach their parsed reps to it:

* ``num``      — the numeric rep (int/float), or :data:`_NONNUM` when
  the string is known not to parse as a number;
* ``elements`` — the list rep: a tuple of element strings such that
  ``format_list(elements)`` round-trips.

Because Tcl values are immutable there is no write-invalidation on the
object itself: "shimmering" happens at variable-write boundaries, where
a *new* value (with empty caches) replaces the old one.  The shimmer
test suite (tests/tcl/test_value.py) pins that behavior down.

This module has no repro-internal imports, so ``expr``, ``lists`` and
the bytecode VM can all share it without cycles.
"""

from __future__ import annotations

from typing import Optional, Union

Number = Union[int, float]


class Value(str):
    """A string that may carry cached numeric and list representations."""

    __slots__ = ("num", "elements")


#: Cached "this string is not a number" marker (distinct from "not yet
#: converted", which is an unset attribute).
_NONNUM = object()

#: Sentinel stored in an indexed local-variable slot that has no value
#: (never-assigned formal position, or unset).  Distinct from None so
#: slots need no existence dict.
UNSET = object()


class SlotLink:
    """An upvar/global alias stored *in* a local-variable slot.

    Frames with indexed slots keep their formals out of the name dict;
    when ``upvar``/``global`` aliases a formal, the link lives in the
    slot itself and variable resolution follows it like a ``links``
    dict entry.
    """

    __slots__ = ("frame", "name")

    def __init__(self, frame, name):
        self.frame = frame
        self.name = name


def number_of(text: str) -> Optional[Number]:
    """Parse a Tcl numeric string: int (decimal/0x/0octal) or float.

    Returns None for non-numeric strings, which the expression
    evaluator treats as "compare as a string".  The rules are stricter
    than a bare ``int()``/``float()`` cascade, fixing the coercion bugs
    that surface at comparison boundaries:

    * ``"08"`` is an *invalid octal*, not the float 8.0 — it stays a
      string (classic Tcl rejects it rather than silently reading it
      as decimal or float);
    * surrounding whitespace is fine (``" 1 "`` is 1) but interior
      whitespace is not (``"- 5"`` is not a number);
    * ``"inf"``/``"nan"`` spellings are strings, so they compare
      lexically instead of poisoning numeric comparisons (a float
      *literal* that overflows, e.g. ``1e999``, still yields inf);
    * Python's digit-separator extension (``"1_000"``) is rejected.
    """
    text = text.strip()
    if not text or "_" in text:
        return None
    sign = 1
    body = text
    if body[0] in "+-":
        if body[0] == "-":
            sign = -1
        body = body[1:]
        if not body:
            return None
    first = body[0]
    if not (first.isdigit() or first == "."):
        return None                      # rejects "inf", "nan", "e5"...
    if body != body.strip():
        return None                      # rejects "- 5", "+ 1"
    if first == "0" and len(body) > 1:
        lowered = body[:2].lower()
        if lowered == "0x":
            try:
                return sign * int(body[2:], 16)
            except ValueError:
                return None
        if body.isdigit():
            try:
                return sign * int(body, 8)
            except ValueError:
                return None              # "08": invalid octal, not 8.0
    if body.isdigit():
        try:
            return sign * int(body)
        except ValueError:
            return None                  # unicode digits int() rejects
    try:
        return float(text)
    except ValueError:
        return None


def cached_number(value) -> Optional[Number]:
    """Numeric rep of any operand, converting (and caching) on demand."""
    cls = type(value)
    if cls is int or cls is float:
        return value
    if cls is Value:
        try:
            num = value.num
        except AttributeError:
            num = number_of(value)
            value.num = num if num is not None else _NONNUM
            return num
        return None if num is _NONNUM else num
    if cls is bool:
        return int(value)
    return number_of(value)


def format_number(value: Number) -> str:
    """Format a numeric value the way Tcl prints it."""
    if type(value) is bool:
        return "1" if value else "0"
    if type(value) is int:
        return str(value)
    text = "%.12g" % value
    if "." not in text and "e" not in text and "n" not in text and \
            "i" not in text:
        text += ".0"
    return text


def to_str(value) -> str:
    """The string rep of a stack value, carrying its numeric cache.

    Strings pass through unchanged; numbers become :class:`Value`
    objects whose ``num`` cache holds what *re-parsing the string*
    would give — for floats that is ``float("%.12g")``, so a value
    that round-trips through a variable compares identically whether
    or not the dual rep short-circuited the parse.
    """
    cls = type(value)
    if cls is str or cls is Value:
        return value
    if cls is int:
        out = Value(str(value))
        out.num = value
        return out
    if cls is bool:
        out = Value("1" if value else "0")
        out.num = int(value)
        return out
    text = format_number(value)
    out = Value(text)
    if "n" in text or "i" in text:       # inf/nan do not re-parse
        out.num = _NONNUM
    else:
        out.num = float(text)
    return out


def literal(text: str) -> Value:
    """Wrap a compile-time literal so its first conversion is its last."""
    if type(text) is Value:
        return text
    return Value(text)


def cached_elements(value) -> Optional[tuple]:
    """The cached list rep of a value, or None if absent/not a Value."""
    if type(value) is Value:
        try:
            return value.elements
        except AttributeError:
            return None
    return None


def attach_elements(value, elements) -> None:
    """Attach a list rep to a value (no-op for plain strings)."""
    if type(value) is Value:
        value.elements = tuple(elements)
