"""Tests for the compile-once evaluation pipeline (repro.tcl.compile).

Caching parse results is only sound because Tcl values are immutable
strings (paper section 2); everything *else* — variable values, the
command table, call frames — can change between evaluations of the
same script.  These tests pin down that boundary: substitution
semantics are identical with and without the cache, and every way the
command table can change (proc redefinition, rename, unregister,
unknown-handler definition) takes effect on the very next evaluation.
"""

import io

import pytest

from repro.tcl import Interp, TclError
from repro.tcl.compile import CompiledScript, compile_script


@pytest.fixture
def interp():
    return Interp(stdout=io.StringIO())


@pytest.fixture
def ablated():
    return Interp(stdout=io.StringIO(), compile_enabled=False)


class TestCompiledStructures:
    def test_compile_returns_compiled_script(self, interp):
        compiled = interp.compile("set a 1")
        assert isinstance(compiled, CompiledScript)
        assert interp.eval(compiled) == "1"
        assert interp.eval("set a") == "1"

    def test_compile_disabled_returns_script(self, ablated):
        script = "set a 1"
        assert ablated.compile(script) is script
        assert ablated.eval(script) == "1"

    def test_literal_words_prejoined(self):
        compiled = compile_script("set a hello")
        command = compiled.commands[0]
        assert command.argv == ["set", "a", "hello"]

    def test_compiled_script_reusable_across_interps(self):
        compiled = compile_script("set a 1")
        first, second = Interp(), Interp()
        assert first.eval(compiled) == "1"
        assert second.eval(compiled) == "1"
        assert first.eval("set a") == "1"
        assert second.eval("set a") == "1"

    def test_command_argv_not_corrupted_by_mutating_proc(self, interp):
        def mutator(target, argv):
            argv.append("junk")
            return argv[1]
        interp.register("mutate", mutator)
        compiled = interp.compile("mutate x")
        assert interp.eval(compiled) == "x"
        assert interp.eval(compiled) == "x"


class TestSubstitutionSemanticsUnderCaching:
    """The same script must give the same answer on every evaluation,
    re-reading variables and re-running nested commands each time."""

    def test_variable_reread_each_eval(self, interp):
        compiled = interp.compile("set b $a")
        interp.eval("set a one")
        assert interp.eval(compiled) == "one"
        interp.eval("set a two")
        assert interp.eval(compiled) == "two"

    def test_nested_cmd_inside_quotes(self, interp):
        interp.eval("set x 5")
        compiled = interp.compile('set msg "val=[expr $x*2] end"')
        assert interp.eval(compiled) == "val=10 end"
        interp.eval("set x 7")
        assert interp.eval(compiled) == "val=14 end"

    def test_array_with_computed_index(self, interp):
        interp.eval("set a(1) one; set a(2) two")
        compiled = interp.compile('set i 1; set got $a($i)')
        assert interp.eval(compiled) == "one"
        interp.eval("set i 2")
        assert interp.eval("set got $a($i)") == "two"

    def test_array_index_from_nested_command(self, interp):
        interp.eval("set a(3) three")
        assert interp.eval('set r $a([expr 1+2])') == "three"

    def test_backslash_newline_continuation(self, interp):
        script = "set a \\\n1"
        compiled = interp.compile(script)
        assert interp.eval(compiled) == "1"
        assert interp.eval("set a") == "1"

    def test_uplevel_with_compiled_proc_body(self, interp):
        interp.eval("proc setter {} {uplevel {set x fromproc}}")
        interp.eval("proc caller {} {setter; set x}")
        assert interp.eval("caller") == "fromproc"
        assert interp.eval("caller") == "fromproc"
        assert interp.eval("info exists x") == "0"

    def test_upvar_with_compiled_proc_body(self, interp):
        interp.eval("proc bump {name} {upvar $name v; incr v}")
        interp.eval("set count 10")
        assert interp.eval("bump count") == "11"
        assert interp.eval("bump count") == "12"
        assert interp.eval("set count") == "12"

    def test_proc_body_reentrant(self, interp):
        interp.eval("""
            proc fib {n} {
                if {$n < 2} {return $n}
                expr {[fib [expr $n-1]] + [fib [expr $n-2]]}
            }
        """)
        assert interp.eval("fib 10") == "55"

    def test_error_info_matches_uncompiled(self, interp, ablated):
        for target in (interp, ablated):
            with pytest.raises(TclError):
                target.eval_top("set")
        assert interp.get_global_var("errorInfo") == \
            ablated.get_global_var("errorInfo")


class TestCommandTableInvalidation:
    """rename / proc redefinition / unregister must defeat every cached
    command-procedure memoization immediately."""

    def test_redefine_proc_then_call(self, interp):
        interp.eval("proc greet {} {return old}")
        compiled = interp.compile("greet")
        assert interp.eval(compiled) == "old"
        interp.eval("proc greet {} {return new}")
        assert interp.eval(compiled) == "new"

    def test_rename_then_call(self, interp):
        interp.eval("proc greet {} {return hi}")
        compiled = interp.compile("greet")
        assert interp.eval(compiled) == "hi"
        interp.eval("rename greet hello")
        with pytest.raises(TclError, match="invalid command name"):
            interp.eval(compiled)
        assert interp.eval("hello") == "hi"

    def test_rename_over_builtin_then_call(self, interp):
        compiled = interp.compile("double 4")
        interp.eval("proc double {x} {expr $x*2}")
        assert interp.eval(compiled) == "8"
        interp.eval("rename double {}")         # delete it
        interp.eval("proc double {x} {expr $x+$x+$x}")
        assert interp.eval(compiled) == "12"

    def test_unregister_then_call(self, interp):
        interp.register("transient", lambda target, argv: "yes")
        compiled = interp.compile("transient")
        assert interp.eval(compiled) == "yes"
        interp.unregister("transient")
        with pytest.raises(TclError, match="invalid command name"):
            interp.eval(compiled)

    def test_unknown_fallback_not_memoized(self, interp):
        compiled = interp.compile("later 1 2")
        interp.eval(
            "proc unknown {args} {return unknown-was-called}")
        assert interp.eval(compiled) == "unknown-was-called"
        # Once the real command exists it must win over unknown.
        interp.eval("proc later {a b} {expr $a+$b}")
        assert interp.eval(compiled) == "3"

    def test_specialized_set_sees_trace(self, interp):
        """Argument-specialized fast paths must not bypass variable
        traces (trace hooks interp.set_var at runtime)."""
        compiled = interp.compile("set traced 5")
        assert interp.eval(compiled) == "5"
        interp.eval("proc remember {args} {global log; lappend log $args}")
        interp.eval("trace variable traced w remember")
        assert interp.eval(compiled) == "5"
        assert "traced" in interp.eval("set log")


class TestCompileCacheLRU:
    def test_hot_entries_survive_overflow(self, interp):
        interp._compile_limit = 8
        hot = "set hot 1"
        interp.eval(hot)
        for index in range(50):
            interp.eval("set cold%d %d" % (index, index))
            interp.eval(hot)            # keep the hot script recent
        assert hot in interp._compile_cache
        assert len(interp._compile_cache) <= 8

    def test_cold_entries_evicted_not_cleared(self, interp):
        """Overflow evicts one stale entry, never the whole cache."""
        interp._compile_limit = 8
        for index in range(20):
            interp.eval("set v%d %d" % (index, index))
        assert len(interp._compile_cache) == 8
        # The most recent scripts are still present.
        assert "set v19 19" in interp._compile_cache

    def test_eviction_does_not_break_reuse(self, interp):
        interp._compile_limit = 4
        script = "set survivor ok"
        assert interp.eval(script) == "ok"
        for index in range(10):
            interp.eval("set filler%d x" % index)
        # Evicted, so this is a miss — but still correct.
        assert interp.eval(script) == "ok"

    def test_hit_miss_counters(self, interp):
        interp.eval("set a 1")
        misses = interp.compile_misses
        hits = interp.compile_hits
        interp.eval("set a 1")
        interp.eval("set a 1")
        assert interp.compile_misses == misses
        assert interp.compile_hits == hits + 2

    def test_proc_bodies_skip_global_cache(self, interp):
        interp.eval("proc tick {} {set ticks 1}")
        interp.eval("tick")
        misses = interp.compile_misses
        interp.eval("tick")
        interp.eval("tick")
        # Only the 4-character "tick" script itself hits the cache; the
        # body is compiled once onto the Proc.
        assert interp.compile_misses == misses
        proc = interp.commands["tick"]
        assert proc.compiled is not None

    def test_cmd_count_counts_nested_commands(self, interp):
        before = interp.cmd_count
        interp.eval("set a [expr 1+1]")
        # set, expr — at least two commands.
        assert interp.cmd_count >= before + 2


PARITY_SCRIPTS = [
    "set a 1",
    "set a 1; set b 2",
    'set msg "a[expr 1+1]b"',
    "set a {braced $not [substituted]}",
    'set l [lindex {x y z} 1]',
    "proc f {a {b 5}} {expr $a+$b}; f 2",
    "set i 0; while {$i < 5} {incr i}; set i",
    "for {set j 0} {$j < 3} {incr j} {set k $j}; set k",
    "if {1 < 2} {set r yes} else {set r no}",
    "set s abc; string length $s",
    "catch {undefined-command} msg; set msg",
    "set x 1; set y $x$x$x",
]


class TestEnabledDisabledParity:
    @pytest.mark.parametrize("script", PARITY_SCRIPTS)
    def test_same_result(self, script):
        compiled = Interp(stdout=io.StringIO())
        uncompiled = Interp(stdout=io.StringIO(), compile_enabled=False)
        assert compiled.eval(script) == uncompiled.eval(script)

    def test_same_error_messages(self):
        for script in ("set", "unknown-cmd", "expr {1 +}",
                       "incr novar", "set a $missing"):
            outcomes = []
            for flag in (True, False):
                target = Interp(stdout=io.StringIO(),
                                compile_enabled=flag)
                try:
                    target.eval(script)
                    outcomes.append(None)
                except TclError as error:
                    outcomes.append(error.message)
            assert outcomes[0] == outcomes[1], script
