"""The Tcl interpreter (paper section 2, Figure 6).

The interpreter is a library object that an application embeds.  The
application registers *command procedures*; the interpreter parses
command strings, performs backslash/variable/command substitution, looks
up the command procedure named by the first word, and invokes it.
Application-specific and built-in commands are indistinguishable, may be
created and deleted at any time, and all traffic in string values only.

A command procedure is any Python callable ``proc(interp, argv)`` where
``argv`` is the fully substituted word list (``argv[0]`` is the command
name).  It returns the result string (``None`` means empty result) or
raises :class:`~repro.tcl.errors.TclError`.
"""

from __future__ import annotations

import time as _time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Union

from . import parser
from ..obs import Observability
from .compile import CompiledScript, _append_error_info, compile_script
from .errors import (TclBreak, TclContinue, TclError, TclReturn)
from .lists import format_list, parse_list
from .value import (SlotLink as _SlotLink, UNSET as _UNSET, Value as _Value,
                    to_str as _to_value_str)
from . import vm as _vm

CommandProc = Callable[["Interp", List[str]], Optional[str]]

#: Values stored in a call frame: a scalar string or an array (dict).
VarValue = Union[str, Dict[str, str]]

_MAX_NESTING_DEPTH = 1000
#: Bound on the LRU of compiled scripts.  Overflow evicts only the
#: least recently used entry, so hot scripts (bindings, loop bodies)
#: survive an application that churns through many one-off scripts.
_COMPILE_CACHE_LIMIT = 2048

# Each Tcl nesting level consumes several Python stack frames; make
# sure Python's limit is not hit before Tcl's own _MAX_NESTING_DEPTH
# diagnostic can trigger.
import sys as _sys  # noqa: E402  (deliberate placement with its setting)

if _sys.getrecursionlimit() < 20000:
    _sys.setrecursionlimit(20000)


class CallFrame:
    """One level of the procedure call stack.

    ``variables`` maps names to scalar strings or array dicts.
    ``links`` maps names to ``(frame, name)`` targets created by
    ``global`` and ``upvar``.

    Frames pushed by the bytecode VM additionally carry indexed local
    slots for the procedure's formals: ``slot_map`` maps formal names
    to indexes into ``slots``.  A name lives *either* in ``slot_map``
    or in the dicts, never both, so dict-only frames (``slot_map is
    None``) behave exactly as before.  A slot holds a scalar, an array
    dict, a :class:`~repro.tcl.value.SlotLink` alias, or the UNSET
    sentinel.
    """

    __slots__ = ("variables", "links", "level", "proc_name", "argv",
                 "slots", "slot_map")

    def __init__(self, level: int, proc_name: str = "",
                 argv: Optional[List[str]] = None):
        self.variables: Dict[str, VarValue] = {}
        self.links: Dict[str, tuple] = {}
        self.level = level
        self.proc_name = proc_name
        self.argv = argv or []
        self.slots: Optional[list] = None
        self.slot_map: Optional[Dict[str, int]] = None

    def has_local(self, name: str) -> bool:
        """True if ``name`` is a set local variable (not a link)."""
        slot_map = self.slot_map
        if slot_map is not None:
            ix = slot_map.get(name)
            if ix is not None:
                cell = self.slots[ix]
                return cell is not _UNSET and type(cell) is not _SlotLink
        return name in self.variables

    def has_link(self, name: str) -> bool:
        """True if ``name`` is an upvar/global alias in this frame."""
        slot_map = self.slot_map
        if slot_map is not None:
            ix = slot_map.get(name)
            if ix is not None:
                return type(self.slots[ix]) is _SlotLink
        return name in self.links

    def local_names(self) -> List[str]:
        """Names of set local variables (``info locals``)."""
        names = list(self.variables)
        slot_map = self.slot_map
        if slot_map is not None:
            for name, ix in slot_map.items():
                cell = self.slots[ix]
                if cell is not _UNSET and type(cell) is not _SlotLink:
                    names.append(name)
        return names

    def var_names(self) -> List[str]:
        """Names of set-or-linked variables (``info vars``)."""
        names = set(self.variables) | set(self.links)
        slot_map = self.slot_map
        if slot_map is not None:
            for name, ix in slot_map.items():
                if self.slots[ix] is not _UNSET:
                    names.add(name)
        return list(names)


class Proc:
    """A procedure defined with the ``proc`` command.

    ``compiled`` is the body compiled on first call; it lives on the
    procedure object itself, so procedure calls never touch (or evict
    from) the interpreter's bounded script cache.  Redefining the
    procedure installs a fresh ``Proc`` and therefore a fresh
    compilation.  ``vm_code`` is the bytecode form (built from
    ``compiled`` on the first call under the VM), with the formals
    resolved to local-variable slot indexes.
    """

    __slots__ = ("name", "formals", "body", "compiled", "vm_code")

    def __init__(self, name: str, formals: List[List[str]], body: str):
        self.name = name
        self.formals = formals
        self.body = body
        self.compiled: Optional[CompiledScript] = None
        self.vm_code = None

    def __call__(self, interp: "Interp", argv: List[str]) -> str:
        return interp.call_proc(self, argv)

    def args_string(self) -> str:
        return format_list(formal[0] for formal in self.formals)


class Interp:
    """A Tcl interpreter with its command table and variables."""

    def __init__(self, stdout=None, compile_enabled: bool = True,
                 obs: Optional[Observability] = None,
                 obs_enabled: bool = True,
                 bytecode_enabled: bool = True):
        self.commands: Dict[str, CommandProc] = {}
        self.global_frame = CallFrame(level=0)
        self.frames: List[CallFrame] = [self.global_frame]
        self.depth = 0
        self.stdout = stdout
        #: Ablation flag (mirrors ``ResourceCache(enabled=False)``):
        #: when False every evaluation re-parses and re-substitutes
        #: from scratch, with no compiled-script or expression caching.
        self.compile_enabled = compile_enabled
        #: Ablation flag for the bytecode VM: when False, compiled
        #: scripts are executed by the tree-walking CompiledCommand
        #: path exactly as before the VM existed.  (The VM also stands
        #: down while the span tracer is collecting, so trace trees
        #: keep their exact per-command shape.)
        self.bytecode_enabled = bytecode_enabled
        #: True while no variable traces are installed: the VM may
        #: read/write frame storage directly.  ``trace`` flips it and
        #: the VM falls back to the (hooked) get_var/set_var methods.
        self._vm_direct = True
        #: LRU of script text -> CompiledScript, bounded by
        #: ``_compile_limit`` (an attribute so tests can shrink it).
        self._compile_cache: "OrderedDict[str, CompiledScript]" = \
            OrderedDict()
        self._compile_limit = _COMPILE_CACHE_LIMIT
        #: Observability hub: metrics + span tracer (``obs`` command).
        #: A standalone interpreter owns its own; a Tk application
        #: rebinds it into the application-wide hub (see rebind_obs).
        #: ``obs_enabled=False`` is the ablation flag for measuring the
        #: cost of the instrumentation itself: counters still exist
        #: (they are the storage for cmd_count etc.) but the tracer is
        #: never consulted on hot paths.
        self.obs = obs if obs is not None else Observability()
        self.obs_enabled = obs_enabled
        #: Compile-cache effectiveness counters (``info compilecache``).
        self._m_compile_hits = self.obs.metrics.counter("tcl.compile.hits")
        self._m_compile_misses = \
            self.obs.metrics.counter("tcl.compile.misses")
        #: Total commands executed (``info cmdcount``).
        self._m_commands = self.obs.metrics.counter("tcl.commands")
        #: Bytecode VM counters: compilations, opcode dispatches, and
        #: command-resolution inline-cache hits.
        self._m_vm_compiles = self.obs.metrics.counter("tcl.vm.compiles")
        self._m_vm_dispatches = \
            self.obs.metrics.counter("tcl.vm.dispatches")
        self._m_vm_cache_hits = \
            self.obs.metrics.counter("tcl.vm.inline_cache_hits")
        self._tracer = self.obs.tracer if obs_enabled else None
        #: Precomputed "is the tracer collecting" flag, maintained by a
        #: tracer start/stop listener: the command hot path tests one
        #: boolean whether observability is enabled or ablated, so the
        #: shipping configuration pays nothing over the ablation.
        self._trace_on = False
        if obs_enabled:
            self.obs.tracer.listeners.append(self._set_trace_on)
            self._trace_on = self.obs.tracer.enabled
        #: Bumped whenever the command table changes; compiled commands
        #: memoize their resolved command procedure against this, so
        #: ``rename``/redefinition/deletion invalidate instantly.
        self.commands_epoch = 0
        #: Exception types raised by the embedding's native layer (Tk
        #: sets this to ``(XProtocolError,)``) that command invocation
        #: converts into ordinary TclErrors, so scripts can ``catch``
        #: them and ``bgerror`` can report them — a native failure must
        #: never leak a raw Python exception through ``eval``.
        self.native_error_types: tuple = ()
        #: Hook consulted when a command is not found; replaceable by
        #: registering a Tcl command named "unknown".
        self.deleted = False
        from .commands import register_builtins
        register_builtins(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def compile_hits(self) -> int:
        return self._m_compile_hits.value

    @property
    def compile_misses(self) -> int:
        return self._m_compile_misses.value

    @property
    def cmd_count(self) -> int:
        return self._m_commands.value

    def _set_trace_on(self, enabled: bool) -> None:
        self._trace_on = enabled

    def rebind_obs(self, obs: Observability) -> None:
        """Join an application-wide observability hub.

        The hub absorbs this interpreter's metric *objects* — handles
        cached on hot paths keep counting into the same storage — and
        the interpreter's spans flow to the hub's tracer (which runs on
        the application's virtual clock).
        """
        obs.metrics.absorb(self.obs.metrics)
        if self.obs_enabled and \
                self._set_trace_on in self.obs.tracer.listeners:
            self.obs.tracer.listeners.remove(self._set_trace_on)
        self.obs = obs
        if self.obs_enabled:
            self._tracer = obs.tracer
            obs.tracer.listeners.append(self._set_trace_on)
            self._trace_on = obs.tracer.enabled

    # ------------------------------------------------------------------
    # Command registration (Figure 6: "register application commands")
    # ------------------------------------------------------------------

    def register(self, name: str, proc: CommandProc) -> None:
        """Register (or replace) a command procedure under ``name``."""
        self.commands[name] = proc
        self.commands_epoch += 1

    def unregister(self, name: str) -> None:
        """Delete a command; unknown names raise an error."""
        if name not in self.commands:
            raise TclError('can\'t delete "%s": command doesn\'t exist'
                           % name)
        del self.commands[name]
        self.commands_epoch += 1

    def rename(self, old: str, new: str) -> None:
        if old not in self.commands:
            raise TclError('can\'t rename "%s": command doesn\'t exist'
                           % old)
        if new == "":
            del self.commands[old]
            self.commands_epoch += 1
            return
        if new in self.commands:
            raise TclError('can\'t rename to "%s": command already exists'
                           % new)
        self.commands[new] = self.commands.pop(old)
        self.commands_epoch += 1

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def eval(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate a script; the result is the last command's result.

        ``script`` may be a string or a :class:`CompiledScript`
        returned by :meth:`compile` (event bindings and widget
        ``-command`` options pre-compile their scripts this way).
        """
        if self.depth >= _MAX_NESTING_DEPTH:
            raise TclError(
                "too many nested calls to Tcl_Eval (infinite loop?)")
        self.depth += 1
        try:
            if not isinstance(script, str):
                compiled = script
            elif self.compile_enabled:
                compiled = self._compiled(script)
            else:
                # Ablation path: re-parse and re-substitute every time.
                result = ""
                for command in parser.parse_script(script):
                    result = self._eval_command(command)
                return result
            if self.bytecode_enabled and self.compile_enabled and \
                    not self._trace_on:
                code = compiled.vm_code
                if code is None:
                    code = _vm.code_for_script(self, compiled)
                result = _vm.run(self, code, self.frames[-1])
                if type(result) is str or type(result) is _Value:
                    return result
                return _to_value_str(result)
            single = compiled.single
            if single is not None:
                return single.execute(self)
            return compiled.execute(self)
        finally:
            self.depth -= 1

    def compile(self, script: str) -> Union[str, CompiledScript]:
        """Compile a script for repeated evaluation.

        Returns a :class:`CompiledScript` (through the interpreter's
        bounded cache) — or the script unchanged when compilation is
        disabled, so callers can hold the result and pass it to
        :meth:`eval` either way.
        """
        if not self.compile_enabled or not isinstance(script, str):
            return script
        return self._compiled(script)

    def eval_words(self, argv: List[str]) -> str:
        """Invoke a command from already-substituted words."""
        if not argv:
            return ""
        return self._invoke(argv, source=format_list(argv))

    def eval_top(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate at top level, recording errorInfo in the global var.

        This is what event bindings and the main program use: any error
        unwinds to here, where the accumulated trace is stored in the
        global ``errorInfo`` variable before the error is re-raised.
        """
        if self._trace_on:
            tracer = self._tracer
            source = script.source \
                if isinstance(script, CompiledScript) else script
            span = tracer.begin("eval", _span_name(source))
            try:
                return self.eval(script)
            except TclError as error:
                self.set_global_var("errorInfo", _error_info(error))
                raise
            finally:
                tracer.finish(span)
        try:
            return self.eval(script)
        except TclError as error:
            self.set_global_var("errorInfo", _error_info(error))
            raise

    def eval_global(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate at global variable scope (like ``uplevel #0``).

        Deferred scripts — event bindings, timer handlers, widget
        -commands, sends — run at global level in Tcl, whatever
        procedure happens to be executing when they fire.
        """
        saved = self.frames
        self.frames = [self.global_frame]
        try:
            return self.eval_top(script)
        finally:
            self.frames = saved

    def eval_background(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate a *background* script (binding/timer/callback).

        If the script fails and the application has defined a
        ``bgerror`` procedure (wish's library provides one) — or the
        historical ``tkerror`` — the error is reported through it and
        swallowed, so one broken binding cannot kill the event loop;
        without a handler the error propagates as usual.
        """
        try:
            return self.eval_global(script)
        except TclError as error:
            handler = None
            for candidate in ("bgerror", "tkerror"):
                if candidate in self.commands:
                    handler = candidate
                    break
            if handler is None:
                raise
            from .lists import quote_element
            try:
                self.eval_global("%s %s"
                                 % (handler, quote_element(error.message)))
            except TclError:
                pass  # a broken bgerror must not re-kill the loop
            return ""

    def _compiled(self, script: str) -> CompiledScript:
        """Look up (or build) the compiled form of a script, LRU-style."""
        cache = self._compile_cache
        compiled = cache.get(script)
        if compiled is not None:
            self._m_compile_hits.value += 1
            cache.move_to_end(script)
            return compiled
        self._m_compile_misses.value += 1
        compiled = compile_script(script)
        if len(cache) >= self._compile_limit:
            cache.popitem(last=False)
        cache[script] = compiled
        return compiled

    def _eval_command(self, command: parser.Command) -> str:
        argv = [self.substitute_word(word) for word in command.words]
        return self._invoke(argv, command.source)

    def _invoke(self, argv: List[str], source: str) -> str:
        if self._trace_on:
            tracer = self._tracer
            span = tracer.begin("cmd", argv[0], _span_widget(argv))
            try:
                return self._invoke_untraced(argv, source)
            finally:
                tracer.finish(span)
        return self._invoke_untraced(argv, source)

    def _invoke_untraced(self, argv: List[str], source: str) -> str:
        proc = self.commands.get(argv[0])
        if proc is None:
            unknown = self.commands.get("unknown")
            if unknown is not None:
                self._m_commands.value += 1
                return unknown(self, ["unknown"] + argv) or ""
            raise TclError('invalid command name "%s"' % argv[0])
        self._m_commands.value += 1
        try:
            result = proc(self, argv)
        except TclError as error:
            _append_error_info(error, source)
            raise
        except self.native_error_types as error:
            converted = TclError(str(error))
            _append_error_info(converted, source)
            raise converted from error
        return result if result is not None else ""

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------

    def substitute_word(self, word: parser.Word) -> str:
        parts = word.parts
        if len(parts) == 1 and isinstance(parts[0], parser.Literal):
            return parts[0].text
        pieces: List[str] = []
        for part in parts:
            if isinstance(part, parser.Literal):
                pieces.append(part.text)
            elif isinstance(part, parser.VarSub):
                pieces.append(self.value_of(part))
            else:
                pieces.append(self.eval(part.script))
        return "".join(pieces)

    def substitute(self, text: str) -> str:
        """Perform backslash/variable/command substitution on a string."""
        return self.substitute_word(parser.parse_substitution(text))

    def value_of(self, var: parser.VarSub) -> str:
        index = None
        if var.index is not None:
            index = self.substitute_word(var.index)
        return self.get_var(var.name, index)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def current_frame(self) -> CallFrame:
        return self.frames[-1]

    def _resolve(self, frame: CallFrame, name: str) -> tuple:
        """Follow upvar/global links to the owning frame.

        Links live either in the frame's ``links`` dict or — for
        aliased formals on VM frames — in the local slot itself.
        """
        seen = 0
        while True:
            link = frame.links.get(name) if frame.links else None
            if link is None:
                slot_map = frame.slot_map
                if slot_map is not None:
                    ix = slot_map.get(name)
                    if ix is not None:
                        cell = frame.slots[ix]
                        if type(cell) is _SlotLink:
                            frame, name = cell.frame, cell.name
                            seen += 1
                            if seen > len(self.frames) + 1:
                                raise TclError(
                                    'circular variable link for "%s"'
                                    % name)
                            continue
                return frame, name
            frame, name = link
            seen += 1
            if seen > len(self.frames) + 1:
                raise TclError('circular variable link for "%s"' % name)

    def _read_cell(self, frame: CallFrame, name: str):
        """The raw stored value at a resolved (frame, name), or None."""
        slot_map = frame.slot_map
        if slot_map is not None:
            ix = slot_map.get(name)
            if ix is not None:
                cell = frame.slots[ix]
                return None if cell is _UNSET else cell
        return frame.variables.get(name)

    def get_var(self, name: str, index: Optional[str] = None,
                frame: Optional[CallFrame] = None) -> str:
        frame, name = self._resolve(frame or self.current_frame, name)
        slot_ix = None
        slot_map = frame.slot_map
        if slot_map is not None:
            slot_ix = slot_map.get(name)
        if slot_ix is not None:
            value = frame.slots[slot_ix]
            if value is _UNSET:
                value = None
        else:
            value = frame.variables.get(name)
        if value is None:
            raise TclError('can\'t read "%s": no such variable'
                           % _display_name(name, index))
        if index is None:
            cls = type(value)
            if cls is str or cls is _Value:
                return value
            if cls is dict:
                raise TclError(
                    'can\'t read "%s": variable is array' % name)
            # Dual-rep: the VM stores raw numbers; the string rep is
            # materialized (once) on the first string-level read and
            # written back so later reads return the same object.
            text = _to_value_str(value)
            if slot_ix is not None:
                frame.slots[slot_ix] = text
            else:
                frame.variables[name] = text
            return text
        if not isinstance(value, dict):
            raise TclError(
                'can\'t read "%s(%s)": variable isn\'t array'
                % (name, index))
        if index not in value:
            raise TclError('can\'t read "%s(%s)": no such element'
                           % (name, index))
        return value[index]

    def set_var(self, name: str, value: str,
                index: Optional[str] = None,
                frame: Optional[CallFrame] = None) -> str:
        frame, name = self._resolve(frame or self.current_frame, name)
        slot_ix = None
        slot_map = frame.slot_map
        if slot_map is not None:
            slot_ix = slot_map.get(name)
        if slot_ix is not None:
            existing = frame.slots[slot_ix]
            if existing is _UNSET:
                existing = None
            if index is None:
                if type(existing) is dict:
                    raise TclError(
                        'can\'t set "%s": variable is array' % name)
                frame.slots[slot_ix] = value
                return value
            if existing is None:
                existing = {}
                frame.slots[slot_ix] = existing
            elif not isinstance(existing, dict):
                raise TclError(
                    'can\'t set "%s(%s)": variable isn\'t array'
                    % (name, index))
            existing[index] = value
            return value
        if index is None:
            if isinstance(frame.variables.get(name), dict):
                raise TclError(
                    'can\'t set "%s": variable is array' % name)
            frame.variables[name] = value
            return value
        existing = frame.variables.get(name)
        if existing is None:
            existing = {}
            frame.variables[name] = existing
        elif not isinstance(existing, dict):
            raise TclError(
                'can\'t set "%s(%s)": variable isn\'t array'
                % (name, index))
        existing[index] = value
        return value

    def unset_var(self, name: str, index: Optional[str] = None,
                  frame: Optional[CallFrame] = None) -> None:
        frame, name = self._resolve(frame or self.current_frame, name)
        slot_map = frame.slot_map
        if slot_map is not None:
            slot_ix = slot_map.get(name)
            if slot_ix is not None:
                value = frame.slots[slot_ix]
                if value is _UNSET:
                    raise TclError('can\'t unset "%s": no such variable'
                                   % _display_name(name, index))
                if index is None:
                    frame.slots[slot_ix] = _UNSET
                    return
                if not isinstance(value, dict) or index not in value:
                    raise TclError(
                        'can\'t unset "%s(%s)": no such element'
                        % (name, index))
                del value[index]
                return
        if name not in frame.variables:
            raise TclError('can\'t unset "%s": no such variable'
                           % _display_name(name, index))
        if index is None:
            del frame.variables[name]
            return
        value = frame.variables[name]
        if not isinstance(value, dict) or index not in value:
            raise TclError('can\'t unset "%s(%s)": no such element'
                           % (name, index))
        del value[index]

    def var_exists(self, name: str, index: Optional[str] = None) -> bool:
        try:
            frame, name = self._resolve(self.current_frame, name)
        except TclError:
            return False
        value = self._read_cell(frame, name)
        if value is None:
            return False
        if index is None:
            return True
        return isinstance(value, dict) and index in value

    def set_global_var(self, name: str, value: str,
                       index: Optional[str] = None) -> str:
        return self.set_var(name, value, index, frame=self.global_frame)

    def get_global_var(self, name: str, index: Optional[str] = None) -> str:
        return self.get_var(name, index, frame=self.global_frame)

    def link_var(self, frame: CallFrame, local_name: str,
                 target_frame: CallFrame, target_name: str) -> None:
        """Create an upvar/global style alias."""
        slot_map = frame.slot_map
        if slot_map is not None:
            ix = slot_map.get(local_name)
            if ix is not None:
                cell = frame.slots[ix]
                if cell is not _UNSET and type(cell) is not _SlotLink:
                    raise TclError(
                        'variable "%s" already exists' % local_name)
                frame.slots[ix] = _SlotLink(target_frame, target_name)
                return
        if local_name in frame.variables:
            raise TclError(
                'variable "%s" already exists' % local_name)
        frame.links[local_name] = (target_frame, target_name)

    # ------------------------------------------------------------------
    # Procedures
    # ------------------------------------------------------------------

    def define_proc(self, name: str, args_spec: str, body: str) -> None:
        formals: List[List[str]] = []
        for formal in parse_list(args_spec):
            pieces = parse_list(formal)
            if len(pieces) not in (1, 2) or not pieces:
                raise TclError(
                    'procedure "%s" has argument with too many fields'
                    % name)
            formals.append(pieces)
        self.commands[name] = Proc(name, formals, body)
        self.commands_epoch += 1

    def call_proc(self, proc: Proc, argv: List[str]) -> str:
        if self._trace_on:
            tracer = self._tracer
            span = tracer.begin("proc", proc.name)
            try:
                return self._call_proc(proc, argv)
            finally:
                tracer.finish(span)
        return self._call_proc(proc, argv)

    def _call_proc(self, proc: Proc, argv: List[str]) -> str:
        if self.bytecode_enabled and self.compile_enabled and \
                not self._trace_on:
            return self._call_proc_vm(proc, argv)
        body: Union[str, CompiledScript] = proc.body
        if self.compile_enabled:
            compiled = proc.compiled
            if compiled is None:
                compiled = proc.compiled = compile_script(proc.body)
            body = compiled
        frame = CallFrame(level=len(self.frames), proc_name=proc.name,
                          argv=argv)
        self._bind_formals(proc, argv, frame)
        self.frames.append(frame)
        try:
            try:
                return self.eval(body)
            except TclReturn as ret:
                return ret.value
            except TclBreak:
                raise TclError(
                    'invoked "break" outside of a loop')
            except TclContinue:
                raise TclError(
                    'invoked "continue" outside of a loop')
        finally:
            self.frames.pop()

    def _call_proc_vm(self, proc: Proc, argv: List[str]) -> str:
        """Procedure call on the bytecode path: body compiled to
        bytecode once (on the Proc, like ``compiled``), formals bound
        straight into indexed slots, no name-dict traffic."""
        code = proc.vm_code
        if code is None:
            compiled = proc.compiled
            if compiled is None:
                compiled = proc.compiled = compile_script(proc.body)
            code = proc.vm_code = _vm.code_for_proc(self, compiled, proc)
        if self.depth >= _MAX_NESTING_DEPTH:
            raise TclError(
                "too many nested calls to Tcl_Eval (infinite loop?)")
        if code.simple_arity == len(argv) - 1:
            # No defaults, no ``args``, right count: binding is a copy.
            slots = argv[1:]
        else:
            slots = self._bind_slots(proc, argv)
        frame = CallFrame.__new__(CallFrame)
        frame.variables = {}
        frame.links = {}
        frame.level = len(self.frames)
        frame.proc_name = proc.name
        frame.argv = argv
        frame.slots = slots
        frame.slot_map = code.slot_map
        self.depth += 1
        self.frames.append(frame)
        try:
            try:
                result = _vm.run(self, code, frame)
                if type(result) is str or type(result) is _Value:
                    return result
                return _to_value_str(result)
            except TclReturn as ret:
                return ret.value
            except TclBreak:
                raise TclError(
                    'invoked "break" outside of a loop')
            except TclContinue:
                raise TclError(
                    'invoked "continue" outside of a loop')
        finally:
            self.frames.pop()
            self.depth -= 1

    def _bind_slots(self, proc: Proc, argv: List[str]) -> list:
        """Bind arguments to slot-indexed formals (``_bind_formals``
        with positions instead of dict inserts; same diagnostics)."""
        supplied = argv[1:]
        formals = proc.formals
        n_supplied = len(supplied)
        slots: list = []
        for position, formal in enumerate(formals):
            name = formal[0]
            if name == "args" and position == len(formals) - 1:
                slots.append(format_list(supplied[position:]))
                return slots
            if position < n_supplied:
                slots.append(supplied[position])
            elif len(formal) == 2:
                slots.append(formal[1])
            else:
                raise TclError(
                    'no value given for parameter "%s" to "%s"'
                    % (name, proc.name))
        if n_supplied > len(formals):
            raise TclError(
                'called "%s" with too many arguments' % proc.name)
        return slots

    def _bind_formals(self, proc: Proc, argv: List[str],
                      frame: CallFrame) -> None:
        supplied = argv[1:]
        formals = proc.formals
        for position, formal in enumerate(formals):
            name = formal[0]
            if name == "args" and position == len(formals) - 1:
                frame.variables["args"] = format_list(supplied[position:])
                return
            if position < len(supplied):
                frame.variables[name] = supplied[position]
            elif len(formal) == 2:
                frame.variables[name] = formal[1]
            else:
                raise TclError(
                    'no value given for parameter "%s" to "%s"'
                    % (name, proc.name))
        if len(supplied) > len(formals):
            raise TclError(
                'called "%s" with too many arguments' % proc.name)

    def frame_at_level(self, level_spec: str,
                       default_up_one: bool = True) -> CallFrame:
        """Resolve a level argument as used by uplevel/upvar.

        ``#n`` is absolute; a plain number is relative to the current
        frame; the default is one level up.
        """
        if level_spec.startswith("#"):
            try:
                level = int(level_spec[1:])
            except ValueError:
                raise TclError('bad level "%s"' % level_spec)
        else:
            try:
                up = int(level_spec)
            except ValueError:
                raise TclError('bad level "%s"' % level_spec)
            level = self.current_frame.level - up
        if level < 0 or level >= len(self.frames):
            raise TclError('bad level "%s"' % level_spec)
        return self.frames[level]

    # ------------------------------------------------------------------
    # Utilities used by command implementations
    # ------------------------------------------------------------------

    def write(self, text: str) -> None:
        """Write to the interpreter's standard output channel."""
        if self.stdout is not None:
            self.stdout.write(text)

    def timer(self) -> float:
        """Seconds counter used by the ``time`` command (overridable)."""
        return _time.perf_counter()


def _display_name(name: str, index: Optional[str]) -> str:
    return "%s(%s)" % (name, index) if index is not None else name


def _span_name(source: str, limit: int = 48) -> str:
    """A script condensed to one short line for span labels."""
    name = " ".join(source.split())
    if len(name) > limit:
        name = name[:limit - 3] + "..."
    return name


def _span_widget(argv: List[str]) -> Optional[str]:
    """Best-effort widget attribution for a command invocation.

    Widget commands are named after their window path (``.b configure
    ...``); creation commands take the path as the first argument
    (``button .b ...``).
    """
    if argv[0].startswith("."):
        return argv[0]
    if len(argv) > 1 and argv[1].startswith("."):
        return argv[1]
    return None


def _error_info(error: TclError) -> str:
    info = getattr(error, "info", None)
    if not info:
        return error.message
    return "\n".join(info)
