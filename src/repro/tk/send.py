"""The ``send`` command (paper section 6).

``send`` is a remote-procedure-call facility: any Tk-based application
can invoke Tcl commands in any other Tk-based application on the same
display.  The implementation follows the paper:

* every application registers a unique name, recorded in a registry
  property on the display's *root* window;
* ``send name command`` locates the target by reading the registry,
  then forwards the command through properties on the target's
  communication window;
* the target's Tk executes the command in its interpreter and returns
  the result (or error) the same way.

Because both applications are clients of the same (simulated) X server,
this works between genuinely separate interpreters and widget trees —
the paper's replacement for monolithic applications.

Crash safety (as in real Tk): the registry is *advisory* — an
application that dies without unregistering leaves a stale entry
behind, so every lookup scrubs entries whose comm window no longer
exists; a target that dies while a send is outstanding produces a
clean ``target application died`` error in bounded time rather than a
hang; a Python-level failure inside a sent script is returned to the
sender as an error reply instead of killing the target's event loop;
and errorInfo is carried across the interpreter boundary so remote
stack traces are not lost.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..tcl.errors import TclError
from ..tcl.lists import format_list, parse_list
from ..x11 import events as ev
from ..x11.xserver import XProtocolError

_REGISTRY_PROPERTY = "InterpRegistry"
_COMM_PROPERTY = "Comm"

#: Virtual-millisecond budget for one send round trip.  The server
#: clock advances on every request (including the liveness probes the
#: wait loop issues), so this bounds the wait in *rounds* as well.
_DEFAULT_TIMEOUT_MS = 2000

#: Consecutive pump rounds with no progress anywhere in the system
#: before a send gives up early.  In the simulator a fully idle system
#: can never produce a reply, so there is no point burning the whole
#: timeout budget — unless the fault plan is still holding delayed
#: events, in which case the wait continues until the deadline.
_IDLE_GRACE_ROUNDS = 25

_serials = itertools.count(1)


class SendManager:
    """Registration and transport for the send command."""

    def __init__(self, app, requested_name: str):
        self.app = app
        display = app.display
        self.registry_atom = display.intern_atom(_REGISTRY_PROPERTY)
        self.comm_atom = display.intern_atom(_COMM_PROPERTY)
        self.string_atom = display.intern_atom("STRING")
        #: per-send deadline, in virtual milliseconds (configurable)
        self.timeout_ms = _DEFAULT_TIMEOUT_MS
        self.idle_grace = _IDLE_GRACE_ROUNDS
        # The communication window: an unmapped child of the root.
        self.comm_window = display.create_window(display.root, 0, 0, 1, 1)
        display.select_input(self.comm_window, ev.PROPERTY_CHANGE_MASK)
        # The comm window is a mailbox: other clients write requests and
        # replies into its Comm property, so its owner must grant them
        # property-write access (the server enforces ownership).
        display.set_property_access(self.comm_window, True)
        self.name = self._register(requested_name)
        #: serial -> (code, result, error_info) for completed sends
        self._results: Dict[int, tuple] = {}
        metrics = app.obs.metrics
        self._m_rpcs = metrics.counter("send.rpcs")
        self._m_errors = metrics.counter("send.errors")
        #: virtual-ms spent per send (round trips dominate send cost)
        self._m_wait = metrics.histogram("send.wait_ms")
        #: depth of nested _wait_for_result calls (reentrant sends)
        self._waiting = 0

    # ------------------------------------------------------------------
    # the registry property on the root window
    # ------------------------------------------------------------------

    def _read_registry(self) -> Dict[str, int]:
        entry = self.app.display.get_property(self.app.display.root,
                                              self.registry_atom)
        registry: Dict[str, int] = {}
        if entry is not None and isinstance(entry[1], str):
            for line in parse_list(entry[1]):
                fields = parse_list(line)
                if len(fields) == 2 and fields[1].isdigit():
                    registry[fields[0]] = int(fields[1])
        return registry

    def _write_registry(self, registry: Dict[str, int]) -> None:
        value = format_list(
            format_list([name, str(window)])
            for name, window in sorted(registry.items()))
        self.app.display.change_property(self.app.display.root,
                                         self.registry_atom,
                                         self.string_atom, value)

    def _window_alive(self, window: int) -> bool:
        """Probe whether a comm window still exists on the server."""
        try:
            return self.app.display.window_exists(window)
        except XProtocolError:
            # An injected protocol error makes the probe inconclusive;
            # assume alive and let the deadline decide.
            return True

    def _scrub(self, registry: Dict[str, int]) -> Tuple[Dict[str, int],
                                                        bool]:
        """Drop entries whose comm window is gone (crashed peers).

        Real Tk does exactly this in ``Tk_GetInterpNames`` and on every
        failed send: the registry is advisory, and dead entries are
        reclaimed by whoever notices them first.
        """
        alive: Dict[str, int] = {}
        changed = False
        for name, window in registry.items():
            if self._window_alive(window):
                alive[name] = window
            else:
                changed = True
        return alive, changed

    def _scrubbed_registry(self) -> Dict[str, int]:
        registry, changed = self._scrub(self._read_registry())
        if changed:
            self._write_registry(registry)
        return registry

    def _register(self, requested: str) -> str:
        # Reclaim names whose owner has died before picking a suffix,
        # so "foo" crashing and restarting gets "foo" back, not "foo #2".
        registry = self._scrubbed_registry()
        name = requested
        suffix = 2
        while name in registry:
            name = "%s #%d" % (requested, suffix)
            suffix += 1
        registry[name] = self.comm_window
        self._write_registry(registry)
        # Make the registration visible on the server immediately: other
        # applications read the registry through their own connections,
        # which cannot see requests sitting in this display's buffer.
        self.app.display.flush()
        return name

    def unregister(self) -> None:
        """Remove this application's entry and comm window.

        Called from application teardown so normal exits leave no
        stale registry entries behind.
        """
        try:
            registry = self._read_registry()
            if registry.pop(self.name, None) is not None:
                self._write_registry(registry)
        except XProtocolError:
            pass   # connection already gone; the scrubbers handle it
        try:
            self.app.display.destroy_window(self.comm_window)
        except XProtocolError:
            pass   # already destroyed (e.g. by a disconnect fault)

    def application_names(self) -> list:
        """All live application names (the ``winfo interps`` set)."""
        return sorted(self._scrubbed_registry())

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, target_name: str, script: str,
             wait: bool = True) -> str:
        """Execute ``script`` in the application named ``target_name``.

        With ``wait`` false (``send -async``), the request is delivered
        but no reply is requested and the call returns immediately.
        """
        self._m_rpcs.value += 1
        jrec = self.app.server._jrec
        if jrec is not None:
            jrec.send_rpc(self.name, target_name, script, wait)
        start_ms = self.app.server.time_ms
        tracer = self.app.obs.tracer
        span = tracer.begin("send", target_name) if tracer.enabled \
            else None
        try:
            return self._send(target_name, script, wait)
        except TclError:
            self._m_errors.value += 1
            raise
        finally:
            self._m_wait.observe(self.app.server.time_ms - start_ms)
            if span is not None:
                tracer.finish(span)

    def _send(self, target_name: str, script: str,
              wait: bool = True) -> str:
        registry = self._scrubbed_registry()
        target_window = registry.get(target_name)
        if target_window is None:
            raise TclError(
                'no registered interpreter named "%s"' % target_name)
        serial = next(_serials)
        reply_window = self.comm_window if wait else 0
        request = format_list(["cmd", str(serial), str(reply_window),
                               script])
        try:
            # One list element per message: scripts may contain any
            # characters (including newlines), so the framing must not
            # depend on the payload.
            self.app.display.change_property(
                target_window, self.comm_atom, self.string_atom,
                [request], append=True)
        except XProtocolError:
            # The comm window vanished between the scrub and the write.
            registry.pop(target_name, None)
            self._write_registry(registry)
            raise TclError(
                'no registered interpreter named "%s"' % target_name)
        if not wait:
            return ""
        return self._wait_for_result(serial, target_name, target_window)

    def _wait_for_result(self, serial: int, target_name: str,
                         target_window: int) -> str:
        from .app import pump_all
        server = self.app.server
        deadline = server.time_ms + self.timeout_ms
        idle_rounds = 0
        self._waiting += 1
        try:
            while True:
                if serial in self._results:
                    return self._claim(serial, target_name)
                if not self._window_alive(target_window):
                    raise TclError("target application died")
                if server.time_ms >= deadline:
                    raise TclError(
                        'send to "%s" timed out' % target_name)
                # Pumping is reentrant: events delivered here may start
                # nested sends (A→B→A), which wait on their own serials
                # through this same loop one frame deeper.
                if pump_all(server, max_rounds=1):
                    idle_rounds = 0
                    continue
                idle_rounds += 1
                # Nothing runnable anywhere.  Advance the virtual clock
                # so delayed (fault-held) events get released and the
                # deadline can expire; give up early if nothing is even
                # pending release.
                server.idle_tick()
                plan = server.fault_plan
                held = plan.held_count() if plan is not None else 0
                if held == 0 and idle_rounds > self.idle_grace:
                    raise TclError(
                        'send to "%s" timed out' % target_name)
        finally:
            self._waiting -= 1

    def _claim(self, serial: int, target_name: str) -> str:
        code, result, error_info = self._results.pop(serial)
        if code != "0":
            error = TclError(result)
            if error_info:
                # Seed the local trace with the remote one, so the
                # sender's errorInfo shows the cross-interpreter path.
                error.info = [error_info,
                              '    ("send" to interpreter "%s")'
                              % target_name]
            raise error
        return result

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def maybe_handle(self, event) -> bool:
        """Intercept PropertyNotify on the comm window; True if consumed."""
        if event.type != ev.PROPERTY_NOTIFY or \
                event.window != self.comm_window or \
                event.atom != self.comm_atom or event.state == 1:
            return False
        try:
            entry = self.app.display.get_property(self.comm_window,
                                                  self.comm_atom,
                                                  delete=True)
        except XProtocolError:
            return True    # comm window torn down under us
        if entry is None:
            return True
        value = entry[1]
        if isinstance(value, str):
            messages = [value]
        else:
            messages = list(value)
        for message in messages:
            if str(message).strip():
                self._handle_message(str(message))
        return True

    def _handle_message(self, message: str) -> None:
        try:
            fields = parse_list(message)
        except TclError:
            return
        if len(fields) == 4 and fields[0] == "cmd":
            _, serial, reply_window, script = fields
            self._execute(serial, int(reply_window), script)
        elif len(fields) in (4, 5) and fields[0] == "result":
            serial, code, result = fields[1], fields[2], fields[3]
            error_info = fields[4] if len(fields) == 5 else ""
            self._results[int(serial)] = (code, result, error_info)

    def _execute(self, serial: str, reply_window: int, script: str) -> None:
        interp = self.app.interp
        try:
            result = interp.eval_global(script)
            code, error_info = "0", ""
        except TclError as error:
            result = error.message
            code = "1"
            info = getattr(error, "info", None)
            error_info = "\n".join(info) if info else error.message
        except Exception as error:   # noqa: BLE001 — a Python-level bug
            # in a sent script must become an error *reply*, never kill
            # the target's event loop.
            result = "%s: %s" % (type(error).__name__, error)
            code = "1"
            error_info = result
        if reply_window == 0:
            return     # async send: no reply requested
        reply = format_list(["result", serial, code, result, error_info])
        try:
            self.app.display.change_property(
                reply_window, self.comm_atom, self.string_atom,
                [reply], append=True)
        except Exception:
            pass  # sender disappeared; nothing to reply to
