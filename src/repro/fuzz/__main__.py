"""CLI for the adversarial session fuzzer.

Modes::

    python -m repro.fuzz --seed S --sessions N [--steps L]
        [--plant NAME] [--save-repros DIR] [--shrink-budget B]
    python -m repro.fuzz --repro FILE [--expect-violation]
    python -m repro.fuzz --regress DIR

The first form generates and runs N seeded sessions (deterministic:
the same seed always produces the same scenarios and journals); on a
violation it delta-debugs the step list down to a minimal repro and —
with ``--save-repros`` — writes the shrunk journal, which replays with
``--repro``.  ``--regress`` validates a corpus directory: planted
journals must reproduce their violation (with the plant re-armed from
the header), unplanted journals must run clean and replay in every
ablation mode.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..obs.journal import Journal
from ..obs.replay import MODES, replay_all_modes
from .gen import DEFAULT_LENGTH, generate_scenario
from .plants import PLANTS, plant
from .runner import run_scenario, scenario_from_journal
from .shrink import DEFAULT_BUDGET, shrink_scenario


def derive_seed(master: int, index: int) -> int:
    """Per-session seed from the campaign seed — stable, collision-poor."""
    return (master * 1000003 + index * 7919 + 17) & 0x7FFFFFFF


def _fuzz(args) -> int:
    plant_name = args.plant
    if plant_name is None:
        plant_name = os.environ.get("REPRO_FUZZ_PLANT") or None
    failures = 0
    for index in range(args.sessions):
        seed = derive_seed(args.seed, index)
        scenario = generate_scenario(seed, length=args.steps,
                                     planted=plant_name)
        with plant(plant_name):
            result = run_scenario(scenario)
        status = "clean" if result.ok else \
            "VIOLATED (%s)" % ", ".join(sorted(result.kinds()))
        print("session %2d  seed=%-10d steps=%2d/%2d journal=%-5d %s"
              % (index, seed, result.steps_run, len(scenario.steps),
                 len(result.journal), status))
        if result.ok:
            continue
        failures += 1
        for violation in result.violations:
            print("    " + violation.format())
        minimal = _shrink_and_save(scenario, result, plant_name, args)
        if minimal is not None and args.save_repros:
            print("    repro: python -m repro.fuzz --repro %s" % minimal)
    if failures:
        print("%d of %d sessions violated an invariant"
              % (failures, args.sessions))
    return 1 if failures else 0


def _shrink_and_save(scenario, result, plant_name: Optional[str],
                     args) -> Optional[str]:
    kinds = result.kinds()
    check_replay = "replay-divergence" in kinds

    def rerun(candidate):
        with plant(plant_name):
            return run_scenario(candidate, check_replay=check_replay)

    minimal, runs = shrink_scenario(
        scenario, kinds, rerun, first_step=result.first_step(),
        budget=args.shrink_budget)
    with plant(plant_name):
        final = run_scenario(minimal)
    if final.ok:
        print("    shrink lost the violation (%d runs); keeping the "
              "original %d steps" % (runs, len(scenario.steps)))
        minimal, final = scenario, result
    else:
        print("    shrunk %d -> %d steps in %d runs"
              % (len(scenario.steps), len(minimal.steps), runs))
    if not args.save_repros:
        return None
    os.makedirs(args.save_repros, exist_ok=True)
    label = plant_name or "-".join(sorted(final.kinds()))
    path = os.path.join(args.save_repros,
                        "fuzz-%s-%d.journal" % (label, scenario.seed))
    final.journal.save(path)
    return path


def _repro(args) -> int:
    journal = Journal.load(args.repro)
    scenario = scenario_from_journal(journal)
    with plant(scenario.planted):
        result = run_scenario(scenario)
    print(result.report())
    if args.expect_violation:
        if result.ok:
            print("expected a violation but the run was clean")
            return 1
        return 0
    return 0 if result.ok else 1


def _regress(args) -> int:
    paths = sorted(
        os.path.join(args.regress, name)
        for name in os.listdir(args.regress)
        if name.endswith(".journal"))
    if not paths:
        print("no .journal files under %s" % args.regress)
        return 2
    status = 0
    for path in paths:
        journal = Journal.load(path)
        scenario = scenario_from_journal(journal)
        if scenario.planted:
            # A planted repro must still find its bug with the plant
            # re-armed — that is the regression it guards.
            with plant(scenario.planted):
                result = run_scenario(scenario)
            if result.ok:
                print("FAIL  %s: planted %s no longer reproduces"
                      % (path, scenario.planted))
                status = 1
            else:
                print("ok    %s: %s reproduces (%s)"
                      % (path, scenario.planted,
                         ", ".join(sorted(result.kinds()))))
            continue
        # An unplanted journal is a fixed real bug: it must run clean
        # and replay in every applicable ablation mode.  Faulted
        # sessions are held to the wire-exact modes only: a counts-mode
        # ablation changes the request stream, which moves where the
        # header's faults fire.
        result = run_scenario(scenario)
        if not result.ok:
            print("FAIL  %s: violations returned:" % path)
            for violation in result.violations:
                print("    " + violation.format())
            status = 1
            continue
        modes_arg = None
        if scenario.fault_spec:
            modes_arg = [mode for mode, policy in sorted(MODES.items())
                         if policy["compare"] == "exact"]
        modes = replay_all_modes(journal, modes=modes_arg)
        bad = [mode for mode, outcome in sorted(modes.items())
               if not outcome.matched]
        if bad:
            print("FAIL  %s: replay diverged in mode(s) %s"
                  % (path, ", ".join(bad)))
            status = 1
        else:
            print("ok    %s: clean, replays in %d modes"
                  % (path, len(modes)))
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Adversarial session fuzzing with invariant "
                    "oracles and journal-shrunk repros.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--sessions", type=int, default=10,
                        help="number of seeded sessions (default 10)")
    parser.add_argument("--steps", type=int, default=DEFAULT_LENGTH,
                        help="steps per session (default %d)"
                        % DEFAULT_LENGTH)
    parser.add_argument("--plant", choices=sorted(PLANTS),
                        help="arm a planted bug (also via "
                             "REPRO_FUZZ_PLANT)")
    parser.add_argument("--save-repros", metavar="DIR",
                        help="write shrunk repro journals here")
    parser.add_argument("--shrink-budget", type=int,
                        default=DEFAULT_BUDGET,
                        help="max candidate runs per shrink")
    parser.add_argument("--repro", metavar="FILE",
                        help="re-run one repro journal and report")
    parser.add_argument("--expect-violation", action="store_true",
                        help="with --repro: exit 0 iff the violation "
                             "reproduces")
    parser.add_argument("--regress", metavar="DIR",
                        help="validate a regression corpus directory")
    args = parser.parse_args(argv)
    if args.repro:
        return _repro(args)
    if args.regress:
        return _regress(args)
    return _fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
