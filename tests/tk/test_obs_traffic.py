"""Pinned server-traffic accounting per widget class (paper §3.3).

Creates and packs three widgets of every class on a fresh application
and pins the exact ``x11.round_trips`` and resource-allocation request
counts, with the resource cache on and off.  The cache-on column shows
the paper's claim — repeated textual resource names cost one round
trip total — and any future change to widget resource usage or cache
behaviour fails these numbers loudly.

All counts are read through the metrics registry (``x11.*`` names),
which is itself part of what is being tested.
"""

import io

import pytest

from repro.tk import TkApp
from repro.x11 import XServer

#: widgets of each class created (and packed) per measurement
N_WIDGETS = 3

#: class -> ((round_trips, colors, fonts) cache on,
#:           (round_trips, colors, fonts) cache off)
EXPECTED = {
    "button":      ((4, 3, 1), (15, 9, 6)),
    "canvas":      ((1, 1, 0), (3, 3, 0)),
    "checkbutton": ((4, 3, 1), (15, 9, 6)),
    "entry":       ((3, 2, 1), (12, 6, 6)),
    "frame":       ((1, 1, 0), (3, 3, 0)),
    "label":       ((3, 2, 1), (15, 9, 6)),
    "listbox":     ((4, 3, 1), (15, 9, 6)),
    "menu":        ((4, 3, 1), (15, 9, 6)),
    "menubutton":  ((4, 3, 1), (15, 9, 6)),
    "message":     ((3, 2, 1), (18, 6, 12)),
    "radiobutton": ((4, 3, 1), (15, 9, 6)),
    "scale":       ((3, 2, 1), (12, 6, 6)),
    "scrollbar":   ((2, 2, 0), (6, 6, 0)),
    "text":        ((3, 2, 1), (12, 6, 6)),
}


def _traffic(widget_class, cache_enabled):
    """(round_trips, colors, fonts, windows) deltas for the workload."""
    server = XServer()
    app = TkApp(server, name="traffic", cache_enabled=cache_enabled)
    app.interp.stdout = io.StringIO()
    app.update()
    metrics = server.obs.metrics

    def counts():
        return (metrics.value("x11.round_trips"),
                metrics.value("x11.requests", type="alloc_named_color"),
                metrics.value("x11.requests", type="load_font"),
                metrics.value("x11.requests", type="create_window"))

    before = counts()
    for index in range(N_WIDGETS):
        app.interp.eval("%s .w%d" % (widget_class, index))
        app.interp.eval("pack append . .w%d {top}" % index)
    app.update()
    after = counts()
    return tuple(new - old for new, old in zip(after, before))


@pytest.mark.parametrize("widget_class", sorted(EXPECTED))
def test_traffic_with_cache(widget_class):
    expected_rt, expected_colors, expected_fonts = \
        EXPECTED[widget_class][0]
    round_trips, colors, fonts, windows = _traffic(widget_class, True)
    assert (round_trips, colors, fonts) == \
        (expected_rt, expected_colors, expected_fonts)
    assert windows == N_WIDGETS


@pytest.mark.parametrize("widget_class", sorted(EXPECTED))
def test_traffic_without_cache(widget_class):
    expected_rt, expected_colors, expected_fonts = \
        EXPECTED[widget_class][1]
    round_trips, colors, fonts, windows = _traffic(widget_class, False)
    assert (round_trips, colors, fonts) == \
        (expected_rt, expected_colors, expected_fonts)
    assert windows == N_WIDGETS


@pytest.mark.parametrize("widget_class", sorted(EXPECTED))
def test_cache_never_increases_traffic(widget_class):
    on = EXPECTED[widget_class][0]
    off = EXPECTED[widget_class][1]
    assert on[0] <= off[0]


def test_cache_on_loads_each_font_once():
    """The paper's claim: one allocation per distinct textual name."""
    round_trips, colors, fonts, _ = _traffic("button", True)
    assert fonts == 1            # one font name, three buttons
    assert colors == 3           # three distinct color names


#: class -> ((batches, coalesced, delivered) buffering on,
#:           (batches, coalesced, delivered) buffering off)
#: "delivered" counts requests executed by the server (the batch
#: wrapper tick excluded), so buffering-on delivery must equal
#: buffering-off delivery minus the coalesced requests.
EXPECTED_BATCH = {
    "button":      ((9, 2, 39), (0, 0, 41)),
    "canvas":      ((6, 3, 28), (0, 0, 31)),
    "checkbutton": ((9, 2, 42), (0, 0, 44)),
    "entry":       ((8, 2, 38), (0, 0, 40)),
    "frame":       ((5, 0, 21), (0, 0, 21)),
    "label":       ((9, 2, 35), (0, 0, 37)),
    "listbox":     ((7, 2, 34), (0, 0, 36)),
    "menu":        ((7, 2, 34), (0, 0, 36)),
    "menubutton":  ((9, 2, 39), (0, 0, 41)),
    "message":     ((7, 2, 28), (0, 0, 30)),
    "radiobutton": ((9, 2, 42), (0, 0, 44)),
    "scale":       ((7, 2, 37), (0, 0, 39)),
    "scrollbar":   ((7, 3, 39), (0, 0, 42)),
    "text":        ((8, 2, 38), (0, 0, 40)),
}


def _batch_traffic(widget_class, buffering_enabled):
    """(batches, coalesced, delivered, round_trips, colors, fonts)
    deltas for the N_WIDGETS create-and-pack workload."""
    server = XServer()
    app = TkApp(server, name="traffic",
                buffering_enabled=buffering_enabled)
    app.interp.stdout = io.StringIO()
    app.update()
    metrics = server.obs.metrics

    def counts():
        return (metrics.value("x11.batches"),
                metrics.value("x11.requests_coalesced"),
                metrics.total("x11.requests") -
                metrics.value("x11.requests", type="batch"),
                metrics.value("x11.round_trips"),
                metrics.value("x11.requests", type="alloc_named_color"),
                metrics.value("x11.requests", type="load_font"))

    before = counts()
    for index in range(N_WIDGETS):
        app.interp.eval("%s .w%d" % (widget_class, index))
        app.interp.eval("pack append . .w%d {top}" % index)
    app.update()
    after = counts()
    return tuple(new - old for new, old in zip(after, before))


@pytest.mark.parametrize("widget_class", sorted(EXPECTED_BATCH))
def test_batch_traffic_buffering_on(widget_class):
    measured = _batch_traffic(widget_class, True)
    assert measured[:3] == EXPECTED_BATCH[widget_class][0]


@pytest.mark.parametrize("widget_class", sorted(EXPECTED_BATCH))
def test_batch_traffic_buffering_off(widget_class):
    measured = _batch_traffic(widget_class, False)
    assert measured[:3] == EXPECTED_BATCH[widget_class][1]


@pytest.mark.parametrize("widget_class", sorted(EXPECTED_BATCH))
def test_buffering_preserves_reply_traffic(widget_class):
    """Buffering reorders nothing that replies or allocates: the
    round-trip/color/font columns must be identical in both modes."""
    on = _batch_traffic(widget_class, True)
    off = _batch_traffic(widget_class, False)
    assert on[3:] == off[3:]


@pytest.mark.parametrize("widget_class", sorted(EXPECTED_BATCH))
def test_coalescing_accounts_for_every_dropped_request(widget_class):
    """delivered(on) + coalesced(on) == delivered(off): every request
    the synchronous path issues is either delivered or coalesced."""
    (_, coalesced_on, delivered_on), (_, _, delivered_off) = \
        EXPECTED_BATCH[widget_class]
    assert delivered_on + coalesced_on == delivered_off


def test_sync_ticks_a_named_request():
    """Satellite fix: ``Display.sync()`` records a ``sync`` request, so
    round trips never exceed the sum of reply-bearing request counts."""
    server = XServer()
    app = TkApp(server, name="traffic")
    app.interp.stdout = io.StringIO()
    app.update()
    metrics = server.obs.metrics
    before_sync = metrics.value("x11.requests", type="sync")
    before_rt = metrics.value("x11.round_trips")
    app.display.sync()
    app.display.sync()
    assert metrics.value("x11.requests", type="sync") == before_sync + 2
    assert metrics.value("x11.round_trips") == before_rt + 2


def test_failed_color_allocation_is_not_a_miss():
    """Satellite fix: unknown names count as errors, not misses."""
    server = XServer()
    app = TkApp(server, name="traffic")
    app.interp.stdout = io.StringIO()
    from repro.tk.cache import CacheError
    before = app.cache.stats()
    with pytest.raises(CacheError):
        app.cache.color("no-such-color-name")
    assert app.cache.stats() == before
    assert app.obs.metrics.value("tk.cache.errors", kind="color") == 1
    assert app.cache.stats_by_kind()["color"][2] == 1


def test_reply_round_trip_is_a_batch_barrier():
    """Satellite fix: a reply-bearing request pins the writes before it.

    With buffering on, a configure → get_geometry → configure sequence
    must deliver *two* configure requests: the round trip observes the
    first width, and the second configure must not merge backward
    across the reply into the batch that was already delivered.
    """
    server = XServer()
    app = TkApp(server, name="traffic", buffering_enabled=True)
    app.interp.stdout = io.StringIO()
    app.update()
    display = app.display
    metrics = server.obs.metrics
    win = display.create_window(display.root, 0, 0, 10, 10)
    display.flush()
    before = metrics.value("x11.requests", type="configure_window")
    display.configure_window(win, width=20)
    geometry = display.get_geometry(win)      # auto-flush + round trip
    assert geometry[2] == 20                  # observed the fresh size
    display.configure_window(win, width=30)
    display.flush()
    assert metrics.value("x11.requests",
                         type="configure_window") == before + 2
    assert server.window(win).width == 30


def test_wire_metrics_labeled_by_transport():
    """The x11.wire.* series are pinned to {client=, transport=} labels.

    Mixed-transport fleet cells must keep loopback and socket traffic
    as separate series; an unlabeled (or client-only) series coming
    back would silently fold both paths into one.
    """
    server = XServer()
    app = TkApp(server, name="traffic", buffering_enabled=True)
    app.interp.stdout = io.StringIO()
    app.update()
    metrics = server.obs.metrics
    number = str(app.display.client.number)
    label = {"client": number, "transport": "loopback"}
    assert metrics.value("x11.wire.bytes_out", **label) > 0
    assert metrics.value("x11.wire.bytes_in", **label) > 0
    rtt = metrics.get("x11.wire.rtt_ms", **label)
    assert rtt is not None
    assert rtt.labels == (("client", number), ("transport", "loopback"))
    # No legacy client-only series may coexist with the labeled ones.
    assert metrics.get("x11.wire.bytes_out", client=number) is None
    assert metrics.get("x11.wire.bytes_in", client=number) is None
    assert metrics.get("x11.wire.rtt_ms", client=number) is None
