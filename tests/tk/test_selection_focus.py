"""Tests for the selection (section 3.6) and focus management (3.7)."""

import pytest

from repro.tcl import TclError


def make_listbox(app, path=".l", items=("alpha", "beta", "gamma")):
    app.interp.eval("listbox %s" % path)
    app.interp.eval("pack append . %s {top}" % path)
    app.update()
    app.interp.eval("%s insert end %s" % (path, " ".join(items)))
    return app.window(path)


class TestSelectionWithinApp:
    def test_owner_answers_directly(self, app):
        make_listbox(app)
        app.interp.eval(".l select from 0")
        assert app.interp.eval("selection get") == "alpha"

    def test_multiple_items_newline_separated(self, app):
        make_listbox(app)
        app.interp.eval(".l select from 0")
        app.interp.eval(".l select extend 2")
        value = app.interp.eval("selection get")
        assert value.split("\n") == ["alpha", "beta", "gamma"]

    def test_selection_get_without_owner_is_error(self, app):
        with pytest.raises(TclError):
            app.interp.eval("selection get")

    def test_selection_own_reports_owner(self, app):
        make_listbox(app)
        app.interp.eval(".l select from 1")
        assert app.interp.eval("selection own") == ".l"

    def test_tcl_selection_handler(self, app):
        """Selection handlers may be written in Tcl (section 3.6)."""
        app.interp.eval("frame .f")
        app.interp.eval('selection handle .f {format "handler value"}')
        app.interp.eval("selection own .f")
        assert app.interp.eval("selection get") == "handler value"


class TestSelectionAcrossApps:
    def test_cross_application_retrieval(self, app, second_app):
        make_listbox(app)
        app.interp.eval(".l select from 1")
        assert second_app.interp.eval("selection get") == "beta"

    def test_new_owner_notifies_old(self, app, second_app):
        """When another application claims the selection, the previous
        owner is told it has lost it (ICCCM via Tk)."""
        lst = make_listbox(app)
        app.interp.eval(".l select from 0")
        make_listbox(second_app, ".m", ("x", "y"))
        second_app.interp.eval(".m select from 0")
        app.update()
        # The first listbox's selection highlight was cleared.
        assert lst.widget.selected == set()

    def test_selection_follows_latest_owner(self, app, second_app):
        make_listbox(app)
        app.interp.eval(".l select from 0")
        make_listbox(second_app, ".m", ("xx", "yy"))
        second_app.interp.eval(".m select from 1")
        assert app.interp.eval("selection get") == "yy"


class TestFocus:
    def test_focus_query_default(self, app):
        assert app.interp.eval("focus") == "none"

    def test_keystrokes_redirected_to_focus(self, app, server):
        """All keystrokes in any window of the application are directed
        to the focus window (section 3.7's dialog-box scenario)."""
        app.interp.eval("entry .e")
        app.interp.eval("frame .other -geometry 50x50")
        app.interp.eval("pack append . .e {top} .other {top}")
        app.update()
        app.interp.eval("focus .e")
        other = app.window(".other")
        for key in "hi":
            server.press_key(key, window_id=other.id)
        app.update()
        assert app.interp.eval(".e get") == "hi"

    def test_focus_reassignment(self, app, server):
        app.interp.eval("entry .a")
        app.interp.eval("entry .b")
        app.interp.eval("pack append . .a {top} .b {top}")
        app.update()
        app.interp.eval("focus .a")
        server.press_key("x", window_id=app.main.id)
        app.update()
        app.interp.eval("focus .b")
        server.press_key("y", window_id=app.main.id)
        app.update()
        assert app.interp.eval(".a get") == "x"
        assert app.interp.eval(".b get") == "y"

    def test_focus_none(self, app, server):
        app.interp.eval("entry .e")
        app.interp.eval("pack append . .e {top}")
        app.update()
        app.interp.eval("focus .e")
        app.interp.eval("focus none")
        assert app.interp.eval("focus") == "none"

    def test_focus_on_destroyed_window_cleared(self, app):
        app.interp.eval("entry .e")
        app.interp.eval("focus .e")
        app.interp.eval("destroy .e")
        assert app.interp.eval("focus") == "none"


class TestCutBuffer:
    def test_set_and_get(self, app):
        app.interp.eval("cutbuffer set {some text}")
        assert app.interp.eval("cutbuffer get") == "some text"

    def test_cross_application(self, app, second_app):
        """Cut buffers live on the root window, visible to everyone —
        but they carry only passive strings (paper section 6)."""
        app.interp.eval("cutbuffer set {shared data}")
        assert second_app.interp.eval("cutbuffer get") == "shared data"

    def test_numbered_buffers_independent(self, app):
        app.interp.eval("cutbuffer set 0 zero")
        app.interp.eval("cutbuffer set 1 one")
        assert app.interp.eval("cutbuffer get 0") == "zero"
        assert app.interp.eval("cutbuffer get 1") == "one"

    def test_empty_buffer_reads_empty(self, app):
        assert app.interp.eval("cutbuffer get 7") == ""

    def test_bad_number(self, app):
        from repro.tcl import TclError
        import pytest
        with pytest.raises(TclError):
            app.interp.eval("cutbuffer get 9")
