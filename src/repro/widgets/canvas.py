"""Canvas widget: structured graphics — the extension the paper
promises in section 5 ("I plan to enhance wish with drawing commands
for shapes and text; once this is done it will be possible to code a
large class of interesting applications entirely in Tcl").

The canvas holds *items* — lines, rectangles, ovals, text, bitmaps —
each with a numeric id and optional symbolic *tags*.  Items are
created, reconfigured, moved, queried, and deleted entirely from Tcl::

    canvas .c -width 300 -height 200
    .c create rectangle 10 10 60 40 -fill red -tags box
    .c create text 35 25 -text hi
    .c move box 5 0
    .c coords box                   ;# -> "15 10 65 40"
    .c bind box <Button-1> {print "box clicked"}

Item bindings work like window bindings (Figure 7) but trigger on the
item under the pointer, which is what makes the paper's hypertext and
paint scenarios natural to write in Tcl.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tcl.errors import TclError
from ..tcl.lists import format_list, parse_list
from ..tcl.strings import _to_int
from ..tk.bind import parse_sequence, substitute_percents
from ..tk.widget import OptionSpec, Widget
from ..x11 import events as ev
from ..x11.resources import parse_color

_ITEM_TYPES = ("line", "rectangle", "oval", "text", "bitmap")

#: Item option -> which item types accept it.
_ITEM_OPTIONS = {
    "fill": _ITEM_TYPES,
    "outline": ("rectangle", "oval"),
    "width": ("line", "rectangle", "oval"),
    "text": ("text",),
    "anchor": ("text", "bitmap"),
    "bitmap": ("bitmap",),
    "tags": _ITEM_TYPES,
}

_COORD_COUNT = {
    "line": (4, None),        # at least 4, any even number
    "rectangle": (4, 4),
    "oval": (4, 4),
    "text": (2, 2),
    "bitmap": (2, 2),
}


@dataclass
class CanvasItem:
    """One item on the canvas."""

    item_id: int
    item_type: str
    coords: List[int]
    options: Dict[str, str] = field(default_factory=dict)

    @property
    def tags(self) -> List[str]:
        raw = self.options.get("tags", "")
        return parse_list(raw) if raw else []

    def bbox(self) -> Tuple[int, int, int, int]:
        xs = self.coords[0::2]
        ys = self.coords[1::2]
        if self.item_type == "text":
            text = self.options.get("text", "")
            return (xs[0], ys[0], xs[0] + 6 * len(text), ys[0] + 13)
        return (min(xs), min(ys), max(xs), max(ys))

    def contains(self, x: int, y: int, slop: int = 1) -> bool:
        x1, y1, x2, y2 = self.bbox()
        return (x1 - slop <= x <= x2 + slop and
                y1 - slop <= y <= y2 + slop)

    def move(self, dx: int, dy: int) -> None:
        for index in range(0, len(self.coords), 2):
            self.coords[index] += dx
            self.coords[index + 1] += dy


class Canvas(Widget):
    widget_class = "Canvas"
    option_specs = (
        OptionSpec("background", "background", "Background", "white",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
                   synonyms=("bd",)),
        OptionSpec("height", "height", "Height", "200"),
        OptionSpec("relief", "relief", "Relief", "sunken"),
        OptionSpec("width", "width", "Width", "300"),
    )

    def __init__(self, app, path: str, argv):
        self.items: Dict[int, CanvasItem] = {}
        self._order: List[int] = []
        self._next_id = 1
        #: (tag-or-id, sequence) -> script
        self._item_bindings: Dict[Tuple[str, str], str] = {}
        self._current_item: Optional[int] = None
        super().__init__(app, path, argv)
        self.window.add_event_handler(
            ev.BUTTON_PRESS_MASK | ev.BUTTON_RELEASE_MASK |
            ev.POINTER_MOTION_MASK, self._on_event)

    # -- geometry ----------------------------------------------------------

    def preferred_size(self) -> Tuple[int, int]:
        border = self.int_option("borderwidth")
        return (self.int_option("width") + 2 * border,
                self.int_option("height") + 2 * border)

    # -- item management ----------------------------------------------------

    def cmd_create(self, args: List[str]) -> str:
        """create type coords... ?-option value ...?"""
        if not args:
            raise TclError(
                'wrong # args: should be "%s create type coords '
                '?options?"' % self.path)
        item_type = args[0]
        if item_type not in _ITEM_TYPES:
            raise TclError(
                'unknown item type "%s": must be %s'
                % (item_type, ", ".join(_ITEM_TYPES)))
        coords: List[int] = []
        position = 1
        while position < len(args) and not args[position].startswith("-"):
            coords.append(_to_int(args[position]))
            position += 1
        self._check_coords(item_type, coords)
        options = self._parse_item_options(item_type, args[position:])
        item = CanvasItem(self._next_id, item_type, coords, options)
        self._next_id += 1
        self.items[item.item_id] = item
        self._order.append(item.item_id)
        self.schedule_redraw()
        return str(item.item_id)

    def _check_coords(self, item_type: str, coords: List[int]) -> None:
        minimum, maximum = _COORD_COUNT[item_type]
        if len(coords) < minimum or len(coords) % 2 != 0 or \
                (maximum is not None and len(coords) > maximum):
            raise TclError(
                'wrong # coordinates for %s item' % item_type)

    def _parse_item_options(self, item_type: str,
                            args: Sequence[str]) -> Dict[str, str]:
        if len(args) % 2 != 0:
            raise TclError('value for "%s" missing' % args[-1])
        options: Dict[str, str] = {}
        for position in range(0, len(args), 2):
            name = args[position]
            if not name.startswith("-") or \
                    name[1:] not in _ITEM_OPTIONS:
                raise TclError('unknown item option "%s"' % name)
            if item_type not in _ITEM_OPTIONS[name[1:]]:
                raise TclError(
                    'option "%s" isn\'t valid for %s items'
                    % (name, item_type))
            value = args[position + 1]
            if name[1:] in ("fill", "outline") and value and \
                    parse_color(value) is None:
                raise TclError('unknown color name "%s"' % value)
            options[name[1:]] = value
        return options

    def _find(self, tag_or_id: str) -> List[CanvasItem]:
        """Items matching a numeric id, a tag, or 'all'/'current'."""
        if tag_or_id == "all":
            return [self.items[item_id] for item_id in self._order]
        if tag_or_id == "current":
            if self._current_item in self.items:
                return [self.items[self._current_item]]
            return []
        if tag_or_id.isdigit():
            item = self.items.get(int(tag_or_id))
            return [item] if item is not None else []
        return [self.items[item_id] for item_id in self._order
                if tag_or_id in self.items[item_id].tags]

    def _one(self, tag_or_id: str) -> CanvasItem:
        found = self._find(tag_or_id)
        if not found:
            raise TclError(
                'item "%s" doesn\'t exist' % tag_or_id)
        return found[0]

    # -- widget commands over items -------------------------------------

    def cmd_coords(self, args: List[str]) -> str:
        """coords tagOrId ?x1 y1 ...? — query or set coordinates."""
        if not args:
            raise TclError(
                'wrong # args: should be "%s coords tagOrId ?coords?"'
                % self.path)
        item = self._one(args[0])
        if len(args) == 1:
            return " ".join(str(value) for value in item.coords)
        coords = [_to_int(value) for value in args[1:]]
        self._check_coords(item.item_type, coords)
        item.coords = coords
        self.schedule_redraw()
        return ""

    def cmd_move(self, args: List[str]) -> str:
        if len(args) != 3:
            raise TclError(
                'wrong # args: should be "%s move tagOrId dx dy"'
                % self.path)
        dx, dy = _to_int(args[1]), _to_int(args[2])
        for item in self._find(args[0]):
            item.move(dx, dy)
        self.schedule_redraw()
        return ""

    def cmd_delete(self, args: List[str]) -> str:
        for tag_or_id in args:
            for item in self._find(tag_or_id):
                self.items.pop(item.item_id, None)
                if item.item_id in self._order:
                    self._order.remove(item.item_id)
        self.schedule_redraw()
        return ""

    def cmd_itemconfigure(self, args: List[str]) -> str:
        if len(args) < 1:
            raise TclError(
                'wrong # args: should be "%s itemconfigure tagOrId '
                '?option value ...?"' % self.path)
        items = self._find(args[0])
        if not items:
            raise TclError('item "%s" doesn\'t exist' % args[0])
        if len(args) == 2:
            name = args[1]
            if not name.startswith("-") or \
                    name[1:] not in _ITEM_OPTIONS:
                raise TclError('unknown item option "%s"' % name)
            return items[0].options.get(name[1:], "")
        for item in items:
            item.options.update(
                self._parse_item_options(item.item_type, args[1:]))
        self.schedule_redraw()
        return ""

    def cmd_type(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s type tagOrId"'
                           % self.path)
        return self._one(args[0]).item_type

    def cmd_bbox(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s bbox tagOrId"'
                           % self.path)
        boxes = [item.bbox() for item in self._find(args[0])]
        if not boxes:
            return ""
        x1 = min(box[0] for box in boxes)
        y1 = min(box[1] for box in boxes)
        x2 = max(box[2] for box in boxes)
        y2 = max(box[3] for box in boxes)
        return "%d %d %d %d" % (x1, y1, x2, y2)

    def cmd_find(self, args: List[str]) -> str:
        """find withtag t | find closest x y | find overlapping x1 y1 x2 y2"""
        if not args:
            raise TclError(
                'wrong # args: should be "%s find searchSpec ?args?"'
                % self.path)
        mode = args[0]
        if mode == "withtag":
            return " ".join(str(item.item_id)
                            for item in self._find(args[1]))
        if mode == "closest":
            x, y = _to_int(args[1]), _to_int(args[2])
            best = None
            best_distance = None
            for item_id in self._order:
                item = self.items[item_id]
                x1, y1, x2, y2 = item.bbox()
                cx = min(max(x, x1), x2)
                cy = min(max(y, y1), y2)
                distance = (cx - x) ** 2 + (cy - y) ** 2
                if best_distance is None or distance < best_distance:
                    best, best_distance = item, distance
            return str(best.item_id) if best is not None else ""
        if mode == "overlapping":
            x1, y1, x2, y2 = (_to_int(value) for value in args[1:5])
            hits = []
            for item_id in self._order:
                bx1, by1, bx2, by2 = self.items[item_id].bbox()
                if bx1 <= x2 and bx2 >= x1 and by1 <= y2 and by2 >= y1:
                    hits.append(str(item_id))
            return " ".join(hits)
        raise TclError(
            'bad search spec "%s": must be closest, overlapping, or '
            'withtag' % mode)

    def cmd_addtag(self, args: List[str]) -> str:
        if len(args) != 3 or args[1] != "withtag":
            raise TclError(
                'wrong # args: should be "%s addtag tag withtag tagOrId"'
                % self.path)
        for item in self._find(args[2]):
            tags = item.tags
            if args[0] not in tags:
                tags.append(args[0])
                item.options["tags"] = format_list(tags)
        return ""

    def cmd_gettags(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s gettags tagOrId"'
                           % self.path)
        return format_list(self._one(args[0]).tags)

    # -- item bindings ---------------------------------------------------

    def cmd_bind(self, args: List[str]) -> str:
        """bind tagOrId ?sequence? ?script?"""
        if len(args) not in (1, 2, 3):
            raise TclError(
                'wrong # args: should be "%s bind tagOrId ?sequence? '
                '?command?"' % self.path)
        if len(args) == 1:
            return format_list(sorted(
                sequence for (tag, sequence) in self._item_bindings
                if tag == args[0]))
        if len(args) == 2:
            return self._item_bindings.get((args[0], args[1]), "")
        parse_sequence(args[1])   # validate
        if args[2]:
            self._item_bindings[(args[0], args[1])] = args[2]
        else:
            self._item_bindings.pop((args[0], args[1]), None)
        return ""

    def _on_event(self, event) -> None:
        self._current_item = self._item_at(event.x, event.y)
        if self._current_item is None:
            return
        item = self.items[self._current_item]
        for (tag, sequence), script in list(self._item_bindings.items()):
            if tag != str(item.item_id) and tag not in item.tags and \
                    tag != "all":
                continue
            patterns = parse_sequence(sequence)
            if len(patterns) == 1 and patterns[0].count == 1 and \
                    patterns[0].matches(event):
                self.app.interp.eval_global(
                    substitute_percents(script, event, self.window))

    def _item_at(self, x: int, y: int) -> Optional[int]:
        for item_id in reversed(self._order):
            if self.items[item_id].contains(x, y):
                return item_id
        return None

    # -- drawing ----------------------------------------------------------

    def draw(self) -> None:
        display = self.app.display
        for item_id in self._order:
            item = self.items[item_id]
            gc = self._item_gc(item)
            if item.item_type == "line":
                for index in range(0, len(item.coords) - 2, 2):
                    display.draw_line(self.window.id, gc,
                                      item.coords[index],
                                      item.coords[index + 1],
                                      item.coords[index + 2],
                                      item.coords[index + 3])
            elif item.item_type in ("rectangle", "oval"):
                x1, y1, x2, y2 = item.bbox()
                if item.options.get("fill"):
                    display.fill_rectangle(self.window.id, gc, x1, y1,
                                           x2 - x1, y2 - y1)
                display.draw_rectangle(self.window.id, gc, x1, y1,
                                       x2 - x1, y2 - y1)
            elif item.item_type == "text":
                display.draw_string(self.window.id, gc,
                                    item.coords[0], item.coords[1],
                                    item.options.get("text", ""))
            elif item.item_type == "bitmap":
                name = item.options.get("bitmap", "gray50")
                bitmap = self.app.cache.bitmap(name)
                display.draw_rectangle(self.window.id, gc,
                                       item.coords[0], item.coords[1],
                                       bitmap.width, bitmap.height)
        self.draw_border()

    def _item_gc(self, item: CanvasItem):
        color_name = item.options.get("fill") or \
            item.options.get("outline") or "black"
        rgb = parse_color(color_name)
        pixel = (rgb[0] << 16 | rgb[1] << 8 | rgb[2]) if rgb else 0
        return self.app.cache.gc(foreground=pixel)
