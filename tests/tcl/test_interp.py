"""Tests for the interpreter core: evaluation, substitution, variables,
procedures, application commands, and error reporting."""

import io

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def interp():
    return Interp(stdout=io.StringIO())


class TestEvaluation:
    def test_result_is_last_command(self, interp):
        assert interp.eval("set a 1; set b 2") == "2"

    def test_commands_return_strings(self, interp):
        assert interp.eval("set a 1000") == "1000"

    def test_empty_script_returns_empty(self, interp):
        assert interp.eval("") == ""
        assert interp.eval("   \n  ") == ""

    def test_unknown_command_is_error(self, interp):
        with pytest.raises(TclError, match="invalid command name"):
            interp.eval("nosuchcommand a b")

    def test_variable_substitution(self, interp):
        interp.eval("set msg hello")
        assert interp.eval("set copy $msg") == "hello"

    def test_command_substitution(self, interp):
        assert interp.eval("set msg [format {x is %s} 42]") == "x is 42"

    def test_substitution_result_is_single_word(self, interp):
        # "a b" substitutes as ONE argument, not two.
        interp.eval('set pair "a b"')
        assert interp.eval("llength [list $pair]") == "1"

    def test_nested_command_substitution(self, interp):
        assert interp.eval("set x [format %s [format %s deep]]") == "deep"

    def test_braces_defer_evaluation(self, interp):
        interp.eval("set body {set inner 42}")
        interp.eval("eval $body")
        assert interp.eval("set inner") == "42"

    def test_infinite_recursion_detected(self, interp):
        interp.eval("proc loop {} {loop}")
        with pytest.raises(TclError, match="too many nested calls"):
            interp.eval("loop")


class TestApplicationCommands:
    """Application-specific commands are indistinguishable from
    built-ins (paper Figure 6)."""

    def test_register_and_call(self, interp):
        interp.register("double", lambda ip, argv: str(2 * int(argv[1])))
        assert interp.eval("double 21") == "42"

    def test_none_result_becomes_empty_string(self, interp):
        interp.register("noop", lambda ip, argv: None)
        assert interp.eval("noop") == ""

    def test_commands_composable_with_builtins(self, interp):
        interp.register("double", lambda ip, argv: str(2 * int(argv[1])))
        assert interp.eval("expr [double 4]+[double 5]") == "18"

    def test_delete_command(self, interp):
        interp.register("gone", lambda ip, argv: "x")
        interp.unregister("gone")
        with pytest.raises(TclError):
            interp.eval("gone")

    def test_rename_command(self, interp):
        interp.eval("proc orig {} {return hi}")
        interp.eval("rename orig renamed")
        assert interp.eval("renamed") == "hi"
        with pytest.raises(TclError):
            interp.eval("orig")

    def test_builtin_can_be_replaced(self, interp):
        interp.register("set", lambda ip, argv: "hijacked")
        assert interp.eval("set a 1") == "hijacked"

    def test_unknown_hook(self, interp):
        interp.eval('proc unknown args {return "caught: $args"}')
        result = interp.eval("nosuch a b")
        assert "nosuch" in result


class TestVariables:
    def test_read_unset_variable_is_error(self, interp):
        with pytest.raises(TclError, match="no such variable"):
            interp.eval("set novar")

    def test_unset(self, interp):
        interp.eval("set a 1")
        interp.eval("unset a")
        with pytest.raises(TclError):
            interp.eval("set a")

    def test_incr(self, interp):
        interp.eval("set n 5")
        assert interp.eval("incr n") == "6"
        assert interp.eval("incr n 10") == "16"
        assert interp.eval("incr n -1") == "15"

    def test_append(self, interp):
        interp.eval("set s abc")
        assert interp.eval("append s def ghi") == "abcdefghi"

    def test_append_creates_variable(self, interp):
        assert interp.eval("append fresh xy") == "xy"

    def test_array_elements(self, interp):
        interp.eval("set a(one) 1")
        interp.eval("set a(two) 2")
        assert interp.eval("set a(one)") == "1"
        assert interp.eval("array size a") == "2"
        assert interp.eval("lsort [array names a]") == "one two"

    def test_array_variable_index_substitution(self, interp):
        interp.eval("set key one")
        interp.eval("set a(one) 1")
        assert interp.eval("set a($key)") == "1"

    def test_scalar_used_as_array_is_error(self, interp):
        interp.eval("set a 1")
        with pytest.raises(TclError, match="isn't array"):
            interp.eval("set a(x) 1")

    def test_array_used_as_scalar_is_error(self, interp):
        interp.eval("set a(x) 1")
        with pytest.raises(TclError, match="is array"):
            interp.eval("set a")

    def test_array_set_and_get(self, interp):
        interp.eval("array set color {red ff0000 green 00ff00}")
        assert interp.eval("set color(red)") == "ff0000"
        assert interp.eval("array get color green") == "green 00ff00"


class TestProcedures:
    def test_simple_proc(self, interp):
        interp.eval("proc add {a b} {expr $a+$b}")
        assert interp.eval("add 2 3") == "5"

    def test_return_stops_body(self, interp):
        interp.eval("proc f {} {return early; set never 1}")
        assert interp.eval("f") == "early"
        assert interp.eval("info exists never") == "0"

    def test_implicit_result_is_last_command(self, interp):
        interp.eval("proc f {} {set x 99}")
        assert interp.eval("f") == "99"

    def test_default_arguments(self, interp):
        interp.eval("proc greet {{name world}} {return hello-$name}")
        assert interp.eval("greet") == "hello-world"
        assert interp.eval("greet tcl") == "hello-tcl"

    def test_args_collects_rest(self, interp):
        interp.eval("proc count args {llength $args}")
        assert interp.eval("count a b c") == "3"
        assert interp.eval("count") == "0"

    def test_too_few_arguments_is_error(self, interp):
        interp.eval("proc two {a b} {}")
        with pytest.raises(TclError, match="no value given"):
            interp.eval("two 1")

    def test_too_many_arguments_is_error(self, interp):
        interp.eval("proc one {a} {}")
        with pytest.raises(TclError, match="too many arguments"):
            interp.eval("one 1 2")

    def test_locals_are_private(self, interp):
        interp.eval("set x global-x")
        interp.eval("proc f {} {set x local-x}")
        interp.eval("f")
        assert interp.eval("set x") == "global-x"

    def test_global_links_to_global_frame(self, interp):
        interp.eval("set counter 0")
        interp.eval("proc bump {} {global counter; incr counter}")
        interp.eval("bump")
        interp.eval("bump")
        assert interp.eval("set counter") == "2"

    def test_upvar(self, interp):
        interp.eval("proc swap {an bn} {upvar $an a $bn b\n"
                    "set t $a; set a $b; set b $t}")
        interp.eval("set x 1; set y 2")
        interp.eval("swap x y")
        assert interp.eval("set x") == "2"
        assert interp.eval("set y") == "1"

    def test_uplevel(self, interp):
        interp.eval("proc setter {} {uplevel {set made-here 42}}")
        interp.eval("proc caller {} {setter; set made-here}")
        assert interp.eval("caller") == "42"

    def test_uplevel_absolute_level(self, interp):
        interp.eval("proc f {} {uplevel #0 {set topvar 7}}")
        interp.eval("f")
        assert interp.eval("set topvar") == "7"

    def test_recursion(self, interp):
        interp.eval("proc fib n {if $n<2 {return $n}\n"
                    "expr [fib [expr $n-1]]+[fib [expr $n-2]]}")
        assert interp.eval("fib 10") == "55"

    def test_proc_introspection(self, interp):
        interp.eval("proc f {a {b 2}} {body text}")
        assert interp.eval("info args f") == "a b"
        assert interp.eval("info body f") == "body text"
        assert interp.eval("info default f b v") == "1"
        assert interp.eval("set v") == "2"

    def test_proc_synthesized_at_runtime(self, interp):
        # Programs have the same form as data: build a proc from strings.
        interp.eval('set name adder')
        interp.eval('set body {expr $a+$a}')
        interp.eval('proc $name {a} $body')
        assert interp.eval("adder 4") == "8"


class TestControlFlow:
    def test_if_else(self, interp):
        assert interp.eval("if 0 {set a 1} else {set a 2}") == "2"

    def test_if_elseif(self, interp):
        interp.eval("set x 5")
        result = interp.eval(
            "if {$x < 0} {set r neg} elseif {$x == 0} {set r zero} "
            "else {set r pos}")
        assert result == "pos"

    def test_if_then_keyword(self, interp):
        assert interp.eval("if 1 then {set a 3}") == "3"

    def test_while_loop(self, interp):
        interp.eval("set i 0; set total 0")
        interp.eval("while {$i < 5} {incr total $i; incr i}")
        assert interp.eval("set total") == "10"

    def test_while_break(self, interp):
        interp.eval("set i 0")
        interp.eval("while 1 {incr i; if {$i >= 3} {break}}")
        assert interp.eval("set i") == "3"

    def test_while_continue(self, interp):
        interp.eval("set i 0; set odd 0")
        interp.eval("while {$i < 6} {incr i; if {$i % 2 == 0} {continue}\n"
                    "incr odd}")
        assert interp.eval("set odd") == "3"

    def test_for_loop(self, interp):
        interp.eval("set total 0")
        interp.eval("for {set i 1} {$i <= 4} {incr i} {incr total $i}")
        assert interp.eval("set total") == "10"

    def test_for_break_and_continue(self, interp):
        interp.eval("set seen {}")
        interp.eval("for {set i 0} {$i < 10} {incr i} {"
                    "if {$i == 2} {continue}\n"
                    "if {$i == 5} {break}\n"
                    "lappend seen $i}")
        assert interp.eval("set seen") == "0 1 3 4"

    def test_foreach(self, interp):
        interp.eval("set total 0")
        interp.eval("foreach i {1 2 3 4} {incr total $i}")
        assert interp.eval("set total") == "10"

    def test_foreach_multiple_variables(self, interp):
        interp.eval("set pairs {}")
        interp.eval("foreach {k v} {a 1 b 2} {lappend pairs $k=$v}")
        assert interp.eval("set pairs") == "a=1 b=2"

    def test_case_command(self, interp):
        interp.eval("proc classify x {case $x in {[0-9]} {return digit} "
                    "{[a-z]*} {return word} default {return other}}")
        assert interp.eval("classify 5") == "digit"
        assert interp.eval("classify hello") == "word"
        assert interp.eval("classify !") == "other"

    def test_break_outside_loop_is_error(self, interp):
        interp.eval("proc f {} {break}")
        with pytest.raises(TclError, match="break"):
            interp.eval("f")


class TestErrors:
    def test_catch_returns_code(self, interp):
        assert interp.eval("catch {set a 1}") == "0"
        assert interp.eval("catch {error boom}") == "1"
        assert interp.eval("catch {nosuchcmd}") == "1"

    def test_catch_captures_message(self, interp):
        interp.eval("catch {error boom} msg")
        assert interp.eval("set msg") == "boom"

    def test_catch_captures_result_on_success(self, interp):
        interp.eval("catch {format ok} msg")
        assert interp.eval("set msg") == "ok"

    def test_catch_return_code(self, interp):
        assert interp.eval("catch {return val} msg") == "2"
        assert interp.eval("set msg") == "val"

    def test_error_command_message(self, interp):
        with pytest.raises(TclError, match="boom"):
            interp.eval("error boom")

    def test_error_info_accumulates_trace(self, interp):
        interp.eval("proc inner {} {error deep}")
        interp.eval("proc outer {} {inner}")
        with pytest.raises(TclError):
            interp.eval_top("outer")
        info = interp.get_global_var("errorInfo")
        assert "deep" in info
        assert "inner" in info
        assert "outer" in info

    def test_wrong_args_messages(self, interp):
        with pytest.raises(TclError, match="wrong # args"):
            interp.eval("set")
        with pytest.raises(TclError, match="wrong # args"):
            interp.eval("incr")


class TestOutput:
    def test_print_writes_verbatim(self):
        out = io.StringIO()
        interp = Interp(stdout=out)
        interp.eval(r'print "hi\n"')
        interp.eval("print no-newline")
        assert out.getvalue() == "hi\nno-newline"

    def test_puts_appends_newline(self):
        out = io.StringIO()
        interp = Interp(stdout=out)
        interp.eval("puts hello")
        interp.eval("puts -nonewline there")
        assert out.getvalue() == "hello\nthere"


class TestTimeCommand:
    def test_time_reports_microseconds(self, interp):
        result = interp.eval("time {set a 1} 10")
        assert result.endswith("microseconds per iteration")
