"""Unit tests for the Tcl parser (paper Figures 1-5 syntax)."""

import pytest

from repro.tcl import TclParseError, parse_script
from repro.tcl.parser import CmdSub, Literal, VarSub


def words_of(script, command=0):
    return parse_script(script)[command].words


class TestBasicCommands:
    def test_fields_separated_by_whitespace(self):
        words = words_of("set a 1000")
        assert len(words) == 3
        assert words[0].parts == (Literal("set"),)
        assert words[2].parts == (Literal("1000"),)

    def test_semicolon_separates_commands(self):
        commands = parse_script("print foo; print bar")
        assert len(commands) == 2
        assert commands[1].words[1].parts == (Literal("bar"),)

    def test_newline_separates_commands(self):
        commands = parse_script("print foo\nprint bar")
        assert len(commands) == 2

    def test_tabs_separate_words(self):
        words = words_of("a\tb\tc")
        assert len(words) == 3

    def test_empty_script_has_no_commands(self):
        assert parse_script("") == []

    def test_blank_lines_and_semicolons_skipped(self):
        assert len(parse_script("\n\n;;\n  \nset a 1\n\n")) == 1

    def test_source_text_recorded(self):
        commands = parse_script("set a 1\nset b 2")
        assert commands[0].source == "set a 1"
        assert commands[1].source == "set b 2"


class TestComments:
    def test_hash_at_command_start_is_comment(self):
        commands = parse_script("# a comment\nset a 1")
        assert len(commands) == 1

    def test_hash_after_semicolon_is_comment(self):
        commands = parse_script("set a 1; # trailing\nset b 2")
        assert len(commands) == 2

    def test_hash_inside_word_is_literal(self):
        words = words_of("set a x#y")
        assert words[2].parts == (Literal("x#y"),)

    def test_backslash_newline_continues_comment(self):
        commands = parse_script("# comment \\\nstill comment\nset a 1")
        assert len(commands) == 1

    def test_wish_script_header_line(self):
        commands = parse_script("#!wish -f\nset a 1")
        assert len(commands) == 1


class TestBraces:
    def test_braced_word_is_single_literal(self):
        words = words_of("set x {a b {x1 x2}}")
        assert words[2].braced
        assert words[2].parts == (Literal("a b {x1 x2}"),)

    def test_no_substitution_inside_braces(self):
        words = words_of("set x {$a [b] \\n}")
        assert words[2].parts == (Literal("$a [b] \\n"),)

    def test_newlines_not_separators_inside_braces(self):
        commands = parse_script("proc p {} {\nset a 1\nset b 2\n}")
        assert len(commands) == 1
        assert commands[0].words[3].parts == (Literal("\nset a 1\nset b 2\n"),)

    def test_backslash_newline_inside_braces_becomes_space(self):
        words = words_of("set x {a\\\nb}")
        assert words[2].parts == (Literal("a b"),)

    def test_escaped_brace_does_not_nest(self):
        words = words_of(r"set x {a\{b}")
        assert words[2].parts == (Literal(r"a\{b"),)

    def test_missing_close_brace_raises(self):
        with pytest.raises(TclParseError):
            parse_script("set x {a b")

    def test_text_after_close_brace_raises(self):
        with pytest.raises(TclParseError):
            parse_script("set x {a}b")

    def test_brace_inside_bare_word_is_literal(self):
        words = words_of("set x a{b")
        assert words[2].parts == (Literal("a{b"),)


class TestQuotes:
    def test_quoted_word_allows_spaces(self):
        words = words_of('set msg "Hello, world"')
        assert words[2].parts == (Literal("Hello, world"),)

    def test_substitutions_inside_quotes(self):
        words = words_of('set msg "x is $x"')
        assert words[2].parts == (Literal("x is "), VarSub("x"))

    def test_command_substitution_inside_quotes(self):
        words = words_of('set msg "got [foo]"')
        assert words[2].parts == (Literal("got "), CmdSub("foo"))

    def test_missing_close_quote_raises(self):
        with pytest.raises(TclParseError):
            parse_script('set msg "abc')

    def test_text_after_close_quote_raises(self):
        with pytest.raises(TclParseError):
            parse_script('set msg "abc"def')

    def test_empty_quoted_word(self):
        words = words_of('set msg ""')
        assert words[2].parts == (Literal(""),)


class TestVariableSubstitution:
    def test_dollar_name(self):
        words = words_of("print $msg")
        assert words[1].parts == (VarSub("msg"),)

    def test_dollar_in_middle_of_word(self):
        words = words_of("print a$b/c")
        assert words[1].parts == (Literal("a"), VarSub("b"), Literal("/c"))

    def test_braced_variable_name(self):
        words = words_of("print ${strange name}x")
        assert words[1].parts == (VarSub("strange name"), Literal("x"))

    def test_lone_dollar_is_literal(self):
        words = words_of("print a$ b")
        assert words[1].parts == (Literal("a$"),)

    def test_array_reference(self):
        words = words_of("print $a(b)")
        part = words[1].parts[0]
        assert part.name == "a"
        assert part.index.parts == (Literal("b"),)

    def test_array_index_with_substitution(self):
        words = words_of("print $a($i)")
        part = words[1].parts[0]
        assert part.index.parts == (VarSub("i"),)

    def test_variable_name_stops_at_non_alnum(self):
        words = words_of("print $a.b")
        assert words[1].parts == (VarSub("a"), Literal(".b"))


class TestCommandSubstitution:
    def test_brackets_produce_cmdsub(self):
        words = words_of("print [list q r]")
        assert words[1].parts == (CmdSub("list q r"),)

    def test_nested_brackets(self):
        words = words_of("print [a [b c]]")
        assert words[1].parts == (CmdSub("a [b c]"),)

    def test_brackets_with_braces_inside(self):
        words = words_of("print [a {]}]")
        assert words[1].parts == (CmdSub("a {]}"),)

    def test_brackets_with_quotes_inside(self):
        words = words_of('print [a "]"]')
        assert words[1].parts == (CmdSub('a "]"'),)

    def test_missing_close_bracket_raises(self):
        with pytest.raises(TclParseError):
            parse_script("print [foo")

    def test_cmdsub_adjacent_to_text(self):
        words = words_of("print x[foo]y")
        assert words[1].parts == (Literal("x"), CmdSub("foo"), Literal("y"))


class TestBackslashes:
    def test_newline_escape(self):
        words = words_of(r"print Hello!\n")
        assert words[1].parts == (Literal("Hello!\n"),)

    def test_escaped_specials(self):
        words = words_of(r"set msg \{\ and\ \}\ are\ special")
        assert words[2].parts == (Literal("{ and } are special"),)

    def test_backslash_newline_joins_lines(self):
        commands = parse_script("set a \\\n 1")
        assert len(commands) == 1
        assert len(commands[0].words) == 3

    def test_hex_escape(self):
        words = words_of(r"print \x41")
        assert words[1].parts == (Literal("A"),)

    def test_octal_escape(self):
        words = words_of(r"print \101")
        assert words[1].parts == (Literal("A"),)

    def test_escaped_dollar(self):
        words = words_of(r"print \$a")
        assert words[1].parts == (Literal("$a"),)

    def test_unknown_escape_is_literal_char(self):
        words = words_of(r"print \q")
        assert words[1].parts == (Literal("q"),)

    def test_tab_and_return_escapes(self):
        words = words_of(r"print \t\r\a\b\f\v")
        assert words[1].parts == (Literal("\t\r\a\b\f\v"),)
