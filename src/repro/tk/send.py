"""The ``send`` command (paper section 6).

``send`` is a remote-procedure-call facility: any Tk-based application
can invoke Tcl commands in any other Tk-based application on the same
display.  The implementation follows the paper:

* every application registers a unique name, recorded in a registry
  property on the display's *root* window;
* ``send name command`` locates the target by reading the registry,
  then forwards the command through properties on the target's
  communication window;
* the target's Tk executes the command in its interpreter and returns
  the result (or error) the same way.

Because both applications are clients of the same (simulated) X server,
this works between genuinely separate interpreters and widget trees —
the paper's replacement for monolithic applications.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..tcl.errors import TclError
from ..tcl.lists import format_list, parse_list
from ..x11 import events as ev

_REGISTRY_PROPERTY = "InterpRegistry"
_COMM_PROPERTY = "Comm"
_WAIT_ROUNDS = 10000

_serials = itertools.count(1)


class SendManager:
    """Registration and transport for the send command."""

    def __init__(self, app, requested_name: str):
        self.app = app
        display = app.display
        self.registry_atom = display.intern_atom(_REGISTRY_PROPERTY)
        self.comm_atom = display.intern_atom(_COMM_PROPERTY)
        self.string_atom = display.intern_atom("STRING")
        # The communication window: an unmapped child of the root.
        self.comm_window = display.create_window(display.root, 0, 0, 1, 1)
        display.select_input(self.comm_window, ev.PROPERTY_CHANGE_MASK)
        self.name = self._register(requested_name)
        #: serial -> (code, result) for completed sends
        self._results: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # the registry property on the root window
    # ------------------------------------------------------------------

    def _read_registry(self) -> Dict[str, int]:
        entry = self.app.display.get_property(self.app.display.root,
                                              self.registry_atom)
        registry: Dict[str, int] = {}
        if entry is not None and isinstance(entry[1], str):
            for line in parse_list(entry[1]):
                fields = parse_list(line)
                if len(fields) == 2 and fields[1].isdigit():
                    registry[fields[0]] = int(fields[1])
        return registry

    def _write_registry(self, registry: Dict[str, int]) -> None:
        value = format_list(
            format_list([name, str(window)])
            for name, window in sorted(registry.items()))
        self.app.display.change_property(self.app.display.root,
                                         self.registry_atom,
                                         self.string_atom, value)

    def _register(self, requested: str) -> str:
        registry = self._read_registry()
        name = requested
        suffix = 2
        while name in registry:
            name = "%s #%d" % (requested, suffix)
            suffix += 1
        registry[name] = self.comm_window
        self._write_registry(registry)
        return name

    def unregister(self) -> None:
        registry = self._read_registry()
        if registry.pop(self.name, None) is not None:
            self._write_registry(registry)

    def application_names(self) -> list:
        """All registered application names (the ``winfo interps`` set)."""
        return sorted(self._read_registry())

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, target_name: str, script: str) -> str:
        """Execute ``script`` in the application named ``target_name``."""
        registry = self._read_registry()
        target_window = registry.get(target_name)
        if target_window is None:
            raise TclError(
                'no registered interpreter named "%s"' % target_name)
        serial = next(_serials)
        request = format_list(["cmd", str(serial), str(self.comm_window),
                               script])
        try:
            # One list element per message: scripts may contain any
            # characters (including newlines), so the framing must not
            # depend on the payload.
            self.app.display.change_property(
                target_window, self.comm_atom, self.string_atom,
                [request], append=True)
        except Exception:
            raise TclError(
                'no registered interpreter named "%s"' % target_name)
        return self._wait_for_result(serial, target_name)

    def _wait_for_result(self, serial: int, target_name: str) -> str:
        from .app import pump_all
        for _ in range(_WAIT_ROUNDS):
            if serial in self._results:
                code, result = self._results.pop(serial)
                if code != "0":
                    raise TclError(result)
                return result
            pump_all(self.app.server, max_rounds=1)
        raise TclError('send to "%s" timed out' % target_name)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def maybe_handle(self, event) -> bool:
        """Intercept PropertyNotify on the comm window; True if consumed."""
        if event.type != ev.PROPERTY_NOTIFY or \
                event.window != self.comm_window or \
                event.atom != self.comm_atom or event.state == 1:
            return False
        entry = self.app.display.get_property(self.comm_window,
                                              self.comm_atom, delete=True)
        if entry is None:
            return True
        value = entry[1]
        if isinstance(value, str):
            messages = [value]
        else:
            messages = list(value)
        for message in messages:
            if str(message).strip():
                self._handle_message(str(message))
        return True

    def _handle_message(self, message: str) -> None:
        try:
            fields = parse_list(message)
        except TclError:
            return
        if len(fields) == 4 and fields[0] == "cmd":
            _, serial, reply_window, script = fields
            self._execute(serial, int(reply_window), script)
        elif len(fields) == 4 and fields[0] == "result":
            _, serial, code, result = fields
            self._results[int(serial)] = (code, result)

    def _execute(self, serial: str, reply_window: int, script: str) -> None:
        try:
            result = self.app.interp.eval_global(script)
            code = "0"
        except TclError as error:
            result = error.message
            code = "1"
        reply = format_list(["result", serial, code, result])
        try:
            self.app.display.change_property(
                reply_window, self.comm_atom, self.string_atom,
                [reply], append=True)
        except Exception:
            pass  # sender disappeared; nothing to reply to
