"""Figure 10 — screen dump of the running browser.

The paper's figure is a bitmap screenshot; the simulator regenerates
it as a character-cell rendering of the live window tree (listbox with
three darkened/selected items, scrollbar at the right, title set by
the window manager).
"""

import io
import os

import pytest

from repro.wish import Wish
from repro.x11 import Renderer, render_ppm

HERE = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(HERE, "..", "examples", "browse.tcl")


@pytest.fixture
def browser(tmp_path):
    for name in ("Makefile", "browse", "button.c", "listbox.c",
                 "main.c", "scrollbar.c"):
        (tmp_path / name).write_text(name)
    shell = Wish(name="browse", stdout=io.StringIO(),
                 argv=[str(tmp_path)])
    shell.run_file(SCRIPT)
    shell.interp.eval('wm title . "browse"')
    # Three darkened (selected) items, as in the paper's figure.
    shell.interp.eval(".list select from 3")
    shell.interp.eval(".list select extend 5")
    shell.app.update()
    return shell


def test_figure10_screen_dump(benchmark, browser):
    renderer = Renderer(browser.server, cell_width=6, cell_height=13)
    dump = benchmark(renderer.render_window, browser.app.main.id)
    print()
    print("=== Figure 10: screen dump of the browser ===")
    print(dump)
    flat = dump.replace("|", "").replace("#", "")
    # The directory contents are visible...
    assert "rowse" in dump            # "browse" (first cell may border)
    assert "utton.c" in dump
    # ...and the selection highlight darkened some rows.
    assert "#" in dump

    selected = browser.app.window(".list").widget.selected
    assert len(selected) == 3         # three darkened items


def test_figure10_ppm_render(benchmark, browser):
    """The pixel (PPM) rendering of the same scene."""
    data = benchmark(render_ppm, browser.server, browser.app.main.id)
    assert data.startswith(b"P6\n")
    width, height = (int(x) for x in data.split(b"\n")[1].split())
    assert width == browser.app.main.width
    assert height == browser.app.main.height
    assert len(data) > width * height  # has a full pixel payload
