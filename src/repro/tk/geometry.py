"""The geometry-management protocol (paper section 3.4).

Individual widgets do not control their own geometry.  A widget
declares a *preferred* size for its window (``request_size``); a
geometry manager — which has claimed control of the window — computes
the actual size and position, taking into account the requested sizes
of all the windows it manages, the size of the parent, and its own
layout algorithm.  Each widget must make do with whatever size it is
assigned.

Tk acts as intermediary: :func:`claim` records the (single) manager of
a window, and size requests are forwarded to the relevant manager.
"""

from __future__ import annotations


class GeometryManager:
    """Interface implemented by geometry managers (e.g. the packer)."""

    name = "unnamed"

    def manage(self, window) -> None:
        """Claim control of ``window``'s geometry."""
        raise NotImplementedError

    def forget(self, window) -> None:
        """Release ``window``; it is unmapped and no longer laid out."""
        raise NotImplementedError

    def child_request(self, window) -> None:
        """``window`` changed its requested size; re-layout as needed."""
        raise NotImplementedError

    def parent_configured(self, parent) -> None:
        """``parent``'s actual size changed; re-layout its children."""
        raise NotImplementedError


class GeometryError(Exception):
    """Raised for conflicting or invalid geometry-management requests."""


def claim(window, manager: GeometryManager) -> None:
    """Give ``manager`` control over ``window``.

    Only one geometry manager manages a given window at a time; a new
    claim displaces the old manager (which is told to forget the
    window).
    """
    current = window.manager
    if current is manager:
        return
    if current is not None:
        current.forget(window)
    window.manager = manager


def release(window, manager: GeometryManager) -> None:
    """Record that ``manager`` no longer manages ``window``."""
    if window.manager is manager:
        window.manager = None


def request_size(window, width: int, height: int) -> None:
    """A widget's size request; forwarded to the window's manager.

    For a window with no manager (e.g. a top-level window that nothing
    is packing), Tk honours the request directly unless the user pinned
    an explicit size.
    """
    width = max(1, int(width))
    height = max(1, int(height))
    if (width, height) == (window.requested_width,
                           window.requested_height):
        return
    window.requested_width = width
    window.requested_height = height
    if window.manager is not None:
        window.manager.child_request(window)
    elif not window.explicit_size:
        window.resize(width, height)
