"""Xt-like toolkit intrinsics — the baseline Tk is compared against.

This package reimplements the essential architecture of the X Toolkit
Intrinsics (Xt) over the same simulated X server that Tk runs on, but
*without* an embedded command language.  Everything that Tk expresses
as a Tcl string — widget commands, callbacks, bindings — must here be
expressed as compiled (Python) procedures wired together explicitly at
build time:

* widget classes carry static *resource lists* with compiled type
  converters;
* behaviour arrives through *callback lists* (XtAddCallback) and
  *action procedures* named by the translation manager's little
  language (see :mod:`repro.baseline.translations`);
* interfaces may be described in a UIL-like file that must be compiled
  before the application runs (see :mod:`repro.baseline.uil`).

The paper's section 7 argues that the absence of a composition language
forces all run-time needs to be predicted and addressed explicitly in
C, which both grows the widget code and breeds special-purpose little
languages.  This module exists so that claim can be measured (see
benchmarks/test_table1_sizes.py).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..x11 import events as ev
from ..x11.display import Display
from ..x11.resources import parse_color
from ..x11.xserver import XServer
from .translations import TranslationTable


class XtError(Exception):
    """An error detected by the intrinsics."""


# ----------------------------------------------------------------------
# Resources: static declarations with compiled type converters
# ----------------------------------------------------------------------

class Resource:
    """One entry of a widget class's static resource list."""

    def __init__(self, name: str, class_name: str, rtype: str,
                 default: Any):
        self.name = name
        self.class_name = class_name
        self.rtype = rtype
        self.default = default


def _convert_int(value: Any) -> int:
    if isinstance(value, int):
        return value
    try:
        return int(str(value))
    except ValueError:
        raise XtError("cannot convert %r to Int" % (value,))


def _convert_string(value: Any) -> str:
    return str(value)


def _convert_pixel(value: Any) -> int:
    if isinstance(value, int):
        return value
    rgb = parse_color(str(value))
    if rgb is None:
        raise XtError("cannot convert %r to Pixel" % (value,))
    red, green, blue = rgb
    return (red << 16) | (green << 8) | blue


def _convert_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return str(value).lower() in ("1", "true", "yes", "on")


#: Compiled type converters, keyed by resource type name.
CONVERTERS: Dict[str, Callable[[Any], Any]] = {
    "Int": _convert_int,
    "String": _convert_string,
    "Pixel": _convert_pixel,
    "Boolean": _convert_bool,
    "Callback": lambda value: value,
    "TranslationTable": lambda value: value,
}


# ----------------------------------------------------------------------
# The application context and its event loop
# ----------------------------------------------------------------------

class XtAppContext:
    """Per-application state: connection, action table, event loop."""

    def __init__(self, server: XServer, name: str = "xtapp"):
        self.server = server
        self.display = Display(server)
        self.name = name
        self.actions: Dict[str, Callable] = {}
        self._windows: Dict[int, "CoreWidget"] = {}
        self._timers: List[List] = []       # [when, id, proc, data]
        self._work_procs: List[Tuple[Callable, Any]] = []
        self._next_timer_id = 1
        self.destroyed = False

    def add_actions(self, actions: Dict[str, Callable]) -> None:
        """XtAppAddActions: register named action procedures."""
        self.actions.update(actions)

    # -- XtAppAddTimeOut / XtAppAddWorkProc -----------------------------

    def add_timeout(self, interval_ms: int, proc: Callable,
                    client_data: Any = None) -> int:
        """XtAppAddTimeOut: call proc(client_data, id) after interval."""
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        self._timers.append([self.server.time_ms + interval_ms,
                             timer_id, proc, client_data])
        return timer_id

    def remove_timeout(self, timer_id: int) -> None:
        self._timers = [entry for entry in self._timers
                        if entry[1] != timer_id]

    def add_work_proc(self, proc: Callable,
                      client_data: Any = None) -> None:
        """XtAppAddWorkProc: run when idle until it returns True."""
        self._work_procs.append((proc, client_data))

    def _run_timers(self) -> int:
        now = self.server.time_ms
        due = [entry for entry in self._timers if entry[0] <= now]
        self._timers = [entry for entry in self._timers
                        if entry[0] > now]
        for _when, timer_id, proc, client_data in sorted(due):
            proc(client_data, timer_id)
        return len(due)

    def _run_work_procs(self) -> int:
        ran = 0
        for proc, client_data in list(self._work_procs):
            finished = proc(client_data)
            ran += 1
            if finished:
                self._work_procs.remove((proc, client_data))
        return ran

    def register_window(self, widget: "CoreWidget") -> None:
        self._windows[widget.window_id] = widget

    def forget_window(self, widget: "CoreWidget") -> None:
        self._windows.pop(widget.window_id, None)

    def process_pending(self) -> int:
        """Drain the event queue, dispatching to widget translations;
        then run due timeouts, then (if nothing else ran) work procs."""
        processed = 0
        while True:
            event = self.display.next_event()
            if event is None:
                break
            widget = self._windows.get(event.window)
            if widget is not None and not widget.destroyed:
                widget.dispatch_event(event)
            processed += 1
        processed += self._run_timers()
        if processed == 0:
            processed += self._run_work_procs()
        return processed


# ----------------------------------------------------------------------
# Widget classes
# ----------------------------------------------------------------------

class CoreWidget:
    """The Core widget class: window, geometry, translations."""

    class_name = "Core"
    resources: List[Resource] = [
        Resource("width", "Width", "Int", 1),
        Resource("height", "Height", "Int", 1),
        Resource("x", "Position", "Int", 0),
        Resource("y", "Position", "Int", 0),
        Resource("background", "Background", "Pixel", 0xDDDDDD),
        Resource("borderWidth", "BorderWidth", "Int", 0),
        Resource("sensitive", "Sensitive", "Boolean", True),
    ]
    default_translations = ""

    def __init__(self, name: str, parent: Optional["CoreWidget"],
                 app: Optional[XtAppContext] = None, **args):
        self.name = name
        self.parent = parent
        self.app = app if app is not None else parent.app
        self.children: List["CoreWidget"] = []
        self.destroyed = False
        self.realized = False
        self.managed = False
        self.window_id = 0
        self.values: Dict[str, Any] = {}
        self.callbacks: Dict[str, List[Tuple[Callable, Any]]] = {}
        self._collect_resources(args)
        self.translations = TranslationTable(self.default_translations)
        if parent is not None:
            parent.children.append(self)

    # -- resource management ------------------------------------------

    def _resource_list(self) -> List[Resource]:
        resources: List[Resource] = []
        seen = set()
        for klass in type(self).__mro__:
            for resource in getattr(klass, "resources", []):
                if resource.name not in seen:
                    seen.add(resource.name)
                    resources.append(resource)
        return resources

    def _collect_resources(self, args: Dict[str, Any]) -> None:
        for resource in self._resource_list():
            if resource.name in args:
                raw = args.pop(resource.name)
            else:
                raw = resource.default
            converter = CONVERTERS[resource.rtype]
            self.values[resource.name] = converter(raw)
        if args:
            raise XtError("unknown resources: %s" % ", ".join(args))

    def set_values(self, **args) -> None:
        """XtSetValues: change resources; geometry changes re-layout."""
        for resource in self._resource_list():
            if resource.name in args:
                converter = CONVERTERS[resource.rtype]
                self.values[resource.name] = converter(
                    args.pop(resource.name))
        if args:
            raise XtError("unknown resources: %s" % ", ".join(args))
        if self.realized:
            self._apply_geometry()
            self.redisplay()

    def get_values(self, *names: str) -> Tuple:
        return tuple(self.values[name] for name in names)

    # -- callbacks ----------------------------------------------------------

    def add_callback(self, callback_name: str, proc: Callable,
                     client_data: Any = None) -> None:
        """XtAddCallback."""
        self.callbacks.setdefault(callback_name, []).append(
            (proc, client_data))

    def remove_callback(self, callback_name: str, proc: Callable) -> None:
        entries = self.callbacks.get(callback_name, [])
        self.callbacks[callback_name] = [
            (cb, data) for cb, data in entries if cb is not proc]

    def call_callbacks(self, callback_name: str,
                       call_data: Any = None) -> None:
        """XtCallCallbacks."""
        for proc, client_data in list(self.callbacks.get(callback_name,
                                                         [])):
            proc(self, client_data, call_data)

    # -- translations ------------------------------------------------------

    def override_translations(self, table_text: str) -> None:
        """XtOverrideTranslations: merge a parsed translation table."""
        self.translations.merge(TranslationTable(table_text))

    def dispatch_event(self, event) -> None:
        if not self.values["sensitive"]:
            return
        for action_name, arguments in self.translations.lookup(event):
            action = self.app.actions.get(action_name)
            if action is None:
                raise XtError('action "%s" not registered' % action_name)
            action(self, event, arguments)

    # -- realization and geometry ---------------------------------------

    def realize(self) -> None:
        """XtRealizeWidget: create windows for this subtree."""
        if self.realized:
            return
        display = self.app.display
        parent_window = self.parent.window_id if self.parent is not None \
            else display.root
        self.window_id = display.create_window(
            parent_window, self.values["x"], self.values["y"],
            self.values["width"], self.values["height"],
            self.values["borderWidth"])
        display.set_window_background(self.window_id,
                                      self.values["background"])
        mask = self.translations.event_mask() | ev.EXPOSURE_MASK
        display.select_input(self.window_id, mask)
        self.app.register_window(self)
        self.realized = True
        for child in self.children:
            child.realize()
        if self.parent is None or self.managed:
            display.map_window(self.window_id)
        self.redisplay()

    def manage(self) -> None:
        """XtManageChild: make the widget eligible for display."""
        self.managed = True
        if self.realized:
            self.app.display.map_window(self.window_id)
        if self.parent is not None:
            self.parent.change_managed()

    def unmanage(self) -> None:
        self.managed = False
        if self.realized:
            self.app.display.unmap_window(self.window_id)
        if self.parent is not None:
            self.parent.change_managed()

    def change_managed(self) -> None:
        """Composite hook: a child's managed set changed."""

    def _apply_geometry(self) -> None:
        if self.realized:
            self.app.display.configure_window(
                self.window_id, x=self.values["x"], y=self.values["y"],
                width=self.values["width"],
                height=self.values["height"])

    def move_resize(self, x: int, y: int, width: int,
                    height: int) -> None:
        self.values["x"] = x
        self.values["y"] = y
        self.values["width"] = max(1, width)
        self.values["height"] = max(1, height)
        self._apply_geometry()
        self.redisplay()

    def preferred_size(self) -> Tuple[int, int]:
        return (self.values["width"], self.values["height"])

    # -- display ----------------------------------------------------------

    def redisplay(self) -> None:
        """Redraw the widget (subclasses draw their contents)."""
        if not self.realized or self.destroyed:
            return
        self.app.display.clear_window(self.window_id)
        self.expose()

    def expose(self) -> None:
        """Subclass hook: draw the widget contents."""

    # -- destruction ---------------------------------------------------------

    def destroy(self) -> None:
        """XtDestroyWidget."""
        if self.destroyed:
            return
        for child in list(self.children):
            child.destroy()
        self.destroyed = True
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        if self.realized:
            self.app.forget_window(self)
            self.app.display.destroy_window(self.window_id)


class CompositeWidget(CoreWidget):
    """A widget that manages the geometry of its children."""

    class_name = "Composite"

    def change_managed(self) -> None:
        self.layout()

    def layout(self) -> None:
        """Subclass hook: assign geometry to managed children."""


class Shell(CompositeWidget):
    """The top-level shell widget (one per application top level)."""

    class_name = "Shell"
    resources = [
        Resource("title", "Title", "String", ""),
    ]

    def __init__(self, app: XtAppContext, name: str, **args):
        super().__init__(name, None, app=app, **args)

    def realize(self) -> None:
        super().realize()
        self.app.display.map_window(self.window_id)
        if self.values["title"]:
            display = self.app.display
            atom = display.intern_atom("WM_NAME")
            string = display.intern_atom("STRING")
            display.change_property(self.window_id, atom, string,
                                    self.values["title"])

    def layout(self) -> None:
        # The shell gives its single managed child its own size.
        for child in self.children:
            if child.managed:
                width, height = child.preferred_size()
                self.set_values(width=width, height=height)
                child.move_resize(0, 0, width, height)
