"""Tcl commands for the Tk intrinsics.

In Xt the intrinsics exist only as C procedures; Tk also exposes
virtually all of them as Tcl commands (paper section 3), which is what
lets the look and feel of an application be queried and modified at any
moment, and lets whole applications be written as scripts.  This module
registers those commands: ``bind``, ``pack``, ``option``, ``selection``,
``focus``, ``send``, ``winfo``, ``destroy``, ``after``, ``update``,
``wm``, and ``tkwait``.
"""

from __future__ import annotations

from typing import List

from ..tcl.errors import TclError
from ..tcl.lists import format_list, parse_list
from ..tcl.strings import _to_int
from . import options as options_mod


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def register_tk_commands(app) -> None:
    """Register every intrinsics command in the application's interp."""
    interp = app.interp
    interp.tk_app = app
    for name, factory in _COMMANDS.items():
        interp.register(name, factory(app))
    from .place import register_place_command
    register_place_command(app)


def _bind_command(app):
    def cmd_bind(interp, argv: List[str]) -> str:
        """bind tag ?sequence? ?script?"""
        if len(argv) < 2 or len(argv) > 4:
            raise _wrong_args("bind window ?pattern? ?command?")
        tag = argv[1]
        if len(argv) == 2:
            return format_list(app.bindings.sequences(tag))
        if len(argv) == 3:
            return app.bindings.binding(tag, argv[2]) or ""
        app.bindings.bind(tag, argv[2], argv[3])
        _refresh_masks(app, tag)
        return ""
    return cmd_bind


def _refresh_masks(app, tag: str) -> None:
    """Re-select X event masks on the windows a binding tag covers."""
    if tag.startswith("."):
        if app.window_exists(tag):
            app.window(tag).update_select_mask()
        return
    for window in list(app._windows_by_path.values()):
        if not window.destroyed and tag in window.binding_tags():
            window.update_select_mask()


def _pack_command(app):
    def cmd_pack(interp, argv: List[str]) -> str:
        """pack append parent window options ?window options ...?

        Also: pack unpack window; pack info parent.
        """
        if len(argv) < 3:
            raise _wrong_args("pack option arg ?arg ...?")
        option = argv[1]
        if option in ("append", "before", "after"):
            return _pack_append(app, option, argv[2:])
        if option in ("unpack", "forget"):
            for path in argv[2:]:
                app.packer.unpack(app.window(path))
            return ""
        if option == "info":
            return _pack_info(app, argv[2])
        raise TclError(
            'bad option "%s": should be append, unpack, or info' % option)
    return cmd_pack


def _pack_append(app, mode: str, args: List[str]) -> str:
    if mode == "append":
        parent = app.window(args[0])
        pairs = args[1:]
        position = None
    else:
        # pack before/after sibling win options ...
        sibling = app.window(args[0])
        parent = sibling.parent
        if parent is None:
            raise TclError("can't pack before/after a top-level window")
        position = app.packer.position_of(sibling)
        if mode == "after":
            position += 1
        pairs = args[1:]
    if len(pairs) % 2 != 0:
        raise TclError("window \"%s\" has no packing options" % pairs[-1])
    for index in range(0, len(pairs), 2):
        window = app.window(pairs[index])
        tokens = parse_list(pairs[index + 1])
        app.packer.append(parent, window, tokens, position)
        if position is not None:
            position += 1
    return ""


def _pack_info(app, parent_path: str) -> str:
    parent = app.window(parent_path)
    entries = []
    for slot in app.packer.slots_for(parent):
        tokens = [slot.side]
        if slot.fill_x and slot.fill_y:
            tokens.append("fill")
        elif slot.fill_x:
            tokens.append("fillx")
        elif slot.fill_y:
            tokens.append("filly")
        if slot.expand:
            tokens.append("expand")
        if slot.padx:
            tokens.extend(["padx", str(slot.padx)])
        if slot.pady:
            tokens.extend(["pady", str(slot.pady)])
        entries.append(format_list([slot.window.path,
                                    format_list(tokens)]))
    return format_list(entries)


def _option_command(app):
    def cmd_option(interp, argv: List[str]) -> str:
        """option add pattern value ?priority? | option get window name
        class | option clear | option readfile fileName ?priority?"""
        if len(argv) < 2:
            raise _wrong_args("option cmd arg ?arg ...?")
        sub = argv[1]
        if sub == "add":
            if len(argv) not in (4, 5):
                raise _wrong_args("option add pattern value ?priority?")
            priority = _priority(argv[4]) if len(argv) == 5 else \
                options_mod.PRIORITIES["interactive"]
            app.options.add(argv[2], argv[3], priority)
            return ""
        if sub == "get":
            if len(argv) != 5:
                raise _wrong_args("option get window name class")
            window = app.window(argv[2])
            value = app.options.get(*app._option_path(window),
                                    argv[3], argv[4])
            return value or ""
        if sub == "clear":
            app.options.clear()
            return ""
        if sub == "readfile":
            if len(argv) not in (3, 4):
                raise _wrong_args("option readfile fileName ?priority?")
            priority = _priority(argv[3]) if len(argv) == 4 else \
                options_mod.PRIORITIES["userDefault"]
            app.options.load_file(argv[2], priority)
            return ""
        raise TclError(
            'bad option "%s": should be add, clear, get, or readfile'
            % sub)
    return cmd_option


def _priority(text: str) -> int:
    if text in options_mod.PRIORITIES:
        return options_mod.PRIORITIES[text]
    try:
        value = int(text)
    except ValueError:
        raise TclError('bad priority level "%s"' % text)
    if not 0 <= value <= 100:
        raise TclError('bad priority level "%s"' % text)
    return value


def _selection_command(app):
    def cmd_selection(interp, argv: List[str]) -> str:
        """selection get | selection handle window script |
        selection own window"""
        if len(argv) < 2:
            raise _wrong_args("selection option ?arg ...?")
        sub = argv[1]
        if sub == "get":
            return app.selection.retrieve()
        if sub == "handle":
            if len(argv) != 4:
                raise _wrong_args("selection handle window script")
            window = app.window(argv[2])
            script = argv[3]
            app.selection.set_handler(
                window, lambda: interp.eval_global(script))
            return ""
        if sub == "own":
            if len(argv) == 2:
                owner = app.display.get_selection_owner(
                    app.selection.primary)
                tkwin = app._windows_by_id.get(owner)
                return tkwin.path if tkwin is not None else ""
            window = app.window(argv[2])
            app.selection.claim(window)
            return ""
        raise TclError(
            'bad option "%s": should be get, handle, or own' % sub)
    return cmd_selection


def _focus_command(app):
    def cmd_focus(interp, argv: List[str]) -> str:
        """focus ?window? — query or assign the application's focus."""
        if len(argv) == 1:
            return app.focus_window.path if app.focus_window is not None \
                else "none"
        if len(argv) != 2:
            raise _wrong_args("focus ?window?")
        if argv[1] == "none":
            app.set_focus(None)
            return ""
        app.set_focus(app.window(argv[1]))
        return ""
    return cmd_focus


def _send_command(app):
    def cmd_send(interp, argv: List[str]) -> str:
        """send ?-async? ?--? appName command ?arg ...?

        With ``-async`` the command is delivered fire-and-forget: no
        reply is requested, the sender does not block, and errors in
        the target are reported through its own bgerror instead.
        """
        args = argv[1:]
        wait = True
        while args and args[0].startswith("-"):
            if args[0] == "-async":
                wait = False
                args = args[1:]
            elif args[0] == "--":
                args = args[1:]
                break
            else:
                raise TclError('bad option "%s": must be -async or --'
                               % args[0])
        if len(args) < 2:
            raise _wrong_args(
                "send ?-async? interpName command ?arg ...?")
        script = " ".join(args[1:])
        return app.sender.send(args[0], script, wait=wait)
    return cmd_send


def _winfo_command(app):
    def cmd_winfo(interp, argv: List[str]) -> str:
        if len(argv) < 2:
            raise _wrong_args("winfo option ?arg?")
        sub = argv[1]
        if sub == "interps":
            return format_list(app.sender.application_names())
        if sub == "screenwidth":
            return str(app.display.screen_width)
        if sub == "screenheight":
            return str(app.display.screen_height)
        if sub == "containing":
            if len(argv) != 4:
                raise _wrong_args("winfo containing rootX rootY")
            target = app.server.root.window_at(_to_int(argv[2]),
                                               _to_int(argv[3]))
            tkwin = app._windows_by_id.get(target.id)
            return tkwin.path if tkwin is not None else ""
        if len(argv) != 3:
            raise _wrong_args("winfo %s window" % sub)
        path = argv[2]
        if sub == "exists":
            return "1" if app.window_exists(path) else "0"
        window = app.window(path)
        if sub == "name":
            return window.name if path != "." else app.name
        if sub == "class":
            return window.class_name
        if sub == "parent":
            return window.parent.path if window.parent is not None else ""
        if sub == "children":
            return format_list(child.path for child in window.children
                               if not child.destroyed)
        if sub == "width":
            return str(window.width)
        if sub == "height":
            return str(window.height)
        if sub == "reqwidth":
            return str(window.requested_width)
        if sub == "reqheight":
            return str(window.requested_height)
        if sub == "x":
            return str(window.x)
        if sub == "y":
            return str(window.y)
        if sub in ("rootx", "rooty"):
            root_x, root_y = window.root_position()
            return str(root_x if sub == "rootx" else root_y)
        if sub == "ismapped":
            return "1" if window.mapped else "0"
        if sub == "geometry":
            return "%dx%d+%d+%d" % (window.width, window.height,
                                    window.x, window.y)
        if sub == "id":
            return str(window.id)
        if sub == "manager":
            return window.manager.name if window.manager is not None else ""
        if sub == "toplevel":
            current = window
            while current.parent is not None:
                current = current.parent
            return current.path
        raise TclError(
            'bad option "%s": must be children, class, containing, '
            'exists, geometry, height, id, interps, ismapped, manager, '
            'name, parent, reqheight, reqwidth, rootx, rooty, '
            'screenheight, screenwidth, toplevel, width, x, or y' % sub)
    return cmd_winfo


def _destroy_command(app):
    def cmd_destroy(interp, argv: List[str]) -> str:
        """destroy ?window ...? — destroy windows and their descendants."""
        for path in argv[1:]:
            if app.window_exists(path):
                app.window(path).destroy()
        return ""
    return cmd_destroy


def _after_command(app):
    def cmd_after(interp, argv: List[str]) -> str:
        """after ms ?script ...? | after cancel id"""
        if len(argv) < 2:
            raise _wrong_args("after milliseconds ?command?")
        if argv[1] == "cancel":
            if len(argv) != 3:
                raise _wrong_args("after cancel id")
            token = argv[2]
            if not token.startswith("after#"):
                raise TclError('bad after token "%s"' % token)
            app.dispatcher.cancel_after(_to_int(token[6:]))
            return ""
        ms = _to_int(argv[1])
        if len(argv) == 2:
            # Plain "after N" waits: advance the loop for N virtual ms.
            deadline = app.dispatcher.now() + ms
            app.dispatcher.after(ms, lambda: None)
            while app.dispatcher.now() < deadline and not app.destroyed:
                if not app.dispatcher.do_one_event(block=True):
                    break
            return ""
        script = " ".join(argv[2:])
        timer_id = app.dispatcher.after(
            ms, lambda: interp.eval_background(script))
        return "after#%d" % timer_id
    return cmd_after


def _update_command(app):
    def cmd_update(interp, argv: List[str]) -> str:
        """update ?idletasks? — process pending events."""
        app.update()
        return ""
    return cmd_update


def _wm_command(app):
    def cmd_wm(interp, argv: List[str]) -> str:
        """wm option window ?args? — minimal window-manager interface."""
        if len(argv) < 3:
            raise _wrong_args("wm option window ?arg ...?")
        sub, window = argv[1], app.window(argv[2])
        if sub == "title":
            atom = app.display.intern_atom("WM_NAME")
            string = app.display.intern_atom("STRING")
            if len(argv) == 4:
                app.display.change_property(window.id, atom, string,
                                            argv[3])
                return ""
            entry = app.display.get_property(window.id, atom)
            return str(entry[1]) if entry is not None else ""
        if sub == "geometry":
            if len(argv) == 4:
                width, height, x, y = _parse_geometry(argv[3])
                window.explicit_size = True
                window.move_resize(x if x is not None else window.x,
                                   y if y is not None else window.y,
                                   width, height)
                manager = window.manager_of_children()
                if manager is not None:
                    manager.parent_configured(window)
                return ""
            return "%dx%d+%d+%d" % (window.width, window.height,
                                    window.x, window.y)
        if sub == "withdraw":
            window.unmap()
            return ""
        if sub == "deiconify":
            window.map()
            return ""
        raise TclError(
            'bad option "%s": should be deiconify, geometry, title, '
            'or withdraw' % sub)
    return cmd_wm


def _parse_geometry(spec: str):
    """Parse WxH, WxH+X+Y geometry specifications."""
    body = spec
    x = y = None
    if "+" in body:
        body, _, rest = body.partition("+")
        x_text, _, y_text = rest.partition("+")
        try:
            x, y = int(x_text), int(y_text)
        except ValueError:
            raise TclError('bad geometry specifier "%s"' % spec)
    width_text, sep, height_text = body.partition("x")
    if not sep:
        raise TclError('bad geometry specifier "%s"' % spec)
    try:
        return int(width_text), int(height_text), x, y
    except ValueError:
        raise TclError('bad geometry specifier "%s"' % spec)


def _raise_command(app):
    def cmd_raise(interp, argv: List[str]) -> str:
        """raise window — move a window to the top of its siblings."""
        if len(argv) != 2:
            raise _wrong_args("raise window")
        app.display.raise_window(app.window(argv[1]).id)
        return ""
    return cmd_raise


def _lower_command(app):
    def cmd_lower(interp, argv: List[str]) -> str:
        """lower window — move a window below all its siblings."""
        if len(argv) != 2:
            raise _wrong_args("lower window")
        app.display.lower_window(app.window(argv[1]).id)
        return ""
    return cmd_lower


def _grab_command(app):
    def cmd_grab(interp, argv: List[str]) -> str:
        """grab set window | grab release window | grab current

        While a grab is set, pointer events outside the grab window's
        subtree are discarded — the modal-dialog behaviour.
        """
        if len(argv) < 2:
            raise _wrong_args("grab option ?window?")
        option = argv[1]
        if option == "current":
            return app.grab_window.path \
                if app.grab_window is not None else ""
        if option == "set":
            if len(argv) != 3:
                raise _wrong_args("grab set window")
            app.grab_window = app.window(argv[2])
            return ""
        if option == "release":
            if len(argv) != 3:
                raise _wrong_args("grab release window")
            if app.grab_window is not None and \
                    app.grab_window.path == argv[2]:
                app.grab_window = None
            return ""
        # "grab window" shorthand for "grab set window".
        app.grab_window = app.window(option)
        return ""
    return cmd_grab


def _cutbuffer_command(app):
    def cmd_cutbuffer(interp, argv: List[str]) -> str:
        """cutbuffer get ?n? | cutbuffer set ?n? value

        The pre-ICCCM cut buffers: eight properties (CUT_BUFFER0..7) on
        the root window.  This is the other "traditional" transfer
        mechanism the paper's section 6 contrasts with send: a passive
        string, no negotiation, no remote invocation.
        """
        if len(argv) < 2:
            raise _wrong_args("cutbuffer option ?arg ...?")
        option = argv[1]
        rest = argv[2:]
        number = 0
        if rest and rest[0].isdigit():
            number = int(rest[0])
            rest = rest[1:]
        if not 0 <= number <= 7:
            raise TclError('bad cut buffer number "%d"' % number)
        atom = app.display.intern_atom("CUT_BUFFER%d" % number)
        string = app.display.intern_atom("STRING")
        if option == "get":
            entry = app.display.get_property(app.display.root, atom)
            return str(entry[1]) if entry is not None else ""
        if option == "set":
            if len(rest) != 1:
                raise _wrong_args("cutbuffer set ?number? value")
            app.display.change_property(app.display.root, atom, string,
                                        rest[0])
            # Cut buffers are shared state on the root window; deliver
            # now so other applications' reads see the store.
            app.display.flush()
            return ""
        raise TclError('bad option "%s": must be get or set' % option)
    return cmd_cutbuffer


def _tkwait_command(app):
    def cmd_tkwait(interp, argv: List[str]) -> str:
        """tkwait variable name | tkwait window path"""
        if len(argv) != 3:
            raise _wrong_args("tkwait variable|window name")
        mode, name = argv[1], argv[2]
        if mode == "window":
            app.mainloop(until=lambda: not app.window_exists(name))
            return ""
        if mode == "variable":
            from ..tcl.commands.variables import split_var_name
            var_name, var_index = split_var_name(name)

            def variable_set() -> bool:
                return interp.var_exists(var_name, var_index)

            app.mainloop(until=variable_set)
            return ""
        raise TclError('bad option "%s": must be variable or window'
                       % mode)
    return cmd_tkwait


def _inspect_command(app):
    def cmd_inspect(interp, argv: List[str]) -> str:
        """inspect ?appName? ?what? ?arg ...?

        tkinspect-style remote introspection over ``send`` (the paper's
        §6 trick): any wish application can pull another's metrics,
        span trace, profile, or session journal off the wire::

            inspect                      list running applications
            inspect NAME metrics ?pat?   NAME's metric listing
            inspect NAME trace           NAME's span tree
            inspect NAME profile ?n?     NAME's profile report
            inspect NAME journal ?n?     NAME's journal listing
            inspect NAME dump            NAME's full obs dump (JSON)

        Everything is implemented as ``send NAME {obs ...}``, so it
        works against any peer with the toolkit's obs layer — including
        this application itself.
        """
        if len(argv) == 1:
            return format_list(app.sender.application_names())
        if len(argv) < 3:
            raise _wrong_args("inspect ?appName what ?arg ...??")
        target, what = argv[1], argv[2]
        rest = argv[3:]
        if what == "metrics":
            if len(rest) > 1:
                raise _wrong_args("inspect appName metrics ?pattern?")
            script = "obs metrics" + (" {%s}" % rest[0] if rest else "")
        elif what == "trace":
            if rest:
                raise _wrong_args("inspect appName trace")
            script = "obs trace dump"
        elif what == "profile":
            if len(rest) > 1:
                raise _wrong_args("inspect appName profile ?limit?")
            script = "obs profile report" + \
                (" -limit %s" % rest[0] if rest else "")
        elif what == "journal":
            if len(rest) > 1:
                raise _wrong_args("inspect appName journal ?limit?")
            script = "obs journal dump" + \
                (" -limit %s" % rest[0] if rest else "")
        elif what == "dump":
            if rest:
                raise _wrong_args("inspect appName dump")
            script = "obs dump"
        else:
            raise TclError(
                'bad option "%s": should be dump, journal, metrics, '
                'profile, or trace' % what)
        return app.sender.send(target, script)
    return cmd_inspect


_COMMANDS = {
    "bind": _bind_command,
    "pack": _pack_command,
    "option": _option_command,
    "selection": _selection_command,
    "focus": _focus_command,
    "send": _send_command,
    "winfo": _winfo_command,
    "destroy": _destroy_command,
    "after": _after_command,
    "update": _update_command,
    "wm": _wm_command,
    "tkwait": _tkwait_command,
    "cutbuffer": _cutbuffer_command,
    "raise": _raise_command,
    "lower": _lower_command,
    "grab": _grab_command,
    "inspect": _inspect_command,
}
