"""Tests for the listbox/scrollbar pair and their composition through
Tcl commands (paper section 4)."""

import pytest

from repro.tcl import TclError
from repro.x11 import events as ev


def make_pair(app, lines=5):
    app.interp.eval('scrollbar .scroll -command ".list view"')
    app.interp.eval('listbox .list -scroll ".scroll set" '
                    '-geometry 12x%d' % lines)
    app.interp.eval(
        "pack append . .scroll {right filly} .list {left expand fill}")
    app.update()


class TestListboxContents:
    def test_insert_and_get(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval(".l insert end a b c")
        assert app.interp.eval(".l size") == "3"
        assert app.interp.eval(".l get 1") == "b"

    def test_insert_at_index(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval(".l insert end a c")
        app.interp.eval(".l insert 1 b")
        assert [app.interp.eval(".l get %d" % i) for i in range(3)] == \
            ["a", "b", "c"]

    def test_delete_single(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval(".l insert end a b c")
        app.interp.eval(".l delete 1")
        assert app.interp.eval(".l size") == "2"
        assert app.interp.eval(".l get 1") == "c"

    def test_delete_range(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval(".l insert end a b c d e")
        app.interp.eval(".l delete 1 3")
        assert app.interp.eval(".l size") == "2"
        assert app.interp.eval(".l get 1") == "e"

    def test_get_out_of_range_is_error(self, app, packed):
        packed("listbox .l", ".l")
        with pytest.raises(TclError):
            app.interp.eval(".l get 0")

    def test_items_with_spaces(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval('.l insert end "two words"')
        assert app.interp.eval(".l get 0") == "two words"

    def test_geometry_in_chars_by_lines(self, app, packed):
        window = packed("listbox .l -geometry 20x10", ".l")
        font = app.cache.font("fixed")
        assert window.requested_width >= 20 * font.char_width
        assert window.requested_height >= 10 * font.line_height


class TestView:
    def test_view_sets_top_element(self, app, packed):
        packed("listbox .l -geometry 10x3", ".l")
        app.interp.eval(".l insert end %s"
                        % " ".join("item%d" % i for i in range(10)))
        app.interp.eval(".l view 4")
        assert app.window(".l").widget.top == 4

    def test_view_clamps(self, app, packed):
        packed("listbox .l -geometry 10x3", ".l")
        app.interp.eval(".l insert end a b c")
        app.interp.eval(".l view 99")
        assert app.window(".l").widget.top == 2
        app.interp.eval(".l view -5")
        assert app.window(".l").widget.top == 0


class TestScrollbarProtocol:
    def test_set_and_get(self, app, packed):
        packed("scrollbar .s", ".s")
        app.interp.eval(".s set 100 10 20 29")
        assert app.interp.eval(".s get") == "100 10 20 29"

    def test_listbox_updates_scrollbar(self, app):
        """Inserting elements reports the new totals to the scrollbar
        through the -scroll command prefix."""
        make_pair(app, lines=5)
        app.interp.eval(".list insert end %s"
                        % " ".join("x%d" % i for i in range(30)))
        total, window, first, last = app.interp.eval(
            ".scroll get").split()
        assert total == "30"
        assert window == "5"
        assert first == "0"

    def test_scrollbar_drives_listbox(self, app):
        """The scrollbar appends a unit to its -command: '.list view 7'
        adjusts the view (the paper's exact scenario)."""
        make_pair(app, lines=5)
        app.interp.eval(".list insert end %s"
                        % " ".join("x%d" % i for i in range(30)))
        scrollbar = app.window(".scroll").widget
        scrollbar.issue(7)
        app.update()
        assert app.window(".list").widget.top == 7
        # And the listbox reported back, closing the loop.
        assert app.interp.eval(".scroll get").split()[2] == "7"

    def test_arrow_click_scrolls_one_unit(self, app, server):
        make_pair(app, lines=5)
        app.interp.eval(".list insert end %s"
                        % " ".join("x%d" % i for i in range(30)))
        app.interp.eval(".list view 10")
        app.update()
        window = app.window(".scroll")
        root_x, root_y = window.root_position()
        # Click in the top arrow (first few pixels).
        server.warp_pointer(root_x + 3, root_y + 2)
        server.press_button(1)
        app.update()
        assert app.window(".list").widget.top == 9

    def test_bottom_arrow_scrolls_down(self, app, server):
        make_pair(app, lines=5)
        app.interp.eval(".list insert end %s"
                        % " ".join("x%d" % i for i in range(30)))
        window = app.window(".scroll")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 3, root_y + window.height - 2)
        server.press_button(1)
        app.update()
        assert app.window(".list").widget.top == 1

    def test_one_scrollbar_many_listboxes(self, app):
        """A Tcl proc as -command can fan one scrollbar out to several
        windows (the generality claim of section 4)."""
        app.interp.eval("listbox .a -geometry 8x3")
        app.interp.eval("listbox .b -geometry 8x3")
        app.interp.eval("proc both {n} {.a view $n; .b view $n}")
        app.interp.eval('scrollbar .s -command both')
        app.interp.eval("pack append . .a {top} .b {top} .s {right filly}")
        app.update()
        for path in (".a", ".b"):
            app.interp.eval("%s insert end %s"
                            % (path, " ".join(str(i) for i in range(20))))
        app.window(".s").widget.issue(5)
        app.update()
        assert app.window(".a").widget.top == 5
        assert app.window(".b").widget.top == 5

    def test_bad_orientation_is_error(self, app):
        with pytest.raises(TclError, match="bad orientation"):
            app.interp.eval("scrollbar .s -orient diagonal")


class TestListboxSelection:
    def test_click_selects_item(self, app, server):
        make_pair(app)
        app.interp.eval(".list insert end aa bb cc")
        window = app.window(".list")
        font = app.cache.font("fixed")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 5,
                            root_y + 3 + font.line_height + 2)
        server.press_button(1)
        app.update()
        assert window.widget.selected == {1}
        assert app.interp.eval("selection get") == "bb"

    def test_shift_click_extends(self, app, server):
        make_pair(app)
        app.interp.eval(".list insert end aa bb cc dd")
        window = app.window(".list")
        font = app.cache.font("fixed")
        root_x, root_y = window.root_position()
        server.warp_pointer(root_x + 5, root_y + 4)
        server.press_button(1)
        server.warp_pointer(root_x + 5,
                            root_y + 3 + 2 * font.line_height + 2,
                            state=ev.SHIFT_MASK)
        server.press_button(1, state=ev.SHIFT_MASK)
        app.update()
        assert window.widget.selected == {0, 1, 2}

    def test_curselection(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval(".l insert end a b c")
        app.interp.eval(".l select from 0")
        app.interp.eval(".l select extend 1")
        assert app.interp.eval(".l curselection") == "0 1"

    def test_delete_adjusts_selection(self, app, packed):
        packed("listbox .l", ".l")
        app.interp.eval(".l insert end a b c d")
        app.interp.eval(".l select from 3")
        app.interp.eval(".l delete 0")
        assert app.window(".l").widget.selected == {2}
