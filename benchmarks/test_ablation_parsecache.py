"""Ablation: the interpreter's compile-once pipeline.

Widget -command strings, bindings, and timer scripts are evaluated
over and over; because Tcl values are immutable strings, a script can
be compiled once into pre-resolved substitution plans
(src/repro/tcl/compile.py) and re-executed cheaply.  This is the
design choice that keeps "hundreds of Tcl commands within a human
response time" cheap on an interpreter that otherwise re-parses
everything.

``Interp(compile_enabled=False)`` ablates the whole pipeline — every
eval re-parses, re-substitutes, and re-lexes expressions — mirroring
``ResourceCache(enabled=False)`` on the Tk side.
"""

import time

from repro.tcl import Interp

from conftest import print_table

SCRIPT = 'set total [expr $total + [lindex {3 1 4 1 5} 2]]'
ROUNDS = 200


def run_repeatedly(interp, rounds=ROUNDS):
    interp.eval("set total 0")
    for _ in range(rounds):
        interp.eval(SCRIPT)
    return interp.eval("set total")


def _measure(interp):
    run_repeatedly(interp)              # warm the compile cache
    best = None
    for _ in range(3):
        start = time.perf_counter()
        run_repeatedly(interp)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_compile_pipeline_speedup(benchmark):
    compiled = Interp()
    ablated = Interp(compile_enabled=False)

    with_compile = _measure(compiled)
    without_compile = _measure(ablated)
    benchmark(run_repeatedly, Interp())
    print_table(
        "Ablation: compile-once pipeline (%d evals of one command)"
        % ROUNDS,
        ("Configuration", "Time"),
        [("compilation ON", "%.3f ms" % (with_compile * 1e3)),
         ("compilation OFF", "%.3f ms" % (without_compile * 1e3)),
         ("speedup", "%.1fx"
          % (without_compile / max(with_compile, 1e-9)))])
    # The compiled path must be strictly faster than the ablated path.
    assert with_compile < without_compile


def test_compile_cache_counters():
    """The pipeline's own statistics show the cache is doing the work."""
    interp = Interp()
    run_repeatedly(interp)
    assert interp.compile_misses >= 1
    assert interp.compile_hits > interp.compile_misses
    assert interp.cmd_count >= ROUNDS


def test_ablated_semantics_identical():
    """compile_enabled=False changes speed, never results."""
    assert run_repeatedly(Interp()) == \
        run_repeatedly(Interp(compile_enabled=False))


def test_repeated_command_latency(benchmark):
    """The steady-state cost of re-evaluating a compiled script."""
    interp = Interp()
    interp.eval("set total 0")
    interp.eval(SCRIPT)          # prime the cache
    benchmark(interp.eval, SCRIPT)
