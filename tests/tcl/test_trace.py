"""Tests for the trace command (variable traces)."""

import pytest

from repro.tcl import Interp, TclError


@pytest.fixture
def interp():
    return Interp()


class TestWriteTraces:
    def test_fires_on_write(self, interp):
        interp.eval("set log {}")
        interp.eval("proc watch {name index op} {global log\n"
                    "lappend log $name:$op}")
        interp.eval("trace variable x w watch")
        interp.eval("set x 1")
        interp.eval("set x 2")
        assert interp.eval("set log") == "x:w x:w"

    def test_not_fired_on_other_variables(self, interp):
        interp.eval("set count 0")
        interp.eval("proc bump args {global count\nincr count}")
        interp.eval("trace variable x w bump")
        interp.eval("set y 1")
        assert interp.eval("set count") == "0"

    def test_trace_sees_new_value(self, interp):
        interp.eval("proc snap {name index op} {global seen $name\n"
                    "set seen [set $name]}")
        interp.eval("trace variable x w snap")
        interp.eval("set x hello")
        assert interp.eval("set seen") == "hello"

    def test_no_recursive_firing(self, interp):
        """A trace that writes its own variable must not loop."""
        interp.eval("proc reset {name index op} {global x\nset x fixed}")
        interp.eval("trace variable x w reset")
        interp.eval("set x attempt")
        assert interp.eval("set x") == "fixed"


class TestReadAndUnsetTraces:
    def test_read_trace(self, interp):
        interp.eval("set x val")
        interp.eval("set reads 0")
        interp.eval("proc count args {global reads\nincr reads}")
        interp.eval("trace variable x r count")
        interp.eval("set dummy $x")
        assert interp.eval("set reads") >= "1"

    def test_unset_trace(self, interp):
        interp.eval("set x val")
        interp.eval("proc gone {name index op} {global note\n"
                    "set note $op}")
        interp.eval("trace variable x u gone")
        interp.eval("unset x")
        assert interp.eval("set note") == "u"


class TestManagement:
    def test_vinfo_lists_traces(self, interp):
        interp.eval("proc w1 args {}")
        interp.eval("trace variable x w w1")
        assert "w1" in interp.eval("trace vinfo x")

    def test_vdelete_removes(self, interp):
        interp.eval("set count 0")
        interp.eval("proc bump args {global count\nincr count}")
        interp.eval("trace variable x w bump")
        interp.eval("trace vdelete x w bump")
        interp.eval("set x 1")
        assert interp.eval("set count") == "0"

    def test_bad_ops_rejected(self, interp):
        with pytest.raises(TclError, match="bad operations"):
            interp.eval("trace variable x q cmd")

    def test_array_element_traces(self, interp):
        interp.eval("set log {}")
        interp.eval("proc watch {name index op} {global log\n"
                    "lappend log $index}")
        interp.eval("trace variable a w watch")
        interp.eval("set a(one) 1")
        interp.eval("set a(two) 2")
        assert interp.eval("set log") == "one two"


class TestWidgetIntegration:
    def test_checkbutton_redraws_on_external_set(self):
        import io
        from repro.tk import TkApp
        from repro.x11 import XServer
        app = TkApp(XServer(), name="tracetest")
        app.interp.stdout = io.StringIO()
        app.interp.eval("checkbutton .c -variable flag -text opt")
        app.interp.eval("pack append . .c {top}")
        app.update()
        widget = app.window(".c").widget
        assert not widget.selected()
        # Change the variable from Tcl, not through the widget.
        app.interp.eval("set flag 1")
        assert widget.selected()
        assert widget._redraw_pending  # the trace scheduled a redraw

    def test_radiobutton_group_follows_variable(self):
        import io
        from repro.tk import TkApp
        from repro.x11 import XServer
        app = TkApp(XServer(), name="tracetest2")
        app.interp.stdout = io.StringIO()
        app.interp.eval("radiobutton .a -variable pick -value a -text A")
        app.interp.eval("radiobutton .b -variable pick -value b -text B")
        app.interp.eval("pack append . .a {top} .b {top}")
        app.update()
        app.interp.eval("set pick b")
        assert not app.window(".a").widget.selected()
        assert app.window(".b").widget.selected()

    def test_trace_removed_when_widget_destroyed(self):
        import io
        from repro.tk import TkApp
        from repro.x11 import XServer
        app = TkApp(XServer(), name="tracetest3")
        app.interp.stdout = io.StringIO()
        app.interp.eval("checkbutton .c -variable flag -text opt")
        app.interp.eval("destroy .c")
        app.interp.eval("set flag 1")   # must not error
