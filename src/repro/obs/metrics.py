"""The metrics registry: counters, gauges, and histograms.

Every layer of the stack (x11 server, Tk intrinsics, Tcl interpreter,
send, fault injection) records what it does through one of these
registries instead of ad-hoc integer attributes.  Metrics are named in
a dotted namespace with optional labels::

    x11.requests{type=create_window}     per-request-type counts
    x11.round_trips                      waits on a server reply
    tk.cache.hits{kind=color}            resource-cache effectiveness
    tcl.compile.hits                     compile-once cache
    send.wait_ms                         histogram of send round trips

A registry can *mount* other registries: a Tk application mounts the
(shared) X server's registry so ``obs metrics`` shows the whole stack
in one view, while each component keeps writing to its own counters.
Metric handles are plain objects with a ``value`` attribute, so the
hot paths (one increment per X request or Tcl command) cost a single
attribute store — the registry is only consulted to create or read
metrics, never to update them.

Histograms bucket *virtual-time* durations: the simulator's clock
advances one millisecond per server request, so bucket boundaries are
in virtual milliseconds and runs are exactly reproducible.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

#: Default virtual-millisecond bucket boundaries for histograms.
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000)


def metric_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """The canonical string key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % pair for pair in labels))


class Counter:
    """A monotonically increasing count.

    Hot paths hold the handle and do ``counter.value += 1`` directly.
    """

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down (queue depths, cache sizes)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """A distribution over virtual-time buckets.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    counts overflows.  ``value`` is the observation count, so mixed
    metric listings can show histograms alongside counters.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total")

    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 buckets: Tuple[int, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0

    @property
    def value(self) -> int:
        return sum(self.counts)

    def observe(self, value) -> None:
        self.total += value
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    def percentile(self, quantile: float) -> Optional[int]:
        """Bucket-resolution percentile estimate.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``quantile`` of all observations — an upper
        estimate at the histogram's own resolution (overflow
        observations report the last bound; an empty histogram None).
        """
        count = self.value
        if count == 0:
            return None
        threshold = quantile * count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            if cumulative >= threshold:
                return bound
        return self.bounds[-1]

    def percentiles(self) -> Dict[str, Optional[int]]:
        return {"p50": self.percentile(0.50),
                "p95": self.percentile(0.95),
                "p99": self.percentile(0.99)}

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's reservoir into this one.

        Identical bucket bounds merge exactly (element-wise count
        addition); differing bounds re-bucket each of the other's
        buckets at its own upper bound, which is the same upper-estimate
        resolution :meth:`percentile` already reports.  Both histograms
        stay live — the other side is read, never mutated.
        """
        self.total += other.total
        if other.bounds == self.bounds:
            for position, count in enumerate(other.counts):
                self.counts[position] += count
            return
        for bound, count in zip(other.bounds, other.counts):
            if count:
                self._add(bound, count)
        overflow = other.counts[-1]
        if overflow:
            # Overflow observations exceed the other's last bound; all
            # we know is "> bounds[-1]", so file them just past it.
            self._add(other.bounds[-1] + 1, overflow)

    def _add(self, value, count: int) -> None:
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[position] += count
                return
        self.counts[-1] += count

    def snapshot(self):
        buckets = {"<=%d" % bound: count
                   for bound, count in zip(self.bounds, self.counts)
                   if count}
        overflow = self.counts[-1]
        if overflow:
            buckets[">%d" % self.bounds[-1]] = overflow
        snapshot = {"count": self.value, "sum": self.total,
                    "buckets": buckets}
        if self.value:
            snapshot.update(self.percentiles())
        return snapshot


def _label_tuple(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((key, str(value))
                        for key, value in labels.items()))


class MetricsRegistry:
    """All metrics of one component, plus read-through mounts.

    ``counter``/``gauge``/``histogram`` get-or-create handles; reads
    (``value``, ``total``, ``snapshot``) see this registry's metrics
    *and* every mounted registry's, which is how a Tk application
    presents server-wide ``x11.*`` metrics next to its own ``tk.*``
    and ``tcl.*`` ones.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._mounts: List["MetricsRegistry"] = []

    # -- creation ------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, _label_tuple(labels))

    def histogram_total(self, name: str) -> "Histogram":
        """One histogram combining every label series of ``name``.

        A fresh (unregistered) histogram merged from all matching
        series — how a fleet report computes its fleet-wide percentile
        from per-session ``...{session=...}`` histograms.
        """
        combined: Optional[Histogram] = None
        merged = self._all()
        for key in sorted(merged):
            metric = merged[key]
            if metric.name == name and isinstance(metric, Histogram):
                if combined is None:
                    combined = Histogram(name, (), buckets=metric.bounds)
                combined.merge(metric)
        return combined if combined is not None else Histogram(name, ())

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, _label_tuple(labels))

    def histogram(self, name: str,
                  buckets: Tuple[int, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = metric_key(name, _label_tuple(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, _label_tuple(labels), buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError('metric "%s" is a %s, not a histogram'
                            % (key, metric.kind))
        return metric

    def _get_or_create(self, factory, name: str,
                       labels: Tuple[Tuple[str, str], ...]):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, labels)
            self._metrics[key] = metric
        elif type(metric) is not factory:
            raise TypeError('metric "%s" is a %s, not a %s'
                            % (key, metric.kind, factory.kind))
        return metric

    # -- composition ---------------------------------------------------

    def mount(self, registry: "MetricsRegistry") -> None:
        """Include another registry's metrics in every read."""
        if registry is not self and registry not in self._mounts:
            self._mounts.append(registry)

    def absorb(self, other: "MetricsRegistry") -> None:
        """Adopt another registry's metric *objects*.

        Used when a component built before its application is rebound
        to the application's hub: existing handles keep counting into
        the very same objects, now visible here.
        """
        for key, metric in other._metrics.items():
            self._metrics.setdefault(key, metric)
        for mounted in other._mounts:
            self.mount(mounted)

    def merge(self, other: "MetricsRegistry",
              include_mounts: bool = True,
              labels: Optional[Dict[str, str]] = None) -> None:
        """Add another registry's *values* into this one.

        Unlike :meth:`absorb` (which shares metric objects) and
        :meth:`mount` (which reads through), ``merge`` copies: counters
        and gauges are summed into same-named metrics here, histogram
        reservoirs are folded bucket-wise (:meth:`Histogram.merge`), and
        both registries stay independently live afterwards.  This is
        the fleet rollup primitive: per-session registries merge into
        one fleet-level registry whose percentiles then describe the
        combined distribution.

        ``include_mounts=False`` merges only the other registry's own
        metrics, not its read-through mounts — used to avoid counting a
        shared (mounted) server registry once per session.  ``labels``
        adds extra labels to every merged key, so a rollup can keep
        per-session series (``...{session=s007}``) next to the
        unlabeled fleet aggregate.  Metrics are merged in sorted key
        order, so a merge over the same inputs is deterministic.

        A name+label collision between the two registries must agree on
        kind; a counter merging into a histogram (or vice versa) raises
        ``TypeError`` like the creation API does.
        """
        source = other._all() if include_mounts else other._metrics
        extra = _label_tuple(labels) if labels else ()
        for key in sorted(source):
            metric = source[key]
            merged_labels = tuple(sorted(metric.labels + extra))
            if isinstance(metric, Histogram):
                mine = self.histogram(metric.name, buckets=metric.bounds,
                                      **dict(merged_labels))
                mine.merge(metric)
            elif isinstance(metric, Gauge):
                mine = self.gauge(metric.name, **dict(merged_labels))
                mine.value += metric.value
            else:
                mine = self.counter(metric.name, **dict(merged_labels))
                mine.value += metric.value

    # -- reads ---------------------------------------------------------

    def _all(self) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for mounted in self._mounts:
            merged.update(mounted._all())
        merged.update(self._metrics)
        return merged

    def get(self, name: str, **labels):
        key = metric_key(name, _label_tuple(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            return metric
        for mounted in self._mounts:
            metric = mounted.get(name, **labels)
            if metric is not None:
                return metric
        return None

    def value(self, name: str, **labels):
        """The current value of one metric (0 when absent)."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0

    def total(self, name: str):
        """Sum of ``value`` across every label combination of a name."""
        return sum(metric.value for metric in self._all().values()
                   if metric.name == name)

    def names(self) -> List[str]:
        return sorted(self._all())

    def snapshot(self) -> Dict[str, object]:
        """``{key: scalar-or-histogram-dict}`` over all metrics."""
        return {key: metric.snapshot()
                for key, metric in sorted(self._all().items())}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def format(self, pattern: Optional[str] = None) -> str:
        """Human-readable ``name value`` lines, optionally filtered."""
        from ..tcl.strings import glob_match
        lines = []
        for key, metric in sorted(self._all().items()):
            if pattern is not None and not glob_match(pattern, key):
                continue
            if isinstance(metric, Histogram):
                line = "%-44s count=%d sum=%d" % (key, metric.value,
                                                  metric.total)
                if metric.value:
                    line += " p50=%d p95=%d p99=%d" % (
                        metric.percentile(0.50), metric.percentile(0.95),
                        metric.percentile(0.99))
                lines.append(line)
            else:
                lines.append("%-44s %s" % (key, metric.value))
        return "\n".join(lines)


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "metric_key"]
