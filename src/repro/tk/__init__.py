"""repro.tk — the Tk toolkit intrinsics (paper section 3).

The intrinsics provide window naming, event dispatching, resource and
structure caches, geometry management, the option database, the
selection, focus management, and the ``send`` command — available both
as Python APIs and as Tcl commands.

Typical use::

    from repro.x11 import XServer
    from repro.tk import TkApp

    server = XServer()
    app = TkApp(server, name="demo")
    app.interp.eval('button .b -text "Hello" -command {print hi}')
    app.interp.eval('pack append . .b {top}')
    app.update()
"""

from .app import TkApp, TkWindow, parse_path, pump_all
from .bind import BindingTable, EventPattern, parse_sequence
from .cache import CacheError, ResourceCache
from .dispatch import EventDispatcher
from .geometry import GeometryManager, claim, release, request_size
from .options import OptionDatabase, PRIORITIES
from .pack import Packer, PackSlot
from .selection import SelectionManager
from .send import SendManager
from .widget import OptionSpec, Widget, creation_command

__all__ = [
    "TkApp", "TkWindow", "parse_path", "pump_all",
    "BindingTable", "EventPattern", "parse_sequence",
    "ResourceCache", "CacheError", "EventDispatcher",
    "GeometryManager", "claim", "release", "request_size",
    "OptionDatabase", "PRIORITIES", "Packer", "PackSlot",
    "SelectionManager", "SendManager",
    "OptionSpec", "Widget", "creation_command",
]
