"""Tests for the virtual-time flight recorder (repro.obs.timeseries)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def recorder(clock, registry):
    return TimeSeriesRecorder(clock, registry, cadence_ms=10, ring=4)


class TestSampling:
    def test_maybe_sample_honours_cadence(self, recorder, clock,
                                          registry):
        counter = registry.counter("work.items")
        recorder.start()
        assert not recorder.maybe_sample()      # zero ms elapsed
        clock.now = 9
        assert not recorder.maybe_sample()      # under one cadence
        clock.now = 10
        counter.value = 3
        assert recorder.maybe_sample()
        assert recorder.series_for("work.items") == [(10, 3)]

    def test_disabled_recorder_never_samples(self, recorder, clock):
        clock.now = 100
        assert not recorder.maybe_sample()
        assert recorder.samples_taken == 0

    def test_stop_keeps_series_readable(self, recorder, clock,
                                        registry):
        registry.counter("a").value = 1
        recorder.start()
        clock.now = 10
        recorder.maybe_sample()
        recorder.stop()
        clock.now = 50
        assert not recorder.maybe_sample()
        assert recorder.series_for("a") == [(10, 1)]

    def test_histogram_samples_to_percentile_snapshot(self, recorder,
                                                      clock, registry):
        histogram = registry.histogram("lat.ms")
        for value in (1, 2, 100):
            histogram.observe(value)
        recorder.sample(now=5)
        ((when, snapshot),) = recorder.series_for("lat.ms")
        assert when == 5
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 103
        assert {"p50", "p95", "p99"} <= set(snapshot)

    def test_empty_histogram_samples_count_only(self, recorder,
                                                registry):
        registry.histogram("lat.ms")
        recorder.sample(now=1)
        ((_, snapshot),) = recorder.series_for("lat.ms")
        assert snapshot == {"count": 0, "sum": 0}

    def test_deterministic_across_identical_runs(self, registry):
        def run():
            clock = FakeClock()
            reg = MetricsRegistry()
            counter = reg.counter("n")
            recorder = TimeSeriesRecorder(clock, reg, cadence_ms=5,
                                          ring=8)
            recorder.start()
            for step in range(1, 40):
                clock.now = step
                counter.value = step * 2
                recorder.maybe_sample()
            return recorder.to_dict()
        assert run() == run()


class TestRing:
    def test_ring_bounds_and_counts_evictions(self, recorder, clock,
                                              registry):
        counter = registry.counter("n")
        recorder.start()
        for step in range(1, 7):
            clock.now = step * 10
            counter.value = step
            recorder.maybe_sample()
        points = recorder.series_for("n")
        assert len(points) == 4                  # ring=4
        assert points[0] == (30, 3)              # oldest two evicted
        assert recorder.evicted == 2
        assert recorder.samples_taken == 6

    def test_configure_resize_keeps_newest(self, recorder, clock,
                                           registry):
        counter = registry.counter("n")
        recorder.start()
        for step in range(1, 5):
            clock.now = step * 10
            counter.value = step
            recorder.maybe_sample()
        recorder.configure(ring=2)
        assert recorder.series_for("n") == [(30, 3), (40, 4)]

    def test_clear_resets_everything(self, recorder, clock, registry):
        registry.counter("n").value = 1
        recorder.start()
        clock.now = 10
        recorder.maybe_sample()
        recorder.clear()
        assert recorder.series == {}
        assert recorder.samples_taken == 0
        assert recorder.evicted == 0

    @pytest.mark.parametrize("kwargs", [
        {"cadence_ms": 0}, {"ring": 0}, {"cadence_ms": -5},
    ])
    def test_invalid_config_rejected(self, clock, registry, kwargs):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(clock, registry, **kwargs)
        recorder = TimeSeriesRecorder(clock, registry)
        with pytest.raises(ValueError):
            recorder.configure(**kwargs)


class TestReads:
    def test_window_restricts_to_horizon(self, recorder, clock,
                                         registry):
        counter = registry.counter("n")
        recorder.start()
        for step in range(1, 5):
            clock.now = step * 10
            counter.value = step
            recorder.maybe_sample()
        window = recorder.window(20, now=40)
        assert window["n"] == [[20, 2], [30, 3], [40, 4]]

    def test_window_drops_empty_series(self, recorder, clock,
                                       registry):
        registry.counter("n")
        recorder.start()
        clock.now = 10
        recorder.maybe_sample()
        assert recorder.window(5, now=100) == {}

    def test_format_lists_series(self, recorder, clock, registry):
        registry.counter("tk.widgets").value = 2
        registry.counter("x11.requests").value = 9
        recorder.sample(now=7)
        text = recorder.format()
        assert "RECORDER: 1 samples every 10ms, 2 series" in text
        assert "tk.widgets" in text
        assert recorder.format("x11.*").count("x11.requests") == 1
        assert "tk.widgets" not in recorder.format("x11.*")

    def test_to_dict_shape(self, recorder, clock, registry):
        registry.counter("n").value = 5
        recorder.sample(now=3)
        data = recorder.to_dict()
        assert data["cadence_ms"] == 10
        assert data["ring"] == 4
        assert data["samples"] == 1
        assert data["evicted"] == 0
        assert data["series"] == {"n": [[3, 5]]}
