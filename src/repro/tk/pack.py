"""The packer geometry manager (paper section 3.4, Figures 8-9).

The packer maintains, for each parent window, an ordered list of
*slots*.  Windows are processed in order, each taking a band of the
remaining cavity against one side of the parent (``top``, ``bottom``,
``left``, or ``right``); the window is then positioned inside its band
according to ``fill``/``anchor``, and ``expand`` distributes any
leftover cavity space among the windows that ask for it.

The Tcl syntax is the classic one from the paper::

    pack append . .scroll {right filly} .list {left expand fill}

The packer also performs geometry propagation: the requested size of
the parent is recomputed from its slots (using Tk's reverse-order
cavity algorithm), so a dialog ends up exactly big enough for its
contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..tcl.errors import TclError
from ..tcl.lists import parse_list
from . import geometry

_SIDES = ("top", "bottom", "left", "right")

_ANCHORS = {
    "center": (0.5, 0.5), "n": (0.5, 0.0), "s": (0.5, 1.0),
    "e": (1.0, 0.5), "w": (0.0, 0.5), "ne": (1.0, 0.0),
    "nw": (0.0, 0.0), "se": (1.0, 1.0), "sw": (0.0, 1.0),
}


@dataclass(eq=False)  # identity equality: slots are used as dict keys
class PackSlot:
    """One packed window and its packing options."""

    window: object
    side: str = "top"
    fill_x: bool = False
    fill_y: bool = False
    expand: bool = False
    padx: int = 0
    pady: int = 0
    anchor: str = "center"

    @property
    def slice_width(self) -> int:
        return self.window.requested_width + 2 * self.padx

    @property
    def slice_height(self) -> int:
        return self.window.requested_height + 2 * self.pady


def parse_options(tokens: List[str]) -> PackSlot:
    """Parse a packing-option list like {right filly padx 5}."""
    slot = PackSlot(window=None)
    position = 0
    while position < len(tokens):
        token = tokens[position]
        position += 1
        if token in _SIDES:
            slot.side = token
        elif token == "fill":
            slot.fill_x = True
            slot.fill_y = True
        elif token == "fillx":
            slot.fill_x = True
        elif token == "filly":
            slot.fill_y = True
        elif token in ("expand", "e"):
            slot.expand = True
        elif token in ("padx", "pady"):
            if position >= len(tokens):
                raise TclError(
                    '"%s" option must be followed by screen distance'
                    % token)
            try:
                amount = int(tokens[position])
            except ValueError:
                raise TclError('bad screen distance "%s"'
                               % tokens[position])
            position += 1
            if token == "padx":
                slot.padx = amount
            else:
                slot.pady = amount
        elif token == "frame":
            if position >= len(tokens) or \
                    tokens[position] not in _ANCHORS:
                raise TclError('bad anchor "%s": must be n, ne, e, se, '
                               's, sw, w, nw, or center'
                               % (tokens[position] if position <
                                  len(tokens) else ""))
            slot.anchor = tokens[position]
            position += 1
        else:
            raise TclError(
                'bad option "%s": should be top, bottom, left, right, '
                'expand, fill, fillx, filly, padx, pady, or frame'
                % token)
    return slot


class Packer(geometry.GeometryManager):
    """The packer: one instance serves a whole application."""

    name = "pack"

    def __init__(self):
        #: parent window -> ordered slots
        self._slots: Dict[object, List[PackSlot]] = {}
        #: child window -> its slot (for forget/child_request)
        self._slot_of: Dict[object, PackSlot] = {}
        #: child window -> parent window
        self._parent_of: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # slot list manipulation
    # ------------------------------------------------------------------

    def append(self, parent, window, option_tokens: List[str],
               position: Optional[int] = None) -> None:
        """Add ``window`` to ``parent``'s packing list."""
        if window.parent is not parent:
            raise TclError(
                "can't pack %s inside %s: not its parent"
                % (window.path, parent.path))
        if window in self._slot_of:
            self.forget(window)
        slot = parse_options(option_tokens)
        slot.window = window
        slots = self._slots.setdefault(parent, [])
        if position is None:
            slots.append(slot)
        else:
            slots.insert(position, slot)
        self._slot_of[window] = slot
        self._parent_of[window] = parent
        geometry.claim(window, self)
        self.arrange(parent)

    def unpack(self, window) -> None:
        """Remove ``window`` from its packing list and unmap it."""
        if window not in self._slot_of:
            return
        parent = self._parent_of.pop(window)
        slot = self._slot_of.pop(window)
        self._slots[parent].remove(slot)
        geometry.release(window, self)
        if not window.destroyed:
            window.unmap()
        self.arrange(parent)

    forget = unpack

    def slots_for(self, parent) -> List[PackSlot]:
        return list(self._slots.get(parent, []))

    def position_of(self, window) -> int:
        parent = self._parent_of[window]
        return self._slots[parent].index(self._slot_of[window])

    # ------------------------------------------------------------------
    # geometry-manager protocol
    # ------------------------------------------------------------------

    def child_request(self, window) -> None:
        parent = self._parent_of.get(window)
        if parent is not None:
            self.arrange(parent)

    def parent_configured(self, parent) -> None:
        if parent in self._slots:
            self.arrange(parent)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def requested_size(self, parent) -> tuple:
        """Parent size needed to grant every slot its requested slice.

        Tk's reverse-order cavity computation: walking backwards, a
        top/bottom slot adds its height to the running need and widens
        it; a left/right slot adds its width.
        """
        need_width = 0
        need_height = 0
        for slot in reversed(self._slots.get(parent, [])):
            if slot.side in ("top", "bottom"):
                need_width = max(need_width, slot.slice_width)
                need_height += slot.slice_height
            else:
                need_height = max(need_height, slot.slice_height)
                need_width += slot.slice_width
        return max(need_width, 1), max(need_height, 1)

    def arrange(self, parent) -> None:
        """Assign geometry to every packed child of ``parent``."""
        slots = self._slots.get(parent)
        if not slots:
            return
        if not parent.explicit_size:
            # Geometry propagation: ask that the parent be exactly big
            # enough for its slots.  A parent with a user-pinned size
            # (frame -geometry, wm geometry) keeps it.
            need_width, need_height = self.requested_size(parent)
            geometry.request_size(parent, need_width, need_height)
        width, height = parent.width, parent.height

        extra_x, extra_y = self._expand_extras(slots, width, height)
        cavity_x, cavity_y = 0, 0
        cavity_w, cavity_h = width, height
        for slot in slots:
            if slot.side in ("top", "bottom"):
                band_h = min(slot.slice_height + extra_y.pop(slot, 0),
                             cavity_h)
                band_w = cavity_w
                band_x = cavity_x
                band_y = cavity_y if slot.side == "top" \
                    else cavity_y + cavity_h - band_h
                if slot.side == "top":
                    cavity_y += band_h
                cavity_h -= band_h
            else:
                band_w = min(slot.slice_width + extra_x.pop(slot, 0),
                             cavity_w)
                band_h = cavity_h
                band_y = cavity_y
                band_x = cavity_x if slot.side == "left" \
                    else cavity_x + cavity_w - band_w
                if slot.side == "left":
                    cavity_x += band_w
                cavity_w -= band_w
            self._place(slot, band_x, band_y, band_w, band_h,
                        width, height)

    def _expand_extras(self, slots: List[PackSlot], width: int,
                       height: int) -> tuple:
        """Distribute leftover cavity space among expanding slots."""
        used_x = sum(slot.slice_width for slot in slots
                     if slot.side in ("left", "right"))
        used_y = sum(slot.slice_height for slot in slots
                     if slot.side in ("top", "bottom"))
        expanders_x = [slot for slot in slots if slot.expand and
                       slot.side in ("left", "right")]
        expanders_y = [slot for slot in slots if slot.expand and
                       slot.side in ("top", "bottom")]
        extra_x: Dict[PackSlot, int] = {}
        extra_y: Dict[PackSlot, int] = {}
        leftover_x = max(0, width - used_x)
        leftover_y = max(0, height - used_y)
        if expanders_x and leftover_x:
            share, remainder = divmod(leftover_x, len(expanders_x))
            for index, slot in enumerate(expanders_x):
                extra_x[slot] = share + (1 if index < remainder else 0)
        if expanders_y and leftover_y:
            share, remainder = divmod(leftover_y, len(expanders_y))
            for index, slot in enumerate(expanders_y):
                extra_y[slot] = share + (1 if index < remainder else 0)
        return extra_x, extra_y

    def _place(self, slot: PackSlot, band_x: int, band_y: int,
               band_w: int, band_h: int, parent_w: int,
               parent_h: int) -> None:
        """Size and position a window inside its band."""
        window = slot.window
        inner_w = max(0, band_w - 2 * slot.padx)
        inner_h = max(0, band_h - 2 * slot.pady)
        width = inner_w if slot.fill_x else \
            min(window.requested_width, inner_w)
        height = inner_h if slot.fill_y else \
            min(window.requested_height, inner_h)
        width = max(1, width)
        height = max(1, height)
        fx, fy = _ANCHORS[slot.anchor]
        x = band_x + slot.padx + int((inner_w - width) * fx)
        y = band_y + slot.pady + int((inner_h - height) * fy)
        # A window whose band was squeezed to nothing still gets its
        # minimum 1x1 geometry; keep it inside the parent.
        x = max(0, min(x, parent_w - width))
        y = max(0, min(y, parent_h - height))
        window.move_resize(x, y, width, height)
        window.map()
