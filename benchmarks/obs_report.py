"""Observability overhead report and gate.

The instrumentation added by ``repro.obs`` sits on the interpreter's
hottest paths (every command invocation, every compile-cache probe,
every X request), so its *disabled* cost must stay negligible.  This
harness measures the BENCH_interp interpreter workloads in three
configurations:

* ``obs_off``  — ``Interp(obs_enabled=False)``: the ablation; the
  tracer is never consulted (metric counters still exist — they are
  the storage for ``info cmdcount`` and friends).
* ``obs_on``   — the default shipping configuration: counters active,
  tracer present but not started.
* ``tracer_on``— the tracer started and collecting spans.

All three run in the same process with their timing blocks
*interleaved* round-robin (off/on/traced, off/on/traced, ...) and the
best block kept per configuration, so the <3% gate on ``obs_on`` vs
``obs_off`` is immune both to cross-machine variance and to CPU
frequency drift during the run.  Results go to ``BENCH_obs.json``; the
committed means of ``BENCH_interp.json`` ride along as a reference.

Usage::

    PYTHONPATH=src python benchmarks/obs_report.py              # regenerate
    PYTHONPATH=src python benchmarks/obs_report.py --check      # CI gate
    PYTHONPATH=src python benchmarks/obs_report.py --dump-trace trace.json
"""

import io
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.tcl import Interp  # noqa: E402
from repro.tk import TkApp  # noqa: E402
from repro.x11 import XServer  # noqa: E402

BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs.json")
INTERP_BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_interp.json")

#: The gate: obs_on (counters, tracer idle) vs obs_off overhead bound.
GATE_PCT = 3.0

#: interleaved rounds per workload; the best block per configuration
#: is kept, so one slow round (GC, scheduler) cannot skew either side
_ROUNDS = 15
_MIN_TIME = 0.08


def _calibrate(func) -> int:
    """Iterations needed for one timing block of ~_MIN_TIME seconds."""
    func()                                   # warm caches
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            func()
        if time.perf_counter() - start >= _MIN_TIME:
            return number
        number *= 4


def _measure_interleaved(thunks):
    """Best mean seconds per call for each thunk, blocks interleaved."""
    numbers = [_calibrate(thunk) for thunk in thunks]
    bests = [float("inf")] * len(thunks)
    for _ in range(_ROUNDS):
        for position, thunk in enumerate(thunks):
            start = time.perf_counter()
            for _ in range(numbers[position]):
                thunk()
            elapsed = time.perf_counter() - start
            bests[position] = min(bests[position],
                                  elapsed / numbers[position])
    return bests


def _workloads():
    """(name, build(interp) -> thunk) for the BENCH_interp workloads."""

    def simple_command(interp):
        return lambda: interp.eval("set a 1")

    def proc_call(interp):
        interp.eval("proc add {x y} {expr {$x + $y}}")
        return lambda: interp.eval("add 19 23")

    def expr_loop(interp):
        script = "set i 0\nwhile {$i < 100} {incr i}"
        return lambda: interp.eval(script)

    return [("simple_command", simple_command),
            ("proc_call", proc_call),
            ("expr_loop", expr_loop)]


def run_report() -> dict:
    report = {}
    for name, build in _workloads():
        traced_interp = Interp()
        traced_interp.obs.tracer.start()
        try:
            off, on, traced = _measure_interleaved(
                [build(Interp(obs_enabled=False)),
                 build(Interp()),
                 build(traced_interp)])
        finally:
            traced_interp.obs.tracer.stop()
        overhead = (on - off) / off * 100.0
        tracer_overhead = (traced - off) / off * 100.0
        report[name] = {
            "obs_off_us": round(off * 1e6, 3),
            "obs_on_us": round(on * 1e6, 3),
            "tracer_on_us": round(traced * 1e6, 3),
            "overhead_pct": round(overhead, 2),
            "tracer_overhead_pct": round(tracer_overhead, 2),
        }
        print("%-16s off %9.3f us   on %9.3f us (%+5.2f%%)   "
              "traced %9.3f us (%+6.2f%%)"
              % (name, off * 1e6, on * 1e6, overhead,
                 traced * 1e6, tracer_overhead))
    return report


def check(report: dict) -> int:
    failures = [name for name, stats in report.items()
                if stats["overhead_pct"] >= GATE_PCT]
    if failures:
        print("FAIL: obs-enabled overhead >=%.1f%% in: %s"
              % (GATE_PCT, ", ".join(failures)))
        return 1
    print("OK: obs-enabled (tracer idle) overhead <%.1f%% on all "
          "BENCH_interp workloads" % GATE_PCT)
    return 0


def dump_trace(filename: str) -> None:
    """Trace a button click end to end; write the full obs dump."""
    server = XServer()
    app = TkApp(server, name="obsdump")
    app.interp.stdout = io.StringIO()
    app.interp.eval("proc doClick {} {.b flash}")
    app.interp.eval('button .b -text Report -command {doClick}')
    app.interp.eval("bind .b <ButtonRelease-1> {set released 1}")
    app.interp.eval("pack append . .b {top}")
    app.update()
    app.obs.tracer.start(wire=True)
    window = app.window(".b")
    root_x, root_y = window.root_position()
    server.warp_pointer(root_x + 2, root_y + 2)
    server.press_button(1)
    server.release_button(1)
    app.update()
    app.obs.tracer.stop()
    with open(filename, "w") as handle:
        handle.write(app.obs.dump_json() + "\n")
    print("wrote %s (%d spans)" % (filename, len(app.obs.tracer.spans)))


def main(argv) -> int:
    argv = list(argv)
    if "--dump-trace" in argv:
        position = argv.index("--dump-trace")
        if position + 1 >= len(argv):
            print("error: --dump-trace needs a filename")
            return 1
        dump_trace(argv[position + 1])
        del argv[position:position + 2]
        if not argv:
            return 0
    checking = "--check" in argv
    report = run_report()
    if checking:
        return check(report)
    output = {"gate_pct": GATE_PCT, "workloads": report}
    if os.path.exists(INTERP_BENCH_FILE):
        with open(INTERP_BENCH_FILE) as handle:
            committed = json.load(handle)
        output["bench_interp_reference"] = {
            name: stats["mean_us"] for name, stats in committed.items()
            if name in report}
    with open(BENCH_FILE, "w") as handle:
        json.dump(output, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % BENCH_FILE)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
