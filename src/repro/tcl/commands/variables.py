"""Variable commands: set, unset, incr, append, array.

Variables are string-valued (paper section 2).  Array elements
(``name(index)``) are supported as in classic Tcl.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import TclError
from ..lists import format_list, parse_list
from ..strings import glob_match, _to_int


def split_var_name(name: str) -> Tuple[str, Optional[str]]:
    """Split ``a(x)`` into ``("a", "x")``; plain names give (name, None)."""
    if name.endswith(")"):
        open_paren = name.find("(")
        if open_paren > 0:
            return name[:open_paren], name[open_paren + 1:-1]
    return name, None


def cmd_set(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise TclError('wrong # args: should be "set varName ?newValue?"')
    name, index = split_var_name(argv[1])
    if len(argv) == 3:
        return interp.set_var(name, argv[2], index)
    return interp.get_var(name, index)


def _specialize_set(argv: List[str]):
    """Compile-time argument plan for literal ``set`` commands.

    The variable name is split once, so re-evaluating a cached
    ``set a 1`` is a single ``set_var`` call (see repro.tcl.compile).
    """
    if len(argv) == 3:
        name, index = split_var_name(argv[1])
        value = argv[2]

        def fast_set(interp) -> str:
            return interp.set_var(name, value, index)

        return fast_set
    if len(argv) == 2:
        name, index = split_var_name(argv[1])

        def fast_get(interp) -> str:
            return interp.get_var(name, index)

        return fast_get
    return None


cmd_set.specialize = _specialize_set


def cmd_unset(interp, argv: List[str]) -> str:
    if len(argv) < 2:
        raise TclError(
            'wrong # args: should be "unset varName ?varName ...?"')
    for full_name in argv[1:]:
        name, index = split_var_name(full_name)
        interp.unset_var(name, index)
    return ""


def cmd_incr(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise TclError(
            'wrong # args: should be "incr varName ?increment?"')
    name, index = split_var_name(argv[1])
    current = _to_int(interp.get_var(name, index))
    amount = _to_int(argv[2]) if len(argv) == 3 else 1
    return interp.set_var(name, str(current + amount), index)


def _specialize_incr(argv: List[str]):
    """Compile-time plan for literal ``incr``: name split and increment
    parsed once."""
    if len(argv) not in (2, 3):
        return None
    name, index = split_var_name(argv[1])
    if len(argv) == 3:
        try:
            amount = _to_int(argv[2])
        except TclError:
            # Let the generic path report the malformed increment.
            return None
    else:
        amount = 1

    def fast_incr(interp) -> str:
        current = _to_int(interp.get_var(name, index))
        return interp.set_var(name, str(current + amount), index)

    return fast_incr


cmd_incr.specialize = _specialize_incr


def cmd_append(interp, argv: List[str]) -> str:
    if len(argv) < 3:
        raise TclError(
            'wrong # args: should be "append varName value ?value ...?"')
    name, index = split_var_name(argv[1])
    try:
        current = interp.get_var(name, index)
    except TclError:
        current = ""
    value = current + "".join(argv[2:])
    return interp.set_var(name, value, index)


def cmd_array(interp, argv: List[str]) -> str:
    """array option arrayName ?arg ...? — size/names/exists/get/set."""
    if len(argv) < 3:
        raise TclError(
            'wrong # args: should be "array option arrayName ?arg ...?"')
    option, name = argv[1], argv[2]
    frame, resolved = interp._resolve(interp.current_frame, name)
    value = interp._read_cell(frame, resolved)
    is_array = isinstance(value, dict)
    if option == "exists":
        return "1" if is_array else "0"
    if option == "set":
        if len(argv) != 4:
            raise TclError(
                'wrong # args: should be "array set arrayName list"')
        pairs = parse_list(argv[3])
        if len(pairs) % 2 != 0:
            raise TclError("list must have an even number of elements")
        for position in range(0, len(pairs), 2):
            interp.set_var(name, pairs[position + 1], pairs[position])
        return ""
    if not is_array:
        raise TclError('"%s" isn\'t an array' % name)
    if option == "size":
        return str(len(value))
    if option == "names":
        pattern = argv[3] if len(argv) > 3 else None
        names = [key for key in value
                 if pattern is None or glob_match(pattern, key)]
        return format_list(sorted(names))
    if option == "get":
        pattern = argv[3] if len(argv) > 3 else None
        items: List[str] = []
        for key in sorted(value):
            if pattern is None or glob_match(pattern, key):
                items.extend([key, value[key]])
        return format_list(items)
    raise TclError(
        'bad option "%s": should be exists, get, names, set, or size'
        % option)


def register(interp) -> None:
    interp.register("set", cmd_set)
    interp.register("unset", cmd_unset)
    interp.register("incr", cmd_incr)
    interp.register("append", cmd_append)
    interp.register("array", cmd_array)
