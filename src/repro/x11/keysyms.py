"""Keysym names for the simulated keyboard.

Tk's ``bind`` command names keys by keysym (``<Escape>q`` in the
paper's Figure 7).  This module provides the name <-> character mapping
that the binding machinery and the widgets' default key bindings use.
"""

from __future__ import annotations

from typing import Optional

#: Keysyms for characters that have non-obvious names.
_NAMED_CHARS = {
    " ": "space",
    "!": "exclam",
    '"': "quotedbl",
    "#": "numbersign",
    "$": "dollar",
    "%": "percent",
    "&": "ampersand",
    "'": "apostrophe",
    "(": "parenleft",
    ")": "parenright",
    "*": "asterisk",
    "+": "plus",
    ",": "comma",
    "-": "minus",
    ".": "period",
    "/": "slash",
    ":": "colon",
    ";": "semicolon",
    "<": "less",
    "=": "equal",
    ">": "greater",
    "?": "question",
    "@": "at",
    "[": "bracketleft",
    "\\": "backslash",
    "]": "bracketright",
    "^": "asciicircum",
    "_": "underscore",
    "`": "grave",
    "{": "braceleft",
    "|": "bar",
    "}": "braceright",
    "~": "asciitilde",
    "\n": "Return",
    "\r": "Return",
    "\t": "Tab",
    "\x1b": "Escape",
    "\x08": "BackSpace",
    "\x7f": "Delete",
}

_CHAR_FOR_NAME = {name: char for char, name in _NAMED_CHARS.items()
                  if char not in "\r"}

#: Function keysyms with no printable character.
FUNCTION_KEYS = {
    "Up", "Down", "Left", "Right", "Home", "End", "Prior", "Next",
    "Insert", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
    "F10", "Shift_L", "Shift_R", "Control_L", "Control_R", "Meta_L",
    "Meta_R", "Alt_L", "Alt_R",
}


def keysym_for_char(char: str) -> str:
    """Return the keysym naming a character."""
    if char in _NAMED_CHARS:
        return _NAMED_CHARS[char]
    if len(char) == 1 and char.isprintable():
        return char
    raise ValueError("no keysym for character %r" % char)


def char_for_keysym(keysym: str) -> Optional[str]:
    """Return the character a keysym produces, or None for function keys."""
    if keysym in _CHAR_FOR_NAME:
        return _CHAR_FOR_NAME[keysym]
    if len(keysym) == 1:
        return keysym
    if keysym in FUNCTION_KEYS:
        return None
    return None


def is_keysym(name: str) -> bool:
    """True if ``name`` is a recognized keysym name."""
    if len(name) == 1:
        return True
    return name in _CHAR_FOR_NAME or name in FUNCTION_KEYS
