"""Transports: how a Display's frames reach the XServer.

Two interchangeable implementations of the same contract sit between
:class:`~repro.x11.display.Display` and
:class:`~repro.x11.xserver.XServer`:

:class:`LoopbackTransport`
    The default.  Requests still execute as direct method calls — so
    every existing test, golden journal, and fleet snapshot stays
    byte-identical — but each request, reply, event, and error is
    *also* accounted at its exact :mod:`repro.x11.wire` frame size
    (``wire.frame_size``; frames are materialised only under
    ``capture_wire`` or ``verify``), so bytes-in/out per client and
    round-trip latency are first-class metrics even in-process.  With
    ``verify=True`` the decoded frames are delivered instead of the
    originals, proving the codec is lossless.

:class:`SocketTransport`
    The real thing: a :class:`ServerHost` runs the XServer on its own
    thread, serving any number of client Displays over per-client
    ``socket.socketpair()`` connections with read/write buffering and
    backpressure accounting.  The protocol is ack-synchronous — a
    BATCH is answered by the events it generated and then a BATCH_ACK,
    a REQUEST by events and then a REPLY or ERROR — which keeps the
    virtual-clock simulation deterministic and gives the transport
    inherent flow control.

Both transports install themselves as the client's event sink, so the
fault plan's drop/delay decisions act on *frames* at the transport
layer rather than on in-server method calls; released delayed events
bypass the plan through the client's direct sink (a release must not
be re-dropped).

Metrics (on the server's registry, labeled by client number and
transport kind): ``x11.wire.bytes_out`` / ``x11.wire.bytes_in`` count
payload traffic from the client's point of view (handshake and MARK
flow control are uncounted, so loopback and socket byte counts agree);
``x11.wire.rtt_ms`` is a virtual-clock histogram over reply-bearing
requests; ``x11.wire.backpressure`` counts short writes on a
connection whose peer is slow to read.  The ``transport=`` label keeps
mixed-transport fleets from folding both paths into one series.

When a span tracer is active (:mod:`repro.obs.trace`), both transports
open a *wire span* per outbound BATCH/REQUEST/ONEWAY frame, stamp its
id into the frame's trace-context field, and set ``server._trace_ctx``
for the duration of the server-side handling, so the server's per-tick
handle spans stitch into the client's causal tree identically on both
transports.  With no tracer active the frames carry no context and are
byte-identical to the untraced codec.

Input injection (``warp_pointer`` and friends) must run on the server
thread *and* drain client output buffers mid-call in the same order
the loopback path does.  :meth:`ServerHost.call` marshals the callable
to the server thread; when the server-side flush hook for a socket
client fires, the host posts a flush request back to the calling
thread, serves that client's frames until a MARK fence arrives, and
only then lets the injector continue — reproducing the exact journal
ordering of the in-process path.
"""

from __future__ import annotations

import queue
import select
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from . import wire
from .xserver import XConnectionLost, XProtocolError, XServer
from ..obs import trace as _trace

__all__ = [
    "LoopbackTransport", "SocketTransport", "ServerHost",
    "ensure_host", "shutdown_host", "resolve_transport", "RTT_BUCKETS",
]

#: Bucket edges (virtual ms) for the round-trip latency histogram.
RTT_BUCKETS = (1, 2, 5, 10, 20, 50, 100)

_LOST = "connection to X server lost"

#: Outbound buffer cap per connection; past this the server closes the
#: unresponsive client down, as a real server does when a consumer
#: stops reading.
WRITE_LIMIT = 1 << 20

_RECV_CHUNK = 65536

#: How long a blocking client-side read waits for the server thread
#: before declaring the connection dead.  Generous: the virtual-clock
#: simulation never legitimately takes seconds per round trip.
_REPLY_TIMEOUT = 30.0


class _Telemetry:
    """Per-connection wire metrics on the server's registry."""

    def __init__(self, server: XServer, number: int, kind: str):
        registry = server.obs.metrics
        self.bytes_out = registry.counter("x11.wire.bytes_out",
                                          client=number, transport=kind)
        self.bytes_in = registry.counter("x11.wire.bytes_in",
                                         client=number, transport=kind)
        self.rtt_ms = registry.histogram("x11.wire.rtt_ms",
                                         buckets=RTT_BUCKETS,
                                         client=number, transport=kind)


# ----------------------------------------------------------------------
# loopback
# ----------------------------------------------------------------------

class LoopbackTransport:
    """In-process transport: wire accounting over direct method calls."""

    kind = "loopback"

    def __init__(self, server: XServer, client=None, verify: bool = False):
        self.server = server
        self.client = client if client is not None else server.connect()
        self.verify = verify
        #: captured frames when :meth:`capture_wire` is active
        self.wire_log: Optional[List[bytes]] = None
        #: wall-clock RTT samples (ns) when :meth:`enable_wall_rtt` is on;
        #: never fed into a metrics registry — registries must stay
        #: bit-identical across same-seed runs.
        self.wall_rtt_ns: Optional[List[int]] = None
        self._wall_clock: Optional[Callable[[], int]] = None
        self._telemetry = _Telemetry(server, self.client.number,
                                     self.kind)
        self.client.transport_sink = self._sink_event
        self.client.direct_sink = self._ship_event

    # -- connection facts ----------------------------------------------

    @property
    def root(self) -> int:
        return self.server.root.id

    @property
    def screen_width(self) -> int:
        return self.server.root.width

    @property
    def screen_height(self) -> int:
        return self.server.root.height

    @property
    def connection_closed(self) -> bool:
        return self.client.closed

    def register_flush_hook(self, hook: Callable[[], object]) -> None:
        self.client.flush_output = hook

    def capture_wire(self) -> List[bytes]:
        """Start logging every frame; returns the live log list."""
        self.wire_log = []
        return self.wire_log

    def enable_wall_rtt(self, clock: Callable[[], int]) -> List[int]:
        self._wall_clock = clock
        self.wall_rtt_ns = []
        return self.wall_rtt_ns

    # -- frame accounting ----------------------------------------------
    #
    # Counting goes through wire.frame_size on the hot path; frames are
    # only materialised when a capture log or verify mode needs the
    # actual bytes.  frame_size raises the same WireError encode_frame
    # would, so unencodable values fail identically either way.

    def _count_out(self, ftype: int, value=None,
                   ctx: Optional[int] = None) -> Optional[bytes]:
        if self.wire_log is None and not self.verify:
            self._telemetry.bytes_out.value += wire.frame_size(ftype,
                                                               value,
                                                               ctx)
            return None
        frame = wire.encode_frame(ftype, value, ctx)
        self._telemetry.bytes_out.value += len(frame)
        if self.wire_log is not None:
            self.wire_log.append(frame)
        return frame

    def _count_in(self, ftype: int, value=None) -> None:
        if self.wire_log is None:
            self._telemetry.bytes_in.value += wire.frame_size(ftype,
                                                              value)
            return
        frame = wire.encode_frame(ftype, value)
        self._telemetry.bytes_in.value += len(frame)
        self.wire_log.append(frame)

    def _resolve(self, number: int):
        if number == self.client.number:
            return self.client
        for client in self.server.clients:
            if client.number == number:
                return client
        return wire.ClientRef(number)

    # -- event delivery (installed as the client's sinks) --------------

    def _sink_event(self, event) -> None:
        plan = self.server.fault_plan
        if plan is not None and not plan.on_event(self.server,
                                                  self.client, event):
            return
        self._ship_event(event)

    def _ship_event(self, event) -> None:
        self._count_in(wire.EVENT, event)
        self.client.queue.append(event)

    # -- request paths -------------------------------------------------

    def deliver_batch(self, ops, queue_ms: int = 0) -> int:
        ops = list(ops)
        ctx, spans = (_trace.open_wire("batch", queue_ms)
                      if _trace._ACTIVE else (None, ()))
        server = self.server
        prev_ctx = server._trace_ctx
        try:
            frame = self._count_out(wire.BATCH, ops, ctx)
            if self.verify:
                ops = [tuple(op) for op in
                       wire.decode_frame(frame, self._resolve)[1]]
            server._trace_ctx = ctx
            try:
                delivered = server.deliver_batch(self.client, ops)
            except XProtocolError as error:
                self._count_in(wire.ERROR, wire.error_value(error))
                raise
            self._count_in(wire.BATCH_ACK, delivered)
            return delivered
        finally:
            server._trace_ctx = prev_ctx
            if spans:
                _trace.close_wire(ctx, spans)

    def request(self, name: str, *args, **kwargs):
        ctx, spans = (_trace.open_wire(name)
                      if _trace._ACTIVE else (None, ()))
        server = self.server
        prev_ctx = server._trace_ctx
        try:
            frame = self._count_out(wire.REQUEST, (name, args, kwargs),
                                    ctx)
            if self.verify:
                name, args, kwargs = \
                    wire.decode_frame(frame, self._resolve)[1]
            server._jclient = self.client.number
            started = server.time_ms
            wall = self._wall_clock() \
                if self._wall_clock is not None else None
            server._trace_ctx = ctx
            try:
                result = getattr(server, name)(*args, **kwargs)
            except XProtocolError as error:
                self._count_in(wire.ERROR, wire.error_value(error))
                self._observe_rtt(started, wall)
                self._scrub_if_closed()
                raise
            self._count_in(wire.REPLY, result)
            self._observe_rtt(started, wall)
            self._scrub_if_closed()
            return result
        finally:
            server._trace_ctx = prev_ctx
            if spans:
                _trace.close_wire(ctx, spans)

    def oneway(self, name: str, window, args, kwargs) -> None:
        ctx, spans = (_trace.open_wire(name)
                      if _trace._ACTIVE else (None, ()))
        server = self.server
        prev_ctx = server._trace_ctx
        try:
            frame = self._count_out(wire.ONEWAY,
                                    (name, window, args, kwargs), ctx)
            if self.verify:
                name, window, args, kwargs = \
                    wire.decode_frame(frame, self._resolve)[1]
            server._trace_ctx = ctx
            try:
                getattr(server, name)(*args, **kwargs)
            except XProtocolError as error:
                self._count_in(wire.ERROR, wire.error_value(error))
                self._scrub_if_closed()
                raise
            self._count_in(wire.ONEWAY_ACK, None)
            self._scrub_if_closed()
        finally:
            server._trace_ctx = prev_ctx
            if spans:
                _trace.close_wire(ctx, spans)

    def _observe_rtt(self, started: int, wall: Optional[int]) -> None:
        self._telemetry.rtt_ms.observe(self.server.time_ms - started)
        if wall is not None:
            self.wall_rtt_ns.append(self._wall_clock() - wall)

    def _scrub_if_closed(self) -> None:
        # A scripted fault may have closed this connection during the
        # request's own tick, after close-down but before the request
        # body re-registered state; nothing may survive for a closed
        # client (the fuzzer's census oracle checks exactly this).
        if self.client.closed:
            self.server._scrub_closed(self.client)

    # -- event queue ---------------------------------------------------

    def poll(self) -> None:
        """Pull pending inbound traffic (a no-op in-process)."""

    def has_queued(self) -> bool:
        return bool(self.client.queue)

    def pending(self) -> int:
        return self.client.pending()

    def next_event(self):
        return self.client.next_event()

    # -- close-down ----------------------------------------------------

    def close(self) -> None:
        if not self.client.closed:
            self._count_out(wire.BYE, None)
        self.server.disconnect(self.client)


# ----------------------------------------------------------------------
# socket server host
# ----------------------------------------------------------------------

class _Conn:
    """Server-side state of one socket connection (server thread only)."""

    def __init__(self, host: "ServerHost", sock: socket.socket):
        self.host = host
        self.sock = sock
        self.client = None  # bound by the SETUP frame
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.closed = False
        self.lost_sent = False
        self._m_backpressure = None

    def resolve(self, number: int):
        for client in self.host.server.clients:
            if client.number == number:
                return client
        return wire.ClientRef(number)

    # -- writing -------------------------------------------------------

    def send(self, frame: bytes) -> None:
        if self.closed:
            return
        self.wbuf += frame
        self.flush_writes()
        if len(self.wbuf) > WRITE_LIMIT:
            self.host._close_down(self, "write buffer overflow")

    def send_error(self, error: Exception) -> None:
        self.send(wire.encode_frame(wire.ERROR, wire.error_value(error)))

    def flush_writes(self) -> None:
        while self.wbuf and not self.closed:
            try:
                sent = self.sock.send(self.wbuf)
            except BlockingIOError:
                self._note_backpressure()
                break
            except OSError:
                self.close()
                break
            if sent <= 0:
                self._note_backpressure()
                break
            del self.wbuf[:sent]

    def _note_backpressure(self) -> None:
        if self._m_backpressure is None:
            number = self.client.number if self.client is not None else 0
            self._m_backpressure = self.host.server.obs.metrics.counter(
                "x11.wire.backpressure", client=number)
        self._m_backpressure.value += 1

    # -- event delivery (installed as the client's sinks) --------------

    def sink_event(self, event) -> None:
        server = self.host.server
        plan = server.fault_plan
        if plan is not None and not plan.on_event(server, self.client,
                                                  event):
            return
        self.ship_event(event)

    def ship_event(self, event) -> None:
        if not self.closed:
            self.send(wire.encode_frame(wire.EVENT, event))

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.host._sel.unregister(self.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        if self in self.host._conns:
            self.host._conns.remove(self)


class _HostCall:
    """A callable marshalled to the server thread, plus its results."""

    __slots__ = ("fn", "result", "error", "requests")

    def __init__(self, fn):
        self.fn = fn
        self.result = None
        self.error = None
        #: ("flush", client_number) requests and the final ("done",)
        self.requests: "queue.Queue" = queue.Queue()


class ServerHost:
    """Runs an XServer on its own thread, serving socket clients.

    The control plane (virtual clock, metrics registry, journal) stays
    shared memory — the host is a thread, not a separate process — but
    the data plane crosses a real socketpair per client as
    length-prefixed frames.  Callers must not touch the server's
    request API directly while the host is running; use
    :class:`SocketTransport` for session traffic and :meth:`call` /
    :meth:`inject` for server-side operations such as input injection.
    """

    def __init__(self, server: XServer):
        self.server = server
        self.running = False
        self._thread: Optional[threading.Thread] = None
        self._sel: Optional[selectors.BaseSelector] = None
        self._conns: List[_Conn] = []
        self._commands: deque = deque()
        self._lock = threading.Lock()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._active_call: Optional[_HostCall] = None
        #: client number -> (display flush hook, SocketTransport)
        self._flushers: Dict[int, Tuple[Callable, "SocketTransport"]] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ServerHost":
        if self.running:
            return self
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._wake_r, selectors.EVENT_READ, None)
        self.running = True
        self._thread = threading.Thread(target=self._loop,
                                        name="xserver-host", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if not self.running:
            return
        with self._lock:
            self._commands.append(("stop", None))
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.running = False

    def open_connection(self) -> socket.socket:
        """Create a socketpair, hand the server end to the host loop,
        and return the client end (called from a client thread)."""
        server_end, client_end = socket.socketpair()
        with self._lock:
            self._commands.append(("conn", server_end))
        self._wake()
        return client_end

    def register_display(self, number: int, flush_hook: Callable,
                         transport: "SocketTransport") -> None:
        self._flushers[number] = (flush_hook, transport)

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass

    # -- cross-thread calls --------------------------------------------

    def call(self, fn: Callable[[], object]):
        """Run ``fn`` on the server thread and return its result.

        While the call runs, this (client) thread services any flush
        requests the server posts for socket-backed Displays — the
        socket analogue of ``_drain_client_output`` — so buffered
        output crosses the wire at exactly the same point it would
        in-process.
        """
        if threading.current_thread() is self._thread:
            return fn()
        if not self.running:
            raise RuntimeError("ServerHost is not running")
        call = _HostCall(fn)
        with self._lock:
            self._commands.append(("call", call))
        self._wake()
        while True:
            item = call.requests.get()
            if item[0] == "done":
                break
            if item[0] == "flush":
                entry = self._flushers.get(item[1])
                if entry is not None:
                    hook, transport = entry
                    try:
                        hook()
                    except XProtocolError:
                        pass
                    transport.send_mark()
        if call.error is not None:
            raise call.error
        return call.result

    def inject(self, name: str, *args):
        """Run a server input injector (``warp_pointer`` etc.) on the
        server thread."""
        server = self.server
        return self.call(lambda: getattr(server, name)(*args))

    # -- server thread loop --------------------------------------------

    def _loop(self) -> None:
        while self.running:
            try:
                events = self._sel.select(timeout=0.2)
            except OSError:  # pragma: no cover - selector torn down
                break
            for key, mask in events:
                conn = key.data
                if conn is None:
                    self._drain_wake()
                    self._process_commands()
                    continue
                if conn.closed:
                    continue
                if mask & selectors.EVENT_WRITE:
                    conn.flush_writes()
                    self._update_interest(conn)
                if mask & selectors.EVENT_READ:
                    self._read_conn(conn)
            self._sweep()
        for conn in list(self._conns):
            conn.close()
        try:
            self._sel.close()
        except OSError:  # pragma: no cover
            pass

    def _drain_wake(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _process_commands(self) -> None:
        while True:
            with self._lock:
                if not self._commands:
                    return
                kind, payload = self._commands.popleft()
            if kind == "conn":
                payload.setblocking(False)
                conn = _Conn(self, payload)
                self._conns.append(conn)
                self._sel.register(payload, selectors.EVENT_READ, conn)
            elif kind == "call":
                self._run_call(payload)
            elif kind == "stop":
                self.running = False

    def _run_call(self, call: _HostCall) -> None:
        self._active_call = call
        try:
            call.result = call.fn()
        except BaseException as error:
            call.error = error
        finally:
            self._active_call = None
        self._sweep()
        call.requests.put(("done",))

    def _update_interest(self, conn: _Conn) -> None:
        if conn.closed:
            return
        interest = selectors.EVENT_READ
        if conn.wbuf:
            interest |= selectors.EVENT_WRITE
        try:
            self._sel.modify(conn.sock, interest, conn)
        except (KeyError, ValueError, OSError):
            pass

    def _read_conn(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if not data:
            self._drop_conn(conn)
            return
        conn.rbuf += data
        try:
            frames = wire.extract_frames(conn.rbuf)
        except wire.WireError:
            self._drop_conn(conn)
            return
        for frame in frames:
            if conn.closed:
                break
            self._handle_frame(conn, frame)
        self._update_interest(conn)
        self._sweep()

    # -- frame handling ------------------------------------------------

    def _handle_frame(self, conn: _Conn, frame: bytes) -> None:
        try:
            ftype, value, ctx = wire.decode_frame_ex(frame, conn.resolve)
        except wire.WireError:
            self._drop_conn(conn)
            return
        server = self.server
        if ftype == wire.SETUP:
            client = server.connect()
            conn.client = client
            client.transport_sink = conn.sink_event
            client.direct_sink = conn.ship_event
            client.flush_output = self._make_flush_hook(conn)
            conn.send(wire.encode_frame(wire.SETUP_ACK, (
                client.number, server.root.id, server.root.width,
                server.root.height)))
            return
        if conn.client is None:
            self._drop_conn(conn)
            return
        if ftype == wire.BATCH:
            ops = [tuple(op) for op in value]
            prev_ctx = server._trace_ctx
            server._trace_ctx = ctx
            try:
                delivered = server.deliver_batch(conn.client, ops)
            except XConnectionLost as error:
                conn.lost_sent = True
                conn.send_error(error)
                conn.flush_writes()
                conn.close()
            except XProtocolError as error:
                conn.send_error(error)
            else:
                conn.send(wire.encode_frame(wire.BATCH_ACK, delivered))
            finally:
                server._trace_ctx = prev_ctx
            return
        if ftype == wire.REQUEST:
            name, args, kwargs = value
            server._jclient = conn.client.number
            prev_ctx = server._trace_ctx
            server._trace_ctx = ctx
            try:
                result = getattr(server, name)(*args, **kwargs)
            except XConnectionLost as error:
                conn.lost_sent = True
                conn.send_error(error)
                conn.flush_writes()
                conn.close()
            except XProtocolError as error:
                conn.send_error(error)
            else:
                try:
                    reply = wire.encode_frame(wire.REPLY, result)
                except wire.WireError as error:
                    conn.send_error(XProtocolError(
                        "unencodable reply from %s: %s" % (name, error)))
                else:
                    conn.send(reply)
            finally:
                server._trace_ctx = prev_ctx
            if conn.client.closed:
                server._scrub_closed(conn.client)
            return
        if ftype == wire.ONEWAY:
            name, _window, args, kwargs = value
            prev_ctx = server._trace_ctx
            server._trace_ctx = ctx
            try:
                getattr(server, name)(*args, **kwargs)
            except XConnectionLost as error:
                conn.lost_sent = True
                conn.send_error(error)
                conn.flush_writes()
                conn.close()
            except XProtocolError as error:
                conn.send_error(error)
            else:
                conn.send(wire.encode_frame(wire.ONEWAY_ACK, None))
            finally:
                server._trace_ctx = prev_ctx
            if conn.client.closed:
                server._scrub_closed(conn.client)
            return
        if ftype == wire.BYE:
            server.disconnect(conn.client)
            conn.flush_writes()
            conn.close()  # EOF is the close-down acknowledgement
            return
        if ftype == wire.MARK:
            return  # stray fence outside a drain: nothing to coordinate
        self._drop_conn(conn)

    def _drop_conn(self, conn: _Conn) -> None:
        """Protocol violation or EOF without BYE: server-side close."""
        if conn.client is not None and not conn.client.closed:
            self.server.disconnect(conn.client)
        conn.close()

    def _close_down(self, conn: _Conn, reason: str) -> None:
        if conn.client is not None and not conn.client.closed:
            self.server.disconnect(conn.client)
        conn.close()

    def _sweep(self) -> None:
        """Notify connections whose client a fault plan closed."""
        for conn in list(self._conns):
            if conn.closed or conn.client is None:
                continue
            if conn.client.closed and not conn.lost_sent:
                conn.lost_sent = True
                conn.send_error(XConnectionLost(_LOST))
                conn.flush_writes()
                conn.close()

    # -- input-injection drain (MARK protocol) -------------------------

    def _make_flush_hook(self, conn: _Conn) -> Callable[[], None]:
        def hook() -> None:
            call = self._active_call
            if call is None or conn.closed or conn.client.closed:
                return
            call.requests.put(("flush", conn.client.number))
            self._serve_until_mark(conn)
        return hook

    def _serve_until_mark(self, conn: _Conn) -> None:
        """Serve one client's frames until its MARK fence arrives.

        Runs on the server thread, inside an injector's flush hook,
        while the client thread (blocked in :meth:`call`) flushes its
        Display and then sends MARK.
        """
        deadline = time.monotonic() + _REPLY_TIMEOUT
        while not conn.closed:
            try:
                frames = wire.extract_frames(conn.rbuf)
            except wire.WireError:
                self._drop_conn(conn)
                return
            marked = False
            for index, frame in enumerate(frames):
                if len(frame) >= 5 and frame[4] == wire.MARK:
                    # anything after the fence belongs to the main loop
                    leftover = b"".join(frames[index + 1:])
                    if leftover:
                        conn.rbuf[0:0] = leftover
                    marked = True
                    break
                if conn.closed:
                    break
                self._handle_frame(conn, frame)
            if marked or conn.closed:
                return
            ready, _, _ = select.select([conn.sock], [], [], 0.1)
            if not ready:
                if time.monotonic() > deadline:
                    self._drop_conn(conn)
                    return
                continue
            try:
                data = conn.sock.recv(_RECV_CHUNK)
            except BlockingIOError:
                continue
            except OSError:
                data = b""
            if not data:
                self._drop_conn(conn)
                return
            conn.rbuf += data


# ----------------------------------------------------------------------
# socket client transport
# ----------------------------------------------------------------------

class _RemoteClient(wire.ClientRef):
    """Client-side stand-in for the server-side Client object."""

    __slots__ = ("_transport",)

    def __init__(self, transport: "SocketTransport"):
        super().__init__(transport.number)
        self._transport = transport

    @property
    def closed(self) -> bool:
        return self._transport._closed

    @property
    def queue(self):
        return self._transport.queue

    def pending(self) -> int:
        return len(self._transport.queue)

    def next_event(self):
        q = self._transport.queue
        return q.popleft() if q else None


class SocketTransport:
    """A Display's connection to a thread-hosted XServer over a socket."""

    kind = "socket"

    def __init__(self, host):
        if isinstance(host, XServer):
            host = ensure_host(host)
        self.host: ServerHost = host
        self.server = host.server  # shared control plane (clock, obs)
        self.queue: deque = deque()
        self.wire_log: Optional[List[bytes]] = None
        self.wall_rtt_ns: Optional[List[int]] = None
        self._wall_clock: Optional[Callable[[], int]] = None
        self._rbuf = bytearray()
        self._frames: deque = deque()
        self._closed = False
        self._sock = host.open_connection()
        self._sock.settimeout(_REPLY_TIMEOUT)
        # Handshake; connection setup, like a real X connection block,
        # is not session traffic and stays uncounted.
        try:
            self._sock.sendall(wire.encode_frame(wire.SETUP, None))
            ftype, value = self._handshake_read()
        except OSError:
            raise XConnectionLost(_LOST)
        if ftype != wire.SETUP_ACK:
            raise wire.WireError("expected SETUP_ACK, got %s"
                                 % wire.frame_name(ftype))
        self.number, self._root, self._width, self._height = value
        self.client = _RemoteClient(self)
        self._telemetry = _Telemetry(self.server, self.number, self.kind)

    def _handshake_read(self):
        while True:
            if self._frames:
                return wire.decode_frame(self._frames.popleft())
            data = self._sock.recv(_RECV_CHUNK)
            if not data:
                raise XConnectionLost(_LOST)
            self._rbuf += data
            self._frames.extend(wire.extract_frames(self._rbuf))

    # -- connection facts ----------------------------------------------

    @property
    def root(self) -> int:
        return self._root

    @property
    def screen_width(self) -> int:
        return self._width

    @property
    def screen_height(self) -> int:
        return self._height

    @property
    def connection_closed(self) -> bool:
        return self._closed

    def register_flush_hook(self, hook: Callable[[], object]) -> None:
        self.host.register_display(self.number, hook, self)

    def capture_wire(self) -> List[bytes]:
        self.wire_log = []
        return self.wire_log

    def enable_wall_rtt(self, clock: Callable[[], int]) -> List[int]:
        self._wall_clock = clock
        self.wall_rtt_ns = []
        return self.wall_rtt_ns

    # -- raw socket I/O ------------------------------------------------

    def _mark_lost(self) -> None:
        self._closed = True
        self.queue.clear()  # disconnect clears undelivered events

    def _send(self, frame: bytes) -> None:
        if self._closed:
            raise XConnectionLost(_LOST)
        try:
            self._sock.sendall(frame)
        except OSError:
            self._mark_lost()
            raise XConnectionLost(_LOST)
        self._telemetry.bytes_out.value += len(frame)
        if self.wire_log is not None:
            self.wire_log.append(frame)

    def send_mark(self) -> None:
        """Fence for the host's input-injection drain (uncounted)."""
        if self._closed:
            return
        try:
            self._sock.sendall(wire.encode_frame(wire.MARK, None))
        except OSError:
            self._mark_lost()

    def _next_frame(self, block: bool) -> Optional[bytes]:
        while True:
            if self._frames:
                return self._frames.popleft()
            if self._closed:
                return None
            if block:
                try:
                    data = self._sock.recv(_RECV_CHUNK)
                except socket.timeout:
                    self._mark_lost()
                    raise XConnectionLost(
                        "wire timeout: no reply from server host")
                except OSError:
                    data = b""
            else:
                self._sock.setblocking(False)
                try:
                    data = self._sock.recv(_RECV_CHUNK)
                except (BlockingIOError, socket.timeout):
                    return None
                except OSError:
                    data = b""
                finally:
                    self._sock.settimeout(_REPLY_TIMEOUT)
            if not data:
                self._mark_lost()
                return None
            self._rbuf += data
            try:
                self._frames.extend(wire.extract_frames(self._rbuf))
            except wire.WireError:
                self._mark_lost()
                raise

    def _absorb(self, frame: bytes):
        """Count and log one inbound frame; queue events."""
        self._telemetry.bytes_in.value += len(frame)
        if self.wire_log is not None:
            self.wire_log.append(frame)
        ftype, value = wire.decode_frame(frame)
        if ftype == wire.EVENT:
            self.queue.append(value)
        return ftype, value

    def _await_reply(self, expected: int):
        while True:
            frame = self._next_frame(block=True)
            if frame is None:
                raise XConnectionLost(_LOST)
            ftype, value = self._absorb(frame)
            if ftype == wire.EVENT:
                continue
            if ftype == wire.ERROR:
                error = wire.error_from_value(value)
                if isinstance(error, XConnectionLost):
                    self._mark_lost()
                raise error
            if ftype == expected:
                return value
            raise wire.WireError("unexpected %s frame while awaiting %s"
                                 % (wire.frame_name(ftype),
                                    wire.frame_name(expected)))

    # -- request paths -------------------------------------------------

    def deliver_batch(self, ops, queue_ms: int = 0) -> int:
        ctx, spans = (_trace.open_wire("batch", queue_ms)
                      if _trace._ACTIVE else (None, ()))
        try:
            self._send(wire.encode_frame(wire.BATCH, list(ops), ctx))
            return self._await_reply(wire.BATCH_ACK)
        finally:
            if spans:
                _trace.close_wire(ctx, spans)

    def request(self, name: str, *args, **kwargs):
        ctx, spans = (_trace.open_wire(name)
                      if _trace._ACTIVE else (None, ()))
        try:
            started = self.server.time_ms
            wall = self._wall_clock() \
                if self._wall_clock is not None else None
            self._send(wire.encode_frame(wire.REQUEST,
                                         (name, args, kwargs), ctx))
            try:
                return self._await_reply(wire.REPLY)
            finally:
                self._telemetry.rtt_ms.observe(
                    self.server.time_ms - started)
                if wall is not None:
                    self.wall_rtt_ns.append(self._wall_clock() - wall)
        finally:
            if spans:
                _trace.close_wire(ctx, spans)

    def oneway(self, name: str, window, args, kwargs) -> None:
        ctx, spans = (_trace.open_wire(name)
                      if _trace._ACTIVE else (None, ()))
        try:
            self._send(wire.encode_frame(wire.ONEWAY,
                                         (name, window, args, kwargs),
                                         ctx))
            self._await_reply(wire.ONEWAY_ACK)
        finally:
            if spans:
                _trace.close_wire(ctx, spans)

    # -- event queue ---------------------------------------------------

    def poll(self) -> None:
        """Absorb any frames the server has already written."""
        while not self._closed:
            frame = self._next_frame(block=False)
            if frame is None:
                return
            ftype, value = self._absorb(frame)
            if ftype == wire.ERROR:
                error = wire.error_from_value(value)
                if isinstance(error, XConnectionLost):
                    self._mark_lost()
                else:
                    raise error
            elif ftype != wire.EVENT:
                raise wire.WireError("unsolicited %s frame"
                                     % wire.frame_name(ftype))

    def has_queued(self) -> bool:
        return bool(self.queue)

    def pending(self) -> int:
        return len(self.queue)

    def next_event(self):
        return self.queue.popleft() if self.queue else None

    # -- close-down ----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._send(wire.encode_frame(wire.BYE, None))
        except XProtocolError:
            return
        # Synchronous close-down: wait for the host's EOF so the
        # journal's disconnect entry lands before the caller's next
        # action, exactly as the in-process path orders it.
        try:
            while True:
                frame = self._next_frame(block=True)
                if frame is None:
                    break
                self._absorb(frame)
        except (XProtocolError, wire.WireError):
            pass
        self._mark_lost()
        try:
            self._sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def ensure_host(server: XServer) -> ServerHost:
    """The server's running ServerHost, started on first use."""
    host = getattr(server, "_wire_host", None)
    if host is None or not host.running:
        host = ServerHost(server).start()
        server._wire_host = host
    return host


def shutdown_host(server: XServer) -> None:
    """Stop the server's host thread, if one was ever started."""
    host = getattr(server, "_wire_host", None)
    if host is not None:
        host.stop()
        server._wire_host = None


def resolve_transport(server: XServer, spec=None):
    """Build a transport from a spec.

    ``None`` or ``"loopback"`` → a fresh :class:`LoopbackTransport`;
    ``"socket"`` → a :class:`SocketTransport` over the server's
    (started-on-demand) host thread; a callable is invoked with the
    server and must return a transport; an already-built transport
    passes through.
    """
    if spec is None or spec == "loopback":
        return LoopbackTransport(server)
    if spec == "socket":
        return SocketTransport(ensure_host(server))
    if callable(spec) and not isinstance(spec, (LoopbackTransport,
                                                SocketTransport)):
        return resolve_transport(server, spec(server))
    if isinstance(spec, (LoopbackTransport, SocketTransport)):
        return spec
    raise ValueError("unknown transport %r" % (spec,))
