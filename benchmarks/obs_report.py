"""Observability overhead report and gate.

The instrumentation added by ``repro.obs`` sits on the interpreter's
hottest paths (every command invocation, every compile-cache probe,
every X request), so its *disabled* cost must stay negligible.  This
harness measures the BENCH_interp interpreter workloads in three
configurations:

* ``obs_off``  — ``Interp(obs_enabled=False)``: the ablation; the
  tracer is never consulted (metric counters still exist — they are
  the storage for ``info cmdcount`` and friends).
* ``obs_on``   — the default shipping configuration: counters active,
  tracer present but not started.
* ``tracer_on``— the tracer started and collecting spans.

All three run in the same process with their timing blocks
*interleaved* round-robin (off/on/traced, off/on/traced, ...), so the
<3% gate on ``obs_on`` vs ``obs_off`` is immune both to cross-machine
variance and to CPU frequency drift during the run; the gate uses the
best per-round ratio (a noise floor — a genuine systematic slowdown
survives the min, a scheduler spike does not) with the median ratio
reported alongside.  Results go to ``BENCH_obs.json``; the committed
means of ``BENCH_interp.json`` ride along as a reference.

The session journal gets the same treatment on a GUI workload (a
button reconfigure + event-pump round): ``no_journal`` (a server that
never saw a journal), ``journal_off`` (a journal attached then
detached — the shipping default after ``obs journal stop``), and
``journal_on`` (actively recording).  ``journal_off`` must stay within
the same <3% bound of ``no_journal``; the recording cost is reported,
not gated.

The time-series flight recorder is measured the same way on the same
GUI workload: ``no_recorder`` (pristine server), ``recorder_off``
(started once then stopped — the tick hot path back to one dead
pointer test), and ``recorder_on`` at a worst-case 1 ms cadence.
``recorder_off`` shares the <3% gate; the sampling cost is reported.

Usage::

    PYTHONPATH=src python benchmarks/obs_report.py              # regenerate
    PYTHONPATH=src python benchmarks/obs_report.py --check      # CI gate
    PYTHONPATH=src python benchmarks/obs_report.py --dump-trace trace.json
"""

import gc
import io
import json
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.tcl import Interp  # noqa: E402
from repro.tk import TkApp  # noqa: E402
from repro.x11 import XServer  # noqa: E402

BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs.json")
INTERP_BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_interp.json")

#: The gate: obs_on (counters, tracer idle) vs obs_off overhead bound.
GATE_PCT = 3.0

#: interleaved rounds per workload; the best block per configuration
#: is kept, so one slow round (GC, scheduler) cannot skew either side
_ROUNDS = 15
_MIN_TIME = 0.08


def _calibrate(func) -> int:
    """Iterations needed for one timing block of ~_MIN_TIME seconds."""
    func()                                   # warm caches
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            func()
        if time.perf_counter() - start >= _MIN_TIME:
            return number
        number *= 4


def _measure_interleaved(thunks, baseline=0):
    """Interleaved timing of all configurations, blocks round-robin.

    The collector is paused during the timed blocks (and run once per
    round between them) so a cycle collection triggered by one
    configuration's garbage cannot land in another's timing block.

    Returns ``(bests, floors, medians)``: the best mean seconds per
    call for each thunk, and each thunk's overhead (percent) against
    ``thunks[baseline]`` as both the best and the median *per-round*
    ratio.  Each round times all configurations back to back, so a
    ratio within a round is unaffected by CPU frequency drift across
    the run.  The best ratio is a noise-floor estimate — a genuine
    systematic slowdown shows up in every round, so it survives the
    min; scheduler spikes from a noisy neighbour do not.  The gate
    uses the floor, the median rides along for context.
    """
    numbers = [_calibrate(thunk) for thunk in thunks]
    rounds = []
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(_ROUNDS):
            gc.collect()
            gc.disable()
            times = []
            for position, thunk in enumerate(thunks):
                start = time.perf_counter()
                for _ in range(numbers[position]):
                    thunk()
                elapsed = time.perf_counter() - start
                times.append(elapsed / numbers[position])
            rounds.append(times)
            if gc_was_enabled:
                gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    bests = [min(times[position] for times in rounds)
             for position in range(len(thunks))]
    floors = [
        (min(times[position] / times[baseline] for times in rounds)
         - 1.0) * 100.0
        for position in range(len(thunks))]
    medians = [
        (statistics.median(times[position] / times[baseline]
                           for times in rounds) - 1.0) * 100.0
        for position in range(len(thunks))]
    return bests, floors, medians


def _workloads():
    """(name, build(interp) -> thunk) for the BENCH_interp workloads."""

    def simple_command(interp):
        return lambda: interp.eval("set a 1")

    def proc_call(interp):
        interp.eval("proc add {x y} {expr {$x + $y}}")
        return lambda: interp.eval("add 19 23")

    def expr_loop(interp):
        script = "set i 0\nwhile {$i < 100} {incr i}"
        return lambda: interp.eval(script)

    return [("simple_command", simple_command),
            ("proc_call", proc_call),
            ("expr_loop", expr_loop)]


def run_report() -> dict:
    report = {}
    for name, build in _workloads():
        traced_interp = Interp()
        traced_interp.obs.tracer.start()
        try:
            bests, floors, medians = _measure_interleaved(
                [build(Interp(obs_enabled=False)),
                 build(Interp()),
                 build(traced_interp)])
        finally:
            traced_interp.obs.tracer.stop()
        off, on, traced = bests
        overhead, tracer_overhead = floors[1], medians[2]
        report[name] = {
            "obs_off_us": round(off * 1e6, 3),
            "obs_on_us": round(on * 1e6, 3),
            "tracer_on_us": round(traced * 1e6, 3),
            "overhead_pct": round(overhead, 2),
            "overhead_median_pct": round(medians[1], 2),
            "tracer_overhead_pct": round(tracer_overhead, 2),
        }
        print("%-16s off %9.3f us   on %9.3f us (%+5.2f%% median, "
              "%+5.2f%% floor)   traced %9.3f us (%+6.2f%%)"
              % (name, off * 1e6, on * 1e6, medians[1], overhead,
                 traced * 1e6, medians[2]))
    return report


def _gui_app(name):
    server = XServer()
    app = TkApp(server, name=name)
    app.interp.stdout = io.StringIO()
    app.interp.eval("button .b -text ping\npack append . .b {top}")
    app.update()
    return server, app


def run_journal_report() -> dict:
    from repro.obs.journal import Journal
    from repro.obs.replay import start_recording

    pairs = [_gui_app("bench%d" % index) for index in range(3)]
    # journal_off: the machinery has been exercised and released —
    # the hot path must be back to one dead pointer test per request
    journal = Journal(clock=lambda: pairs[1][0].time_ms)
    journal.set_header(name="bench-off")
    pairs[1][0].attach_journal(journal)
    pairs[1][0].detach_journal()
    # a small ring keeps the recording configuration's steady-state
    # heap modest so it cannot distort the interleaved baselines
    start_recording(pairs[2][0], name="bench-on", maxlen=4096)

    def build(pair):
        server, app = pair
        interp = app.interp
        state = [0]

        def thunk():
            # alternate the label so every round redraws and ships
            # real requests through the buffer
            state[0] ^= 1
            interp.eval(".b configure -text %s"
                        % ("ping" if state[0] else "pong"))
            app.update()
        return thunk

    try:
        bests, floors, medians = _measure_interleaved(
            [build(pair) for pair in pairs])
    finally:
        pairs[2][0].detach_journal()
    base, off, on = bests
    off_overhead, on_overhead = floors[1], medians[2]
    stats = {
        "no_journal_us": round(base * 1e6, 3),
        "journal_off_us": round(off * 1e6, 3),
        "journal_on_us": round(on * 1e6, 3),
        "off_overhead_pct": round(off_overhead, 2),
        "off_overhead_median_pct": round(medians[1], 2),
        "on_overhead_pct": round(on_overhead, 2),
    }
    print("%-16s none %8.3f us   off %8.3f us (%+5.2f%% median, "
          "%+5.2f%% floor)   recording %8.3f us (%+6.2f%%)"
          % ("journal", base * 1e6, off * 1e6, medians[1],
             off_overhead, on * 1e6, on_overhead))
    return stats


def run_recorder_report() -> dict:
    """Flight-recorder sampling cost on the GUI workload."""
    pairs = [_gui_app("rec%d" % index) for index in range(3)]
    # recorder_off: the machinery exercised and released — the tick
    # hot path must be back to one dead pointer test
    pairs[1][1].obs.start_recorder()
    pairs[1][1].obs.stop_recorder()
    # recorder_on: worst case, a sample every virtual millisecond
    pairs[2][1].obs.start_recorder(cadence_ms=1)

    def build(pair):
        server, app = pair
        interp = app.interp
        state = [0]

        def thunk():
            state[0] ^= 1
            interp.eval(".b configure -text %s"
                        % ("ping" if state[0] else "pong"))
            app.update()
        return thunk

    try:
        bests, floors, medians = _measure_interleaved(
            [build(pair) for pair in pairs])
    finally:
        pairs[2][1].obs.stop_recorder()
    recorder = pairs[2][1].obs.recorder
    base, off, on = bests
    stats = {
        "no_recorder_us": round(base * 1e6, 3),
        "recorder_off_us": round(off * 1e6, 3),
        "recorder_on_us": round(on * 1e6, 3),
        "off_overhead_pct": round(floors[1], 2),
        "off_overhead_median_pct": round(medians[1], 2),
        "sampling_overhead_pct": round(medians[2], 2),
        "cadence_ms": recorder.cadence_ms,
        "samples": recorder.samples_taken,
        "series": len(recorder.series),
    }
    print("%-16s none %8.3f us   off %8.3f us (%+5.2f%% median, "
          "%+5.2f%% floor)   sampling %8.3f us (%+6.2f%%, %d samples "
          "over %d series)"
          % ("recorder", base * 1e6, off * 1e6, medians[1], floors[1],
             on * 1e6, medians[2], recorder.samples_taken,
             len(recorder.series)))
    return stats


def check(report: dict, journal: dict, recorder: dict) -> int:
    failures = [name for name, stats in report.items()
                if stats["overhead_pct"] >= GATE_PCT]
    if journal["off_overhead_pct"] >= GATE_PCT:
        failures.append("journal_off")
    if recorder["off_overhead_pct"] >= GATE_PCT:
        failures.append("recorder_off")
    if failures:
        print("FAIL: obs-enabled overhead >=%.1f%% in: %s"
              % (GATE_PCT, ", ".join(failures)))
        return 1
    print("OK: obs-enabled (tracer idle), journal-off, and "
          "recorder-off overhead <%.1f%% on all workloads" % GATE_PCT)
    return 0


def dump_trace(filename: str) -> None:
    """Trace a button click end to end; write the full obs dump."""
    server = XServer()
    app = TkApp(server, name="obsdump")
    app.interp.stdout = io.StringIO()
    app.interp.eval("proc doClick {} {.b flash}")
    app.interp.eval('button .b -text Report -command {doClick}')
    app.interp.eval("bind .b <ButtonRelease-1> {set released 1}")
    app.interp.eval("pack append . .b {top}")
    app.update()
    app.obs.tracer.start(wire=True)
    window = app.window(".b")
    root_x, root_y = window.root_position()
    server.warp_pointer(root_x + 2, root_y + 2)
    server.press_button(1)
    server.release_button(1)
    app.update()
    app.obs.tracer.stop()
    with open(filename, "w") as handle:
        handle.write(app.obs.dump_json() + "\n")
    print("wrote %s (%d spans)" % (filename, len(app.obs.tracer.spans)))


def main(argv) -> int:
    argv = list(argv)
    if "--dump-trace" in argv:
        position = argv.index("--dump-trace")
        if position + 1 >= len(argv):
            print("error: --dump-trace needs a filename")
            return 1
        dump_trace(argv[position + 1])
        del argv[position:position + 2]
        if not argv:
            return 0
    checking = "--check" in argv
    report = run_report()
    journal = run_journal_report()
    recorder = run_recorder_report()
    if checking:
        return check(report, journal, recorder)
    output = {"gate_pct": GATE_PCT, "workloads": report,
              "journal": journal, "recorder": recorder}
    if os.path.exists(INTERP_BENCH_FILE):
        with open(INTERP_BENCH_FILE) as handle:
            committed = json.load(handle)
        output["bench_interp_reference"] = {
            name: stats["mean_us"] for name, stats in committed.items()
            if name in report}
    with open(BENCH_FILE, "w") as handle:
        json.dump(output, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % BENCH_FILE)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
