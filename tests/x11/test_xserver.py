"""Tests for the simulated X server: windows, events, properties,
selections, resources, and input simulation."""

import pytest

from repro.x11 import Display, XConnectionLost, XProtocolError, XServer
from repro.x11 import events as ev


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def display(server):
    return Display(server)


def drain(display):
    out = []
    while display.pending():
        out.append(display.next_event())
    return out


class TestWindowTree:
    def test_root_window_exists(self, display):
        assert display.root > 0
        x, y, w, h, bw = display.get_geometry(display.root)
        assert (w, h) == (1152, 900)

    def test_create_window_parents_correctly(self, display):
        top = display.create_window(display.root, 10, 10, 100, 50)
        child = display.create_window(top, 5, 5, 20, 20)
        _, parent, children = display.query_tree(child)
        assert parent == top
        _, _, top_children = display.query_tree(top)
        assert children == []
        assert top_children == [child]

    def test_geometry_round_trip(self, display):
        win = display.create_window(display.root, 7, 8, 100, 50, 2)
        assert display.get_geometry(win) == (7, 8, 100, 50, 2)

    def test_configure_window(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.configure_window(win, x=3, y=4, width=30, height=40)
        assert display.get_geometry(win) == (3, 4, 30, 40, 0)

    def test_destroy_window_removes_subtree(self, display):
        top = display.create_window(display.root, 0, 0, 100, 100)
        child = display.create_window(top, 0, 0, 10, 10)
        display.destroy_window(top)
        with pytest.raises(XProtocolError):
            display.get_geometry(top)
        with pytest.raises(XProtocolError):
            display.get_geometry(child)

    def test_bad_window_raises(self, display):
        with pytest.raises(XProtocolError):
            display.get_geometry(999999)

    def test_map_state_and_viewability(self, server, display):
        top = display.create_window(display.root, 0, 0, 100, 100)
        child = display.create_window(top, 0, 0, 10, 10)
        display.map_window(child)
        assert not server.window(child).is_viewable()
        display.map_window(top)
        assert server.window(child).is_viewable()
        display.unmap_window(top)
        assert not server.window(child).is_viewable()


class TestEventDelivery:
    def test_structure_notify_on_configure(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.configure_window(win, width=50)
        types = [e.type for e in drain(display)]
        assert ev.CONFIGURE_NOTIFY in types

    def test_no_events_without_selection(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.configure_window(win, width=50)
        assert drain(display) == []

    def test_map_notify_and_expose(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK |
                             ev.EXPOSURE_MASK)
        display.map_window(win)
        types = [e.type for e in drain(display)]
        assert types.count(ev.MAP_NOTIFY) == 1
        assert ev.EXPOSE in types

    def test_destroy_notify(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.destroy_window(win)
        types = [e.type for e in drain(display)]
        assert ev.DESTROY_NOTIFY in types

    def test_substructure_notify_to_parent(self, display):
        top = display.create_window(display.root, 0, 0, 100, 100)
        display.select_input(top, ev.SUBSTRUCTURE_NOTIFY_MASK)
        child = display.create_window(top, 0, 0, 10, 10)
        display.map_window(child)
        events = drain(display)
        assert any(e.type == ev.MAP_NOTIFY and e.window == child
                   for e in events)

    def test_two_clients_independent_queues(self, server):
        display_a = Display(server)
        display_b = Display(server)
        win = display_a.create_window(display_a.root, 0, 0, 10, 10)
        display_a.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display_b.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display_a.map_window(win)
        assert any(e.type == ev.MAP_NOTIFY for e in drain(display_a))
        assert any(e.type == ev.MAP_NOTIFY for e in drain(display_b))

    def test_key_events_propagate_to_ancestors(self, server, display):
        top = display.create_window(display.root, 0, 0, 100, 100)
        child = display.create_window(top, 0, 0, 50, 50)
        display.map_window(top)
        display.map_window(child)
        display.select_input(top, ev.KEY_PRESS_MASK)
        drain(display)
        server.press_key("a", window_id=child)
        events = [e for e in drain(display) if e.type == ev.KEY_PRESS]
        assert len(events) == 1
        assert events[0].window == top
        assert events[0].keysym == "a"


class TestPointerSimulation:
    def test_enter_leave_on_warp(self, server, display):
        win = display.create_window(display.root, 10, 10, 100, 100)
        display.map_window(win)
        display.select_input(win, ev.ENTER_WINDOW_MASK |
                             ev.LEAVE_WINDOW_MASK)
        drain(display)
        server.warp_pointer(50, 50)
        assert any(e.type == ev.ENTER_NOTIFY for e in drain(display))
        server.warp_pointer(500, 500)
        assert any(e.type == ev.LEAVE_NOTIFY for e in drain(display))

    def test_button_press_coordinates_are_window_relative(
            self, server, display):
        win = display.create_window(display.root, 100, 200, 50, 50)
        display.map_window(win)
        display.select_input(win, ev.BUTTON_PRESS_MASK)
        server.warp_pointer(110, 220)
        drain(display)
        server.press_button(1)
        events = [e for e in drain(display) if e.type == ev.BUTTON_PRESS]
        assert len(events) == 1
        assert (events[0].x, events[0].y) == (10, 20)
        assert events[0].button == 1

    def test_motion_events(self, server, display):
        win = display.create_window(display.root, 0, 0, 100, 100)
        display.map_window(win)
        display.select_input(win, ev.POINTER_MOTION_MASK)
        drain(display)
        server.warp_pointer(5, 5)
        server.warp_pointer(6, 6)
        motions = [e for e in drain(display)
                   if e.type == ev.MOTION_NOTIFY]
        assert len(motions) == 2

    def test_nested_window_gets_pointer(self, server, display):
        top = display.create_window(display.root, 0, 0, 100, 100)
        inner = display.create_window(top, 20, 20, 40, 40)
        display.map_window(top)
        display.map_window(inner)
        display.select_input(inner, ev.BUTTON_PRESS_MASK)
        server.warp_pointer(30, 30)
        drain(display)
        server.press_button(1)
        events = [e for e in drain(display) if e.type == ev.BUTTON_PRESS]
        assert events and events[0].window == inner

    def test_key_goes_to_focus_window(self, server, display):
        win = display.create_window(display.root, 0, 0, 100, 100)
        display.map_window(win)
        display.select_input(win, ev.KEY_PRESS_MASK)
        display.set_input_focus(win)
        drain(display)
        server.press_key("q", state=ev.CONTROL_MASK)
        events = [e for e in drain(display) if e.type == ev.KEY_PRESS]
        assert events[0].keysym == "q"
        assert events[0].state == ev.CONTROL_MASK


class TestAtomsAndProperties:
    def test_intern_atom_is_stable(self, display):
        a1 = display.intern_atom("MY_ATOM")
        a2 = display.intern_atom("MY_ATOM")
        assert a1 == a2
        assert display.get_atom_name(a1) == "MY_ATOM"

    def test_only_if_exists(self, display):
        assert display.intern_atom("NEVER_MADE", only_if_exists=True) == 0

    def test_predefined_atoms(self, display):
        assert display.intern_atom("PRIMARY") > 0
        assert display.intern_atom("STRING") > 0

    def test_property_round_trip(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        prop = display.intern_atom("COMMENT")
        string = display.intern_atom("STRING")
        display.change_property(win, prop, string, "hello")
        assert display.get_property(win, prop) == (string, "hello")

    def test_get_with_delete(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        prop = display.intern_atom("COMMENT")
        string = display.intern_atom("STRING")
        display.change_property(win, prop, string, "x")
        display.get_property(win, prop, delete=True)
        assert display.get_property(win, prop) is None

    def test_append_mode(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        prop = display.intern_atom("COMMENT")
        string = display.intern_atom("STRING")
        display.change_property(win, prop, string, "ab")
        display.change_property(win, prop, string, "cd", append=True)
        assert display.get_property(win, prop)[1] == "abcd"

    def test_property_notify(self, display):
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.select_input(win, ev.PROPERTY_CHANGE_MASK)
        prop = display.intern_atom("COMMENT")
        string = display.intern_atom("STRING")
        display.change_property(win, prop, string, "x")
        events = [e for e in drain(display)
                  if e.type == ev.PROPERTY_NOTIFY]
        assert events and events[0].atom == prop

    def test_cross_client_properties(self, server):
        display_a = Display(server)
        display_b = Display(server)
        win = display_a.create_window(display_a.root, 0, 0, 10, 10)
        prop = display_a.intern_atom("SHARED")
        string = display_a.intern_atom("STRING")
        display_a.change_property(win, prop, string, "from-a")
        assert display_b.get_property(win, prop)[1] == "from-a"


class TestSelections:
    def test_owner_tracking(self, server):
        display = Display(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        primary = display.intern_atom("PRIMARY")
        display.set_selection_owner(primary, win)
        assert display.get_selection_owner(primary) == win

    def test_old_owner_gets_selection_clear(self, server):
        display_a = Display(server)
        display_b = Display(server)
        win_a = display_a.create_window(display_a.root, 0, 0, 10, 10)
        win_b = display_b.create_window(display_b.root, 0, 0, 10, 10)
        primary = display_a.intern_atom("PRIMARY")
        display_a.set_selection_owner(primary, win_a)
        display_b.set_selection_owner(primary, win_b)
        events = drain(display_a)
        assert any(e.type == ev.SELECTION_CLEAR for e in events)

    def test_convert_with_no_owner_notifies_failure(self, server):
        display = Display(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        primary = display.intern_atom("PRIMARY")
        string = display.intern_atom("STRING")
        prop = display.intern_atom("DEST")
        display.convert_selection(primary, string, prop, win)
        events = drain(display)
        assert any(e.type == ev.SELECTION_NOTIFY and e.property == 0
                   for e in events)

    def test_full_icccm_transfer(self, server):
        owner_display = Display(server)
        asker_display = Display(server)
        owner_win = owner_display.create_window(
            owner_display.root, 0, 0, 10, 10)
        asker_win = asker_display.create_window(
            asker_display.root, 0, 0, 10, 10)
        primary = owner_display.intern_atom("PRIMARY")
        string = owner_display.intern_atom("STRING")
        dest = asker_display.intern_atom("DEST")
        owner_display.set_selection_owner(primary, owner_win)
        # The requestor window is the transfer mailbox: its owner must
        # grant the selection owner's client write access.
        asker_display.set_property_access(asker_win, True)
        asker_display.convert_selection(primary, string, dest, asker_win)
        # Owner receives the SelectionRequest...
        request = [e for e in drain(owner_display)
                   if e.type == ev.SELECTION_REQUEST][0]
        assert request.requestor == asker_win
        # ...writes the data into the requested property...
        owner_display.change_property(request.requestor, request.property,
                                      string, "the selection value")
        # ...and sends SelectionNotify to the requestor.
        notify = ev.Event(ev.SELECTION_NOTIFY, selection=primary,
                          target=string, property=dest)
        owner_display.send_event(asker_win, notify)
        got = [e for e in drain(asker_display)
               if e.type == ev.SELECTION_NOTIFY][0]
        assert got.property == dest
        value = asker_display.get_property(asker_win, dest)[1]
        assert value == "the selection value"


class TestResources:
    def test_named_color(self, display):
        color = display.alloc_named_color("MediumSeaGreen")
        assert color.rgb == (60, 179, 113)

    def test_hex_color(self, display):
        color = display.alloc_named_color("#ff0080")
        assert color.rgb == (255, 0, 128)

    def test_short_hex_color(self, display):
        color = display.alloc_named_color("#f00")
        assert color.rgb == (255, 0, 0)

    def test_same_color_same_pixel(self, display):
        first = display.alloc_named_color("red")
        second = display.alloc_named_color("red")
        assert first.pixel == second.pixel

    def test_unknown_color_raises(self, display):
        with pytest.raises(XProtocolError):
            display.alloc_named_color("NotAColor")

    def test_font_metrics_deterministic(self, display):
        font_a = display.load_font("fixed")
        font_b = display.load_font("fixed")
        assert font_a.char_width == font_b.char_width == 6
        assert font_a.text_width("hello") == 30

    def test_cursor_names(self, display):
        cursor = display.create_cursor("coffee_mug")
        assert cursor.name == "coffee_mug"
        with pytest.raises(XProtocolError):
            display.create_cursor("no_such_cursor")

    def test_builtin_bitmap(self, display):
        bitmap = display.create_bitmap("gray50")
        assert (bitmap.width, bitmap.height) == (16, 16)

    def test_round_trips_counted(self, server, display):
        before = server.round_trips
        display.alloc_named_color("red")
        display.load_font("fixed")
        display.intern_atom("X")
        assert server.round_trips == before + 3

    def test_one_way_requests_do_not_count(self, server, display):
        before = server.round_trips
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.map_window(win)
        display.configure_window(win, width=20)
        assert server.round_trips == before


class TestSendEvent:
    def test_zero_mask_goes_to_creator(self, server):
        display_a = Display(server)
        display_b = Display(server)
        win_b = display_b.create_window(display_b.root, 0, 0, 10, 10)
        message = ev.Event(ev.CLIENT_MESSAGE, data=("hi",))
        display_a.send_event(win_b, message)
        events = drain(display_b)
        assert len(events) == 1
        assert events[0].send_event
        assert events[0].data == ("hi",)
        assert drain(display_a) == []


class TestDisconnect:
    def test_selections_dropped(self, server):
        display = Display(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        primary = display.intern_atom("PRIMARY")
        display.set_selection_owner(primary, win)
        display.close()
        assert server.get_selection_owner(primary) == 0

    def test_event_selections_dropped(self, server):
        display_a = Display(server)
        display_b = Display(server)
        win = display_a.create_window(display_a.root, 0, 0, 10, 10)
        display_b.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display_b.close()
        display_a.configure_window(win, width=50)
        display_a.flush()
        # No crash; the closed display surfaces its state instead of
        # silently reporting an empty queue.
        assert display_b.client.pending() == 0
        with pytest.raises(XConnectionLost):
            display_b.pending()

    def test_closed_client_receives_nothing(self, server):
        owner = Display(server)
        win = owner.create_window(owner.root, 0, 0, 10, 10)
        display = Display(server)
        display.select_input(win, ev.STRUCTURE_NOTIFY_MASK)
        display.close()
        server.configure_window(win, width=99)
        assert display.client.pending() == 0
        with pytest.raises(XConnectionLost):
            display.next_event()

    def test_close_destroys_client_windows(self, server):
        """A real server destroys a client's resources at close-down;
        that is how peers notice a crashed application."""
        display = Display(server)
        win = display.create_window(display.root, 0, 0, 10, 10)
        display.close()
        assert not server.window_exists(win)

    def test_closed_connection_rejects_requests(self, server):
        display = Display(server)
        display.close()
        with pytest.raises(XProtocolError, match="connection"):
            display.create_window(display.root, 0, 0, 10, 10)


class TestOwnership:
    """Regression tests for resource ownership (wire-protocol bugfix).

    Stateful requests carry the issuing client, and the server rejects
    them on windows another client created — one display can no longer
    destroy or scribble on a stranger's windows.  The root window (no
    creator) stays writable, and direct server calls (``client=None``)
    are trusted, so tests and input simulation keep working.
    """

    @pytest.fixture
    def other(self, server):
        return Display(server)

    @pytest.fixture
    def victim(self, server, display):
        win = display.create_window(display.root, 0, 0, 40, 40)
        display.map_window(win)
        return win

    def test_destroy_foreign_window_rejected(self, other, victim):
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.destroy_window(victim)

    def test_configure_foreign_window_rejected(self, other, victim):
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.configure_window(victim, width=99)

    def test_change_foreign_property_rejected(self, server, other, victim):
        atom = other.intern_atom("SECRET")
        string = other.intern_atom("STRING")
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.change_property(victim, atom, string, "overwrite")

    def test_delete_foreign_property_rejected(self, display, other, victim):
        atom = display.intern_atom("MINE")
        string = display.intern_atom("STRING")
        display.change_property(victim, atom, string, "value")
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.delete_property(victim, atom)

    def test_draw_on_foreign_window_rejected(self, other, victim):
        gc = other.create_gc(foreground=1)
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.clear_window(victim)
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.fill_rectangle(victim, gc, 0, 0, 5, 5)
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.draw_string(victim, gc, 1, 1, "graffiti")

    def test_owner_still_allowed(self, display, victim):
        display.configure_window(victim, width=60)
        display.clear_window(victim)
        display.destroy_window(victim)
        display.flush()
        assert not display.window_exists(victim)

    def test_root_window_writable_by_all(self, display, other):
        atom = other.intern_atom("CUT_BUFFER0")
        string = other.intern_atom("STRING")
        other.change_property(other.root, atom, string, "shared")
        other.flush()
        assert display.get_property(display.root, atom)[1] == "shared"

    def test_direct_server_access_trusted(self, server, victim):
        server.configure_window(victim, width=77)
        assert server.window(victim).width == 77

    def test_property_grant_opens_mailbox(self, display, other, victim):
        """set_property_access is the ICCCM mailbox escape hatch: the
        owner can open a window's properties to other clients."""
        atom = display.intern_atom("MAILBOX")
        string = display.intern_atom("STRING")
        display.set_property_access(victim, True)
        display.flush()
        other.change_property(victim, atom, string, "delivered")
        other.flush()
        assert display.get_property(victim, atom)[1] == "delivered"

    def test_property_grant_revocable(self, display, other, victim):
        atom = display.intern_atom("MAILBOX")
        string = display.intern_atom("STRING")
        display.set_property_access(victim, True)
        display.set_property_access(victim, False)
        display.flush()
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.change_property(victim, atom, string, "sneaky")

    def test_grant_on_foreign_window_rejected(self, other, victim):
        with pytest.raises(XProtocolError, match="BadAccess"):
            other.set_property_access(victim, True)


class TestStacking:
    def test_raise_reorders_children(self, server, display):
        first = display.create_window(display.root, 0, 0, 50, 50)
        second = display.create_window(display.root, 0, 0, 50, 50)
        display.map_window(first)
        display.map_window(second)
        assert server.root.window_at(10, 10).id == second
        display.raise_window(first)
        assert server.root.window_at(10, 10).id == first

    def test_lower_reorders_children(self, server, display):
        first = display.create_window(display.root, 0, 0, 50, 50)
        second = display.create_window(display.root, 0, 0, 50, 50)
        display.map_window(first)
        display.map_window(second)
        display.lower_window(second)
        assert server.root.window_at(10, 10).id == first

    def test_raise_generates_expose(self, server, display):
        win = display.create_window(display.root, 0, 0, 50, 50)
        other = display.create_window(display.root, 0, 0, 50, 50)
        display.map_window(win)
        display.map_window(other)
        display.select_input(win, ev.EXPOSURE_MASK)
        drain(display)
        display.raise_window(win)
        assert any(e.type == ev.EXPOSE for e in drain(display))

    def test_pointer_window_follows_restack(self, server, display):
        first = display.create_window(display.root, 0, 0, 50, 50)
        second = display.create_window(display.root, 0, 0, 50, 50)
        display.map_window(first)
        display.map_window(second)
        server.warp_pointer(10, 10)
        assert server.pointer_window.id == second
        display.raise_window(first)
        assert server.pointer_window.id == first
