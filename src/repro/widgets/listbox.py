"""Listbox widget.

Displays a list of strings, one per line.  The paper's browser (Figure
9) creates one with ``listbox .list -scroll ".scroll set" -relief
raised -geometry 20x20``:

* ``-geometry`` gives the size in characters x lines;
* ``-scroll`` is a command prefix invoked (with the four-number
  protocol) whenever the view or contents change, which is how the
  scrollbar is kept current;
* the ``view`` widget command adjusts which element appears at the top
  — this is the command the scrollbar invokes as ``.list view 40``.

The listbox supports the selection (paper section 3.6): clicking an
entry selects it (button 1), shift-clicking extends the selection, and
the widget claims PRIMARY with a handler returning the selected lines,
so ``selection get`` works from any application.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..tcl.errors import TclError
from ..tcl.strings import _to_int
from ..tk.widget import OptionSpec, Widget
from ..x11 import events as ev


class Listbox(Widget):
    widget_class = "Listbox"
    option_specs = (
        OptionSpec("background", "background", "Background", "white",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
                   synonyms=("bd",)),
        OptionSpec("font", "font", "Font", "fixed"),
        OptionSpec("foreground", "foreground", "Foreground", "black",
                   synonyms=("fg",)),
        OptionSpec("geometry", "geometry", "Geometry", "15x10"),
        OptionSpec("relief", "relief", "Relief", "sunken"),
        OptionSpec("scroll", "scrollCommand", "ScrollCommand", "",
                   synonyms=("yscroll",)),
        OptionSpec("selectbackground", "selectBackground", "Foreground",
                   "#444444"),
    )

    def __init__(self, app, path: str, argv):
        self.items: List[str] = []
        self.top = 0                      # first visible element
        self.selected: Set[int] = set()
        self._select_anchor = 0
        super().__init__(app, path, argv)
        self.window.add_event_handler(ev.BUTTON_PRESS_MASK,
                                      self._on_button)
        app.selection.set_handler(self.window, self._selection_value)

    # -- geometry ----------------------------------------------------------

    def _chars_lines(self) -> Tuple[int, int]:
        spec = self.options["geometry"]
        width_text, sep, height_text = spec.partition("x")
        if not sep:
            raise TclError('bad geometry "%s"' % spec)
        try:
            return (int(width_text), int(height_text))
        except ValueError:
            raise TclError('bad geometry "%s"' % spec)

    def visible_lines(self) -> int:
        return self._chars_lines()[1]

    def preferred_size(self) -> Tuple[int, int]:
        chars, lines = self._chars_lines()
        font = self.font()
        border = self.int_option("borderwidth")
        return (chars * font.char_width + 2 * border + 2,
                lines * font.line_height + 2 * border + 2)

    # -- widget commands ----------------------------------------------------

    def cmd_insert(self, args: List[str]) -> str:
        """insert index element ?element ...?"""
        if len(args) < 1:
            raise TclError(
                'wrong # args: should be "%s insert index ?element ...?"'
                % self.path)
        position = self._index(args[0], for_insert=True)
        for offset, element in enumerate(args[1:]):
            self.items.insert(position + offset, element)
        self._contents_changed()
        return ""

    def cmd_delete(self, args: List[str]) -> str:
        """delete firstIndex ?lastIndex?"""
        if len(args) not in (1, 2):
            raise TclError(
                'wrong # args: should be "%s delete first ?last?"'
                % self.path)
        if not self.items:
            return ""
        first = max(0, self._index(args[0], clamp=True))
        last = self._index(args[1], clamp=True) if len(args) == 2 \
            else first
        last = min(last, len(self.items) - 1)
        if last < first:
            return ""
        del self.items[first:last + 1]
        self.selected = {index for index in self.selected if index < first} \
            | {index - (last - first + 1) for index in self.selected
               if index > last}
        self._contents_changed()
        return ""

    def cmd_get(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s get index"'
                           % self.path)
        return self.items[self._index(args[0])]

    def cmd_size(self, args: List[str]) -> str:
        return str(len(self.items))

    def cmd_view(self, args: List[str]) -> str:
        """view index — make the element at index appear at the top.

        This is the command the scrollbar issues (".list view 40").
        """
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s view index"'
                           % self.path)
        self.scroll_to(_to_int(args[0]))
        return ""

    cmd_yview = cmd_view

    def cmd_curselection(self, args: List[str]) -> str:
        return " ".join(str(index) for index in sorted(self.selected))

    def cmd_select(self, args: List[str]) -> str:
        """select from index | select extend index | select clear"""
        if not args:
            raise TclError(
                'wrong # args: should be "%s select option ?index?"'
                % self.path)
        if args[0] == "clear":
            self.selected.clear()
        elif args[0] in ("from", "set"):
            index = self._index(args[1])
            self.selected = {index}
            self._select_anchor = index
            self._claim_selection()
        elif args[0] in ("extend", "to"):
            index = self._index(args[1])
            low, high = sorted((self._select_anchor, index))
            self.selected = set(range(low, high + 1))
            self._claim_selection()
        else:
            raise TclError(
                'bad select option "%s": must be clear, extend, from, '
                'set, or to' % args[0])
        self.schedule_redraw()
        return ""

    def cmd_nearest(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s nearest y"'
                           % self.path)
        return str(self._line_at(_to_int(args[0])))

    def _index(self, text: str, for_insert: bool = False,
               clamp: bool = False) -> int:
        """Resolve an element index ("end" or a number)."""
        if text == "end":
            return len(self.items) if for_insert \
                else max(0, len(self.items) - 1)
        index = _to_int(text)
        if for_insert:
            return max(0, min(index, len(self.items)))
        if clamp:
            return max(0, min(index, len(self.items) - 1))
        if not 0 <= index < len(self.items):
            raise TclError(
                'index "%s" out of range' % text)
        return index

    # -- view management -------------------------------------------------

    def scroll_to(self, index: int) -> None:
        limit = max(0, len(self.items) - 1)
        self.top = max(0, min(index, limit))
        self._notify_scroller()
        self.schedule_redraw()

    def _contents_changed(self) -> None:
        if self.top >= len(self.items):
            self.top = max(0, len(self.items) - 1)
        self._notify_scroller()
        self.schedule_redraw()

    def _notify_scroller(self) -> None:
        """Keep the attached scrollbar current (old-Tk protocol)."""
        command = self.options["scroll"]
        if not command:
            return
        lines = self.visible_lines()
        last = min(len(self.items) - 1, self.top + lines - 1)
        self.app.interp.eval_global(
            "%s %d %d %d %d" % (command, len(self.items), lines,
                                self.top, last))

    # -- selection ----------------------------------------------------------

    def _on_button(self, event) -> None:
        if event.type != ev.BUTTON_PRESS or event.button != 1:
            return
        index = self._line_at(event.y)
        if index >= len(self.items):
            return
        if event.state & ev.SHIFT_MASK:
            low, high = sorted((self._select_anchor, index))
            self.selected = set(range(low, high + 1))
        else:
            self.selected = {index}
            self._select_anchor = index
        self._claim_selection()
        self.schedule_redraw()

    def _line_at(self, y: int) -> int:
        font = self.font()
        border = self.int_option("borderwidth")
        return self.top + max(0, (y - border - 1)) // font.line_height

    def _claim_selection(self) -> None:
        self.app.selection.claim(self.window,
                                 on_lose=self._selection_lost)

    def _selection_lost(self) -> None:
        self.selected.clear()
        self.schedule_redraw()

    def _selection_value(self) -> str:
        return "\n".join(self.items[index]
                         for index in sorted(self.selected)
                         if index < len(self.items))

    # -- drawing ----------------------------------------------------------

    def draw(self) -> None:
        display = self.app.display
        font = self.font()
        border = self.int_option("borderwidth")
        foreground = self.color("foreground")
        gc = self.app.cache.gc(foreground=foreground, font=font.name)
        select_gc = self.app.cache.gc(
            foreground=self.color("selectbackground"))
        lines = self.visible_lines()
        for row in range(lines):
            index = self.top + row
            if index >= len(self.items):
                break
            y = border + 1 + row * font.line_height
            if index in self.selected:
                display.fill_rectangle(self.window.id, select_gc,
                                       border + 1, y,
                                       self.window.width - 2 * border - 2,
                                       font.line_height)
            display.draw_string(self.window.id, gc, border + 1, y,
                                self.items[index])
        self.draw_border()
