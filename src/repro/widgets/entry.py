"""Entry widget: a one-line text entry.

The paper (section 7) lists entries as one of the two widget types
still to be implemented; this is the implementation as planned.  The
entry cooperates with focus management (section 3.7): once an
application assigns it the focus, every keystroke in the application is
directed here.  Its contents can be fetched and modified from Tcl
(``get``, ``insert``, ``delete``), which is exactly what makes
user-defined bindings like "backspace over a whole word when Control-w
is typed" (section 5) possible without modifying the widget.
"""

from __future__ import annotations

from typing import List, Tuple

from ..tcl.errors import TclError
from ..tcl.strings import _to_int
from ..tk.widget import OptionSpec, Widget
from ..x11 import events as ev


class Entry(Widget):
    widget_class = "Entry"
    option_specs = (
        OptionSpec("background", "background", "Background", "white",
                   synonyms=("bg",)),
        OptionSpec("borderwidth", "borderWidth", "BorderWidth", "2",
                   synonyms=("bd",)),
        OptionSpec("font", "font", "Font", "fixed"),
        OptionSpec("foreground", "foreground", "Foreground", "black",
                   synonyms=("fg",)),
        OptionSpec("relief", "relief", "Relief", "sunken"),
        OptionSpec("selectbackground", "selectBackground", "Foreground",
                   "#444444"),
        OptionSpec("textvariable", "textVariable", "Variable", ""),
        OptionSpec("width", "width", "Width", "20"),
    )

    def __init__(self, app, path: str, argv):
        self.text = ""
        self.cursor = 0
        self.select_from = 0
        self.select_to = 0        # exclusive; == select_from means none
        self._syncing_variable = False
        super().__init__(app, path, argv)
        self.window.add_event_handler(
            ev.KEY_PRESS_MASK | ev.BUTTON_PRESS_MASK |
            ev.BUTTON_MOTION_MASK, self._on_event)
        app.selection.set_handler(self.window, self._selection_value)
        self._watch_textvariable()

    # -- -textvariable: two-way link through a variable trace ----------

    def _watch_textvariable(self) -> None:
        name = self.options["textvariable"]
        if not name:
            return
        from ..tcl.commands.tracecmd import _table
        interp = self.app.interp
        if interp.var_exists(name):
            self.text = interp.get_global_var(name)
            self.cursor = len(self.text)
        else:
            interp.set_global_var(name, self.text)
        self._text_trace = "tkEntryVarChanged-%s" % self.path
        interp.register(self._text_trace,
                        lambda ip, argv: self._variable_changed())
        _table(interp).add(name, "w", self._text_trace)

    def _variable_changed(self) -> None:
        if self._syncing_variable:
            return
        name = self.options["textvariable"]
        value = self.app.interp.get_global_var(name)
        if value != self.text:
            self.text = value
            self.cursor = min(self.cursor, len(self.text))
            self.schedule_redraw()

    def _sync_variable(self) -> None:
        name = self.options["textvariable"]
        if not name:
            return
        self._syncing_variable = True
        try:
            self.app.interp.set_global_var(name, self.text)
        finally:
            self._syncing_variable = False

    def cleanup(self) -> None:
        name = self.options.get("textvariable", "")
        if name and hasattr(self, "_text_trace"):
            from ..tcl.commands.tracecmd import _table
            _table(self.app.interp).remove(name, "w", self._text_trace)
            self.app.interp.commands.pop(self._text_trace, None)
        super().cleanup()

    # -- geometry ----------------------------------------------------------

    def preferred_size(self) -> Tuple[int, int]:
        font = self.font()
        border = self.int_option("borderwidth")
        return (self.int_option("width") * font.char_width + 2 * border + 2,
                font.line_height + 2 * border + 2)

    # -- widget commands ----------------------------------------------------

    def _index(self, text: str, for_insert: bool = False) -> int:
        if text == "end":
            return len(self.text)
        if text in ("insert", "cursor"):
            return self.cursor
        if text == "sel.first":
            return self.select_from
        if text == "sel.last":
            return self.select_to
        index = _to_int(text)
        return max(0, min(index, len(self.text)))

    def cmd_get(self, args: List[str]) -> str:
        return self.text

    def cmd_insert(self, args: List[str]) -> str:
        """insert index string"""
        if len(args) != 2:
            raise TclError(
                'wrong # args: should be "%s insert index string"'
                % self.path)
        position = self._index(args[0], for_insert=True)
        self.insert_text(position, args[1])
        return ""

    def cmd_delete(self, args: List[str]) -> str:
        """delete firstIndex ?lastIndex?  (last is inclusive, as in Tk)"""
        if len(args) not in (1, 2):
            raise TclError(
                'wrong # args: should be "%s delete first ?last?"'
                % self.path)
        first = self._index(args[0])
        last = self._index(args[1]) if len(args) == 2 else first
        self.delete_range(first, last + 1)
        return ""

    def cmd_icursor(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s icursor index"'
                           % self.path)
        self.cursor = self._index(args[0], for_insert=True)
        self.schedule_redraw()
        return ""

    def cmd_index(self, args: List[str]) -> str:
        if len(args) != 1:
            raise TclError('wrong # args: should be "%s index index"'
                           % self.path)
        return str(self._index(args[0]))

    # -- editing primitives (used by both Tcl and key bindings) ----------

    def insert_text(self, position: int, text: str) -> None:
        position = max(0, min(position, len(self.text)))
        self.text = self.text[:position] + text + self.text[position:]
        if self.cursor >= position:
            self.cursor += len(text)
        self._sync_variable()
        self.schedule_redraw()

    def delete_range(self, first: int, last: int) -> None:
        first = max(0, first)
        last = min(len(self.text), last)
        if last <= first:
            return
        self.text = self.text[:first] + self.text[last:]
        if self.cursor > last:
            self.cursor -= last - first
        elif self.cursor > first:
            self.cursor = first
        self.select_from = self.select_to = 0
        self._sync_variable()
        self.schedule_redraw()

    # -- behaviour -------------------------------------------------------

    def _on_event(self, event) -> None:
        if event.type == ev.KEY_PRESS:
            self._on_key(event)
        elif event.type == ev.BUTTON_PRESS and event.button == 1:
            self.cursor = self._position_for_x(event.x)
            self.select_from = self.select_to = self.cursor
            self.schedule_redraw()
        elif event.type == ev.MOTION_NOTIFY and \
                event.state & ev.BUTTON1_MASK:
            self.select_to = self._position_for_x(event.x)
            if self.select_to != self.select_from:
                self.app.selection.set_handler(self.window,
                                               self._selection_value)
                self.app.selection.claim(self.window,
                                         on_lose=self._selection_lost)
            self.schedule_redraw()

    def _on_key(self, event) -> None:
        keysym = event.keysym
        if keysym in ("BackSpace", "Delete"):
            if self.cursor > 0:
                self.delete_range(self.cursor - 1, self.cursor)
        elif keysym == "Left":
            self.cursor = max(0, self.cursor - 1)
            self.schedule_redraw()
        elif keysym == "Right":
            self.cursor = min(len(self.text), self.cursor + 1)
            self.schedule_redraw()
        elif keysym in ("Return", "Tab"):
            pass  # no default behaviour; available for user bindings
        elif event.keychar and event.keychar.isprintable() and \
                not event.state & ev.CONTROL_MASK:
            self.insert_text(self.cursor, event.keychar)

    def _position_for_x(self, x: int) -> int:
        font = self.font()
        border = self.int_option("borderwidth")
        return max(0, min(len(self.text),
                          (x - border - 1) // font.char_width))

    # -- selection ----------------------------------------------------------

    def _selection_value(self) -> str:
        low, high = sorted((self.select_from, self.select_to))
        return self.text[low:high]

    def _selection_lost(self) -> None:
        self.select_from = self.select_to = 0
        self.schedule_redraw()

    # -- drawing ----------------------------------------------------------

    def draw(self) -> None:
        display = self.app.display
        font = self.font()
        border = self.int_option("borderwidth")
        gc = self.app.cache.gc(foreground=self.color("foreground"),
                               font=font.name)
        low, high = sorted((self.select_from, self.select_to))
        if high > low:
            select_gc = self.app.cache.gc(
                foreground=self.color("selectbackground"))
            display.fill_rectangle(
                self.window.id, select_gc,
                border + 1 + low * font.char_width, border + 1,
                (high - low) * font.char_width, font.line_height)
        display.draw_string(self.window.id, gc, border + 1, border + 1,
                            self.text)
        # The insertion cursor.
        cursor_x = border + 1 + self.cursor * font.char_width
        display.draw_line(self.window.id, gc, cursor_x, border + 1,
                          cursor_x, border + 1 + font.line_height)
        self.draw_border()
