"""Section 6's hypertext/active-objects scenario.

"A hypertext system can be implemented by associating Tcl commands
with pieces of text or graphics in an editor; when a mouse button is
clicked over an item then the associated commands are executed.  A
hypertext 'link' can be produced by writing a Tcl command that opens a
new view ...  A hypermedia link can be produced using a Tcl command
that sends a 'play' command to an audio or video application."

The document viewer below stores a Tcl command per line; clicking a
line executes it.  One link opens another page (new view), one fetches
a value from a separate "database" application, and one sends a play
command to a separate "audio" application — all without the viewer
knowing anything about those applications.

Run:  python examples/hypertext.py
"""

import io

from repro.tk import TkApp
from repro.x11 import XServer

PAGES = {
    "index": [
        ("Welcome to the hypertext demo", ""),
        ("-> chapter one", 'showPage chapter1'),
        ("-> live data from the database", 'liveData'),
        ("-> play the fanfare", 'send audio play fanfare'),
    ],
    "chapter1": [
        ("Chapter one: composition", ""),
        ("<- back to the index", 'showPage index'),
    ],
}


def build_viewer(server):
    viewer = TkApp(server, name="viewer")
    viewer.interp.stdout = io.StringIO()
    interp = viewer.interp
    interp.eval("listbox .page -geometry 42x8")
    interp.eval("label .status -text hypertext")
    interp.eval("pack append . .status {top fillx} .page {top expand fill}")
    # The active-object machinery: a Tcl command string per line,
    # executed on click.  This is ALL the C-level support needed.
    interp.eval("set links(index) {}")

    def show_page(interp_, argv):
        name = argv[1]
        interp_.eval(".page delete 0 [expr [.page size]-1]")
        interp_.set_global_var("currentLinks", "")
        for text, command in PAGES[name]:
            interp_.eval('.page insert end "%s"'
                         % text.replace('"', r'\"'))
            interp_.eval('lappend currentLinks {%s}' % command)
        interp_.eval('.status configure -text "page: %s"' % name)
        return ""

    interp.register("showPage", show_page)
    interp.eval("""
        proc liveData {} {
            set value [send database lookup revenue]
            .status configure -text "revenue: $value"
        }
    """)
    # Click -> run the command stored with that line.
    interp.eval("bind .page <Button-1> {"
                "set cmd [index $currentLinks [.page nearest %y]]\n"
                "if {[string length $cmd] > 0} {eval $cmd}}")
    interp.eval("showPage index")
    viewer.update()
    return viewer


def build_database(server):
    database = TkApp(server, name="database")
    database.interp.stdout = io.StringIO()
    database.interp.eval("set table(revenue) {42 million}")
    database.interp.eval("proc lookup {key} {global table\n"
                         "return $table($key)}")
    database.interp.eval("wm geometry . 50x50+700+0")
    return database


def build_audio(server):
    audio = TkApp(server, name="audio")
    audio.interp.stdout = io.StringIO()
    audio.interp.eval("set played {}")
    audio.interp.eval("proc play {clip} {global played\n"
                      "lappend played $clip\n"
                      'return "playing $clip"}')
    audio.interp.eval("wm geometry . 50x50+700+100")
    return audio


def click_line(viewer, line):
    page = viewer.window(".page")
    font = viewer.cache.font("fixed")
    root_x, root_y = page.root_position()
    viewer.server.warp_pointer(root_x + 4,
                               root_y + line * font.line_height + 4)
    viewer.server.press_button(1)
    viewer.server.release_button(1)
    viewer.update()


def main():
    server = XServer()
    viewer = build_viewer(server)
    database = build_database(server)
    audio = build_audio(server)

    print("applications:", viewer.interp.eval("winfo interps"))
    print("page:", viewer.interp.eval(".status cget -text"))

    print()
    print("click the chapter link...")
    click_line(viewer, 1)
    print("  now showing:", viewer.interp.eval(".status cget -text"))
    print("  first line:", viewer.interp.eval(".page get 0"))

    print()
    print("click back to the index...")
    click_line(viewer, 1)
    print("  now showing:", viewer.interp.eval(".status cget -text"))

    print()
    print("click the live-data link (fetches from the database app)...")
    click_line(viewer, 2)
    print("  status:", viewer.interp.eval(".status cget -text"))

    print()
    print("click the hypermedia link (sends play to the audio app)...")
    click_line(viewer, 3)
    print("  audio app played:", audio.interp.eval("set played"))


if __name__ == "__main__":
    main()
