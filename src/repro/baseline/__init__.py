"""repro.baseline — an Xt/Motif-like toolkit without a command language.

This is the comparison system of the paper's sections 7-8: the same
widget functionality as :mod:`repro.widgets`, built the pre-compiled
way — static resource lists, typed callback lists, a translation-
manager little language, and a UIL-like static interface description
language.  It runs against the same simulated X server as Tk, so the
two toolkits can be compared head-to-head (Table I sizes, Table II
timings, and the composition ablation).
"""

from .intrinsics import (CompositeWidget, CoreWidget, Resource, Shell,
                         XtAppContext, XtError)
from .translations import TranslationError, TranslationTable
from .uil import UilError, UilObject, compile_uil, instantiate
from .widgets import (XmLabel, XmList, XmPanedWindow, XmPushButton,
                      XmScrollBar, XmToggleButton,
                      register_baseline_actions)

__all__ = [
    "XtAppContext", "CoreWidget", "CompositeWidget", "Shell", "Resource",
    "XtError", "TranslationTable", "TranslationError",
    "compile_uil", "instantiate", "UilObject", "UilError",
    "XmLabel", "XmPushButton", "XmToggleButton", "XmScrollBar", "XmList",
    "XmPanedWindow", "register_baseline_actions",
]
