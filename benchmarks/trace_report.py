"""Cross-transport distributed-tracing report and gate.

Replays the checked-in golden journal with tracing on, once over the
in-process loopback transport and once over a real socketpair, and
holds the tentpole promise of trace-context propagation to account:

* the replayed **wire journals are byte-identical** across transports
  (trace ids ride the frames without perturbing the journaled wire);
* the **span trees are structurally identical** — the same client
  issue → wire → server handle → reply causality, whether the frame
  crossed a function call or a socket;
* both traces actually contain **cross-boundary handle spans**
  (``link="wire"``), so the gate cannot pass vacuously.

The report side renders the per-transport critical-path breakdown
(client / queue / wire / handle / reply) quoted in EXPERIMENTS.md and
writes it to ``BENCH_trace.json``.

Usage::

    PYTHONPATH=src python benchmarks/trace_report.py           # regenerate
    PYTHONPATH=src python benchmarks/trace_report.py --check   # CI gate
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.obs import report as obs_report  # noqa: E402
from repro.obs.journal import Journal  # noqa: E402
from repro.obs.replay import _build_app, replay_journal  # noqa: E402

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN = os.path.join(ROOT, "examples", "golden.journal")
BENCH_FILE = os.path.join(ROOT, "BENCH_trace.json")

TRANSPORTS = ("loopback", "socket")


def _traced_replay(journal: Journal, kind: str) -> dict:
    """One traced default-mode replay over ``kind``; returns the wire
    JSONL, the structural span forest, and the critical path."""
    header = journal.meta or {}
    flags = dict(header.get("flags") or {})
    tracers = []

    def setup(server):
        app = _build_app(server, header.get("name") or "replay",
                         header.get("script") or "",
                         flags.get("cache_enabled", True),
                         flags.get("compile_enabled", True),
                         flags.get("buffering_enabled", True),
                         flags.get("bytecode_enabled", True),
                         transport=kind)
        # Trace from the first replayed input on; spans stay readable
        # after app.destroy() deregisters the tracer.
        app.obs.tracer.start(wire=True)
        tracers.append(app.obs.tracer)
        return app

    result = replay_journal(journal, mode="default", setup=setup,
                            transport=kind)
    tracer = tracers[0]
    roots = obs_report.build_forest(
        [span.to_dict() for span in tracer.spans])
    handles = sum(1 for span in tracer.spans if span.kind == "xhandle")
    wires = sum(1 for span in tracer.spans if span.kind == "wire")
    return {
        "transport": kind,
        "matched": result.matched,
        "replay_report": result.report(),
        "wire_jsonl": result.replay_log.to_jsonl(),
        "spans": len(tracer.spans),
        "wire_spans": wires,
        "handle_spans": handles,
        "structure": obs_report.structure(roots),
        "critical_path": obs_report.critical_path(roots),
    }


def run_report() -> dict:
    journal = Journal.load(GOLDEN)
    runs = {kind: _traced_replay(journal, kind) for kind in TRANSPORTS}
    report = {
        "journal": os.path.relpath(GOLDEN, ROOT),
        "transports": {
            kind: {key: run[key] for key in
                   ("matched", "spans", "wire_spans", "handle_spans",
                    "critical_path")}
            for kind, run in runs.items()
        },
        "wire_identical": (runs["loopback"]["wire_jsonl"]
                           == runs["socket"]["wire_jsonl"]),
        "trees_identical": (runs["loopback"]["structure"]
                            == runs["socket"]["structure"]),
    }
    for kind in TRANSPORTS:
        run = runs[kind]
        print("trace[%s]: %d spans (%d wire, %d handle), replay %s"
              % (kind, run["spans"], run["wire_spans"],
                 run["handle_spans"],
                 "MATCH" if run["matched"] else "DIVERGED"))
        print("  " + obs_report.format_critical_path(
            run["critical_path"]).replace("\n", "\n  "))
    report["_runs"] = runs
    return report


def check(report: dict) -> int:
    status = 0
    for kind in TRANSPORTS:
        stats = report["transports"][kind]
        if not stats["matched"]:
            print("FAIL: traced %s replay diverged from the recording"
                  % kind)
            print(report["_runs"][kind]["replay_report"])
            status = 1
        if not stats["handle_spans"]:
            print("FAIL: %s trace has no cross-boundary handle spans"
                  % kind)
            status = 1
    if not report["wire_identical"]:
        print("FAIL: replayed wire journals differ across transports")
        status = 1
    if not report["trees_identical"]:
        print("FAIL: span trees differ loopback vs socket")
        loop = report["_runs"]["loopback"]["structure"]
        sock = report["_runs"]["socket"]["structure"]
        for index, (left, right) in enumerate(zip(loop, sock)):
            if left != right:
                print("  first differing root #%d:" % index)
                print("    loopback: %s" % json.dumps(left,
                                                      sort_keys=True)[:400])
                print("    socket:   %s" % json.dumps(right,
                                                      sort_keys=True)[:400])
                break
        status = 1
    if status == 0:
        loop = report["transports"]["loopback"]
        print("OK: wire journals byte-identical and span trees "
              "structurally identical across transports "
              "(%d spans, %d server handle spans)"
              % (loop["spans"], loop["handle_spans"]))
    return status


def main(argv) -> int:
    checking = "--check" in argv
    report = run_report()
    status = check(report)
    report.pop("_runs")
    if checking:
        return status
    if status:
        return status
    with open(BENCH_FILE, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % BENCH_FILE)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
