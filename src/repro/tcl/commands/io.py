"""I/O commands: print, puts, and simple file channels.

``print`` is the old-Tcl output command used throughout the paper's
figures (``print "hi\\n"`` — note the explicit newline: print writes its
argument verbatim).  ``puts`` is the newer spelling that appends a
newline unless -nonewline is given.  Channels returned by ``open`` are
named ``file0``, ``file1``, ... and work with puts/gets/read/close/eof.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from ..errors import TclError


def _wrong_args(usage: str) -> TclError:
    return TclError('wrong # args: should be "%s"' % usage)


def _channels(interp) -> Dict[str, object]:
    channels = getattr(interp, "channels", None)
    if channels is None:
        channels = {}
        interp.channels = channels
        interp._next_channel = 0
    return channels


def _lookup_channel(interp, name: str):
    if name == "stdout" or name == "stderr":
        return None  # handled by interp.write
    channel = _channels(interp).get(name)
    if channel is None:
        raise TclError('can not find channel named "%s"' % name)
    return channel


def cmd_print(interp, argv: List[str]) -> str:
    """print string ?file? — write the string verbatim."""
    if len(argv) not in (2, 3):
        raise _wrong_args("print string ?file?")
    if len(argv) == 3 and argv[2] not in ("stdout", "stderr"):
        handle = _lookup_channel(interp, argv[2])
        handle.write(argv[1])
    else:
        interp.write(argv[1])
    return ""


def cmd_puts(interp, argv: List[str]) -> str:
    """puts ?-nonewline? ?channel? string"""
    args = argv[1:]
    newline = True
    if args and args[0] == "-nonewline":
        newline = False
        args = args[1:]
    if len(args) not in (1, 2):
        raise _wrong_args("puts ?-nonewline? ?channelId? string")
    if len(args) == 2:
        channel_name, text = args
    else:
        channel_name, text = "stdout", args[0]
    if newline:
        text += "\n"
    if channel_name in ("stdout", "stderr"):
        interp.write(text)
    else:
        _lookup_channel(interp, channel_name).write(text)
    return ""


def cmd_open(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise _wrong_args("open fileName ?access?")
    access = argv[2] if len(argv) == 3 else "r"
    mode_map = {"r": "r", "r+": "r+", "w": "w", "w+": "w+",
                "a": "a", "a+": "a+"}
    if access not in mode_map:
        raise TclError('illegal access mode "%s"' % access)
    try:
        handle = open(argv[1], mode_map[access])
    except OSError as error:
        raise TclError('couldn\'t open "%s": %s'
                       % (argv[1], error.strerror or error))
    channels = _channels(interp)
    name = "file%d" % interp._next_channel
    interp._next_channel += 1
    channels[name] = handle
    return name


def cmd_close(interp, argv: List[str]) -> str:
    if len(argv) != 2:
        raise _wrong_args("close fileId")
    handle = _lookup_channel(interp, argv[1])
    handle.close()
    del _channels(interp)[argv[1]]
    return ""


def cmd_gets(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise _wrong_args("gets fileId ?varName?")
    handle = _lookup_channel(interp, argv[1])
    line = handle.readline()
    stripped = line[:-1] if line.endswith("\n") else line
    if len(argv) == 3:
        interp.set_var(argv[2], stripped)
        return "-1" if line == "" else str(len(stripped))
    return stripped


def cmd_read(interp, argv: List[str]) -> str:
    if len(argv) not in (2, 3):
        raise _wrong_args("read fileId ?numBytes?")
    handle = _lookup_channel(interp, argv[1])
    if len(argv) == 3:
        from ..strings import _to_int
        return handle.read(_to_int(argv[2]))
    return handle.read()


def cmd_eof(interp, argv: List[str]) -> str:
    if len(argv) != 2:
        raise _wrong_args("eof fileId")
    handle = _lookup_channel(interp, argv[1])
    position = handle.tell()
    at_eof = handle.read(1) == ""
    handle.seek(position)
    return "1" if at_eof else "0"


def cmd_flush(interp, argv: List[str]) -> str:
    if len(argv) != 2:
        raise _wrong_args("flush fileId")
    if argv[1] in ("stdout", "stderr"):
        stream = getattr(interp, "stdout", None)
        if stream is not None and hasattr(stream, "flush"):
            stream.flush()
        return ""
    _lookup_channel(interp, argv[1]).flush()
    return ""


def register(interp) -> None:
    interp.register("print", cmd_print)
    interp.register("puts", cmd_puts)
    interp.register("open", cmd_open)
    interp.register("close", cmd_close)
    interp.register("gets", cmd_gets)
    interp.register("read", cmd_read)
    interp.register("eof", cmd_eof)
    interp.register("flush", cmd_flush)
