"""Stress/lifecycle tests: repeated create/destroy cycles must not
leak windows, commands, bindings, or server resources."""

import io

import pytest

from repro.tk import TkApp
from repro.x11 import XServer


@pytest.fixture
def app():
    application = TkApp(XServer(), name="stress")
    application.interp.stdout = io.StringIO()
    return application


class TestNoLeaks:
    def test_window_tables_shrink_after_destroy(self, app):
        baseline_paths = len(app._windows_by_path)
        baseline_ids = len(app._windows_by_id)
        for cycle in range(10):
            for index in range(20):
                app.interp.eval("button .b%d -text x -command {}"
                                % index)
                app.interp.eval("pack append . .b%d {top}" % index)
            app.update()
            for index in range(20):
                app.interp.eval("destroy .b%d" % index)
            app.update()
        assert len(app._windows_by_path) == baseline_paths
        assert len(app._windows_by_id) == baseline_ids

    def test_widget_commands_removed(self, app):
        baseline = len(app.interp.commands)
        for cycle in range(5):
            app.interp.eval("entry .e")
            app.interp.eval("destroy .e")
        assert len(app.interp.commands) == baseline

    def test_server_window_count_stable(self, app):
        server = app.display.server
        for _ in range(5):
            app.interp.eval("frame .f")
            app.interp.eval("frame .f.inner")
            app.interp.eval("destroy .f")
        baseline = len(server.resources)
        for _ in range(5):
            app.interp.eval("frame .f")
            app.interp.eval("frame .f.inner")
            app.interp.eval("destroy .f")
        assert len(server.resources) == baseline

    def test_bindings_dropped_with_window(self, app):
        for cycle in range(5):
            app.interp.eval("frame .f -geometry 20x20")
            app.interp.eval("bind .f a {set x 1}")
            app.interp.eval("destroy .f")
        assert app.bindings._bindings.get(".f") is None

    def test_many_apps_connect_and_leave(self):
        server = XServer()
        survivor = TkApp(server, name="survivor")
        survivor.interp.stdout = io.StringIO()
        for round_number in range(10):
            transient = TkApp(server, name="transient%d" % round_number)
            transient.interp.stdout = io.StringIO()
            transient.interp.eval("button .b -text x")
            survivor.interp.eval(
                "send transient%d set v %d" % (round_number,
                                               round_number))
            transient.destroy()
        assert survivor.interp.eval("winfo interps") == "survivor"

    def test_deep_widget_tree(self, app):
        path = ""
        for depth in range(20):
            path += ".f%d" % depth
            app.interp.eval("frame %s" % path)
        assert app.interp.eval("winfo exists %s" % path) == "1"
        app.interp.eval("destroy .f0")
        assert app.interp.eval("winfo exists %s" % path) == "0"

    def test_hundred_widget_application(self, app):
        """Well beyond the paper's 'many tens of widgets'."""
        app.interp.eval("wm geometry . 800x800")
        for index in range(100):
            kind = ("button", "label", "checkbutton",
                    "entry")[index % 4]
            app.interp.eval("%s .w%d %s" % (
                kind, index,
                "-text w%d" % index if kind != "entry" else ""))
            app.interp.eval("pack append . .w%d {top}" % index)
        app.update()
        assert len(app.interp.eval("winfo children .").split()) == 100
        app.interp.eval("destroy .")
        assert app.destroyed
