"""Integration test: the widget-tour wish script exercises every
widget type from pure Tcl."""

import io
import os

import pytest

from repro.wish import Wish

SCRIPT = os.path.join(os.path.dirname(__file__), "..", "..", "examples",
                      "tour.tcl")


@pytest.fixture
def tour():
    shell = Wish(name="tour", stdout=io.StringIO())
    shell.run_file(SCRIPT)
    return shell


class TestTour:
    def test_all_sections_created(self, tour):
        children = tour.interp.eval("winfo children .").split()
        for expected in (".buttons", ".listpane", ".entrypane",
                         ".volume", ".caption", ".filebtn",
                         ".filemenu", ".art", ".doc"):
            assert expected in children

    def test_button_command(self, tour):
        tour.interp.eval(".buttons.plain invoke")
        assert tour.interp.eval("set pressed") == "1"

    def test_checkbutton_variable(self, tour):
        tour.interp.eval(".buttons.check toggle")
        assert tour.interp.eval("set gadgets") == "1"

    def test_radiobutton_group(self, tour):
        tour.interp.eval(".buttons.r2 select")
        assert tour.interp.eval("set side") == "right"

    def test_scrollbar_drives_listbox(self, tour):
        tour.app.window(".listpane.sb").widget.issue(3)
        tour.app.update()
        assert tour.app.window(".listpane.list").widget.top == 3

    def test_entry_char_count_binding(self, tour):
        tour.interp.eval("focus .entrypane.input")
        for key in "abcd":
            tour.server.press_key(key, window_id=tour.app.main.id)
        tour.app.update()
        assert tour.interp.eval(
            ".entrypane.count cget -text") == "4 chars"

    def test_scale_updates_caption(self, tour):
        tour.app.window(".volume").widget._set_value(7, invoke=True)
        tour.app.update()
        assert tour.interp.eval(".caption cget -text") == "Volume is 7"

    def test_menu_entries(self, tour):
        tour.interp.eval(".filemenu invoke Open")
        assert tour.interp.eval("set did") == "open"
        tour.interp.eval(".filemenu invoke Autosave")
        assert tour.interp.eval("set autosave") == "1"

    def test_canvas_item_binding_moves_box(self, tour):
        before = tour.interp.eval(".art coords box")
        window = tour.app.window(".art")
        root_x, root_y = window.root_position()
        tour.server.warp_pointer(root_x + 20, root_y + 20)
        tour.server.press_button(1)
        tour.app.update()
        after = tour.interp.eval(".art coords box")
        assert before != after

    def test_text_tag_present(self, tour):
        assert tour.interp.eval(".doc tag ranges marked") == "2.0 2.4"

    def test_control_q_exits_from_anywhere(self, tour):
        tour.server.press_key("q", state=4,
                              window_id=tour.app.main.id)
        tour.app.update()
        assert tour.destroyed
