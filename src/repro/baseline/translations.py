"""The translation manager — one of Xt's "little languages".

Because the baseline toolkit has no general-purpose command language,
it needs a special-purpose notation to connect events to behaviour::

    <Btn1Down>:        Arm()
    <Btn1Up>:          Activate() Disarm()
    <EnterWindow>:     Highlight()
    <Key>space:        Activate(again)

Each line maps an event description to a sequence of *action
procedures* which must have been compiled into the application and
registered with XtAppAddActions.  Compare with Tk, where the right-hand
side would simply be a Tcl script and no separate language, parser, or
action registry is needed (paper sections 7-8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..x11 import events as ev

#: Event-description -> (event type, required state mask)
_EVENT_NAMES: Dict[str, Tuple[int, int]] = {
    "Btn1Down": (ev.BUTTON_PRESS, 0),
    "Btn2Down": (ev.BUTTON_PRESS, 0),
    "Btn3Down": (ev.BUTTON_PRESS, 0),
    "Btn1Up": (ev.BUTTON_RELEASE, 0),
    "Btn2Up": (ev.BUTTON_RELEASE, 0),
    "Btn3Up": (ev.BUTTON_RELEASE, 0),
    "Btn1Motion": (ev.MOTION_NOTIFY, ev.BUTTON1_MASK),
    "Motion": (ev.MOTION_NOTIFY, 0),
    "EnterWindow": (ev.ENTER_NOTIFY, 0),
    "LeaveWindow": (ev.LEAVE_NOTIFY, 0),
    "Key": (ev.KEY_PRESS, 0),
    "KeyUp": (ev.KEY_RELEASE, 0),
    "Expose": (ev.EXPOSE, 0),
    "FocusIn": (ev.FOCUS_IN, 0),
    "FocusOut": (ev.FOCUS_OUT, 0),
}

_BUTTON_OF = {"Btn1Down": 1, "Btn2Down": 2, "Btn3Down": 3,
              "Btn1Up": 1, "Btn2Up": 2, "Btn3Up": 3}

_MODIFIER_NAMES = {
    "Ctrl": ev.CONTROL_MASK,
    "Shift": ev.SHIFT_MASK,
    "Meta": ev.MOD1_MASK,
}

#: Masks a window must select, per event type.
_SELECT_MASKS = {
    ev.BUTTON_PRESS: ev.BUTTON_PRESS_MASK,
    ev.BUTTON_RELEASE: ev.BUTTON_RELEASE_MASK,
    ev.MOTION_NOTIFY: ev.POINTER_MOTION_MASK,
    ev.ENTER_NOTIFY: ev.ENTER_WINDOW_MASK,
    ev.LEAVE_NOTIFY: ev.LEAVE_WINDOW_MASK,
    ev.KEY_PRESS: ev.KEY_PRESS_MASK,
    ev.KEY_RELEASE: ev.KEY_RELEASE_MASK,
    ev.EXPOSE: ev.EXPOSURE_MASK,
    ev.FOCUS_IN: ev.FOCUS_CHANGE_MASK,
    ev.FOCUS_OUT: ev.FOCUS_CHANGE_MASK,
}


class TranslationError(Exception):
    """A syntax error in a translation table."""


class _Translation:
    """One line of a translation table."""

    def __init__(self, modifiers: int, event_type: int, button: int,
                 detail: str, actions: List[Tuple[str, List[str]]]):
        self.modifiers = modifiers
        self.event_type = event_type
        self.button = button
        self.detail = detail
        self.actions = actions

    def matches(self, event) -> bool:
        if event.type != self.event_type:
            return False
        if self.button and event.button != self.button:
            return False
        if self.detail and event.keysym != self.detail:
            return False
        if self.modifiers & ~event.state:
            return False
        return True

    @property
    def specificity(self) -> tuple:
        return (1 if self.detail else 0, 1 if self.button else 0,
                bin(self.modifiers).count("1"))


class TranslationTable:
    """A parsed translation table; widgets hold one each."""

    def __init__(self, text: str = ""):
        self.translations: List[_Translation] = []
        if text:
            self._parse(text)

    def _parse(self, text: str) -> None:
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("!") or line.startswith("#"):
                continue
            if ":" not in line:
                raise TranslationError(
                    'missing ":" in translation "%s"' % line)
            left, _, right = line.partition(":")
            self.translations.append(
                self._parse_line(left.strip(), right.strip()))

    def _parse_line(self, left: str, right: str) -> _Translation:
        modifiers = 0
        # Modifier prefixes: "Ctrl Shift <Key>x".
        while not left.startswith("<"):
            name, _, rest = left.partition(" ")
            if name not in _MODIFIER_NAMES or not rest:
                raise TranslationError(
                    'bad event specification "%s"' % left)
            modifiers |= _MODIFIER_NAMES[name]
            left = rest.strip()
        if not left.startswith("<") or ">" not in left:
            raise TranslationError('bad event specification "%s"' % left)
        event_name = left[1:left.index(">")]
        detail = left[left.index(">") + 1:].strip()
        if event_name not in _EVENT_NAMES:
            raise TranslationError('unknown event "%s"' % event_name)
        event_type, extra_state = _EVENT_NAMES[event_name]
        modifiers |= extra_state
        button = _BUTTON_OF.get(event_name, 0)
        return _Translation(modifiers, event_type, button, detail,
                            self._parse_actions(right))

    def _parse_actions(self, text: str) -> List[Tuple[str, List[str]]]:
        actions: List[Tuple[str, List[str]]] = []
        position = 0
        end = len(text)
        while position < end:
            while position < end and text[position] in " \t":
                position += 1
            if position >= end:
                break
            open_paren = text.find("(", position)
            close_paren = text.find(")", position)
            if open_paren < 0 or close_paren < open_paren:
                raise TranslationError(
                    'bad action sequence "%s"' % text)
            name = text[position:open_paren].strip()
            if not name:
                raise TranslationError(
                    'bad action sequence "%s"' % text)
            raw_args = text[open_paren + 1:close_paren].strip()
            arguments = [arg.strip() for arg in raw_args.split(",")] \
                if raw_args else []
            actions.append((name, arguments))
            position = close_paren + 1
        if not actions:
            raise TranslationError('no actions in "%s"' % text)
        return actions

    # -- table operations -------------------------------------------------

    def merge(self, other: "TranslationTable") -> None:
        """XtOverrideTranslations semantics: other's entries win."""
        self.translations = other.translations + self.translations

    def lookup(self, event) -> List[Tuple[str, List[str]]]:
        """Return the action sequence of the best matching translation."""
        best: Optional[_Translation] = None
        for translation in self.translations:
            if translation.matches(event):
                if best is None or \
                        translation.specificity > best.specificity:
                    best = translation
        return best.actions if best is not None else []

    def event_mask(self) -> int:
        mask = 0
        for translation in self.translations:
            mask |= _SELECT_MASKS.get(translation.event_type, 0)
        return mask
