"""Tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.obs import Tracer
from repro.obs import trace as trace_mod


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    tracer = Tracer(clock)
    tracer.start()
    yield tracer
    tracer.stop()


class TestSpans:
    def test_parent_child_links(self, tracer, clock):
        outer = tracer.begin("eval", "doClick")
        inner = tracer.begin("cmd", "set")
        tracer.finish(inner)
        tracer.finish(outer)
        spans = list(tracer.spans)
        assert [span.kind for span in spans] == ["cmd", "eval"]
        assert spans[0].parent_id == outer.id
        assert spans[1].parent_id is None

    def test_durations_use_virtual_clock(self, tracer, clock):
        span = tracer.begin("eval", "work")
        clock.now += 25
        tracer.finish(span)
        assert span.duration == 25

    def test_widget_inherited_from_parent(self, tracer):
        outer = tracer.begin("event", "ButtonPress", widget=".b")
        inner = tracer.begin("cmd", "set")
        tracer.finish(inner)
        tracer.finish(outer)
        assert inner.widget == ".b"

    def test_ring_buffer_bounds_spans(self, clock):
        tracer = Tracer(clock, max_spans=4)
        tracer.start()
        for index in range(10):
            tracer.finish(tracer.begin("cmd", "c%d" % index))
        assert len(tracer.spans) == 4
        assert [span.name for span in tracer.spans] == \
            ["c6", "c7", "c8", "c9"]
        tracer.stop()

    def test_finish_after_stop_drops_span(self, clock):
        tracer = Tracer(clock)
        tracer.start()
        span = tracer.begin("cmd", "obs")
        tracer.stop()
        tracer.finish(span)
        assert len(tracer.spans) == 0

    def test_exception_unwinds_stack(self, tracer):
        outer = tracer.begin("eval", "outer")
        tracer.begin("cmd", "inner")      # never finished (exception)
        tracer.finish(outer)
        assert tracer._stack == []


class TestAttribution:
    def test_request_attributed_to_open_span(self, tracer):
        span = tracer.begin("cmd", ".b")
        trace_mod.record_request("fill_rectangle")
        trace_mod.record_request("fill_rectangle")
        trace_mod.record_round_trip()
        tracer.finish(span)
        assert span.requests == {"fill_rectangle": 2}
        assert span.round_trips == 1

    def test_active_registry_add_remove(self, clock):
        tracer = Tracer(clock)
        assert tracer not in trace_mod._ACTIVE
        tracer.start()
        assert tracer in trace_mod._ACTIVE
        tracer.stop()
        assert tracer not in trace_mod._ACTIVE

    def test_wire_mode_records_every_request(self, clock):
        tracer = Tracer(clock)
        tracer.start(wire=True)
        trace_mod.record_request("create_window")   # no span open
        span = tracer.begin("cmd", ".b", widget=".b")
        trace_mod.record_request("draw_string")
        tracer.finish(span)
        tracer.stop()
        assert [(name, widget) for _, name, widget in tracer.wire_log] \
            == [("create_window", None), ("draw_string", ".b")]

    def test_no_wire_log_without_wire_mode(self, tracer):
        span = tracer.begin("cmd", ".b")
        trace_mod.record_request("draw_string")
        tracer.finish(span)
        assert len(tracer.wire_log) == 0


class TestOutput:
    def test_tree_nests_children(self, tracer):
        outer = tracer.begin("event", "ButtonPress", widget=".b")
        inner = tracer.begin("cmd", "set")
        tracer.finish(inner)
        tracer.finish(outer)
        roots = tracer.tree()
        assert len(roots) == 1
        assert roots[0]["name"] == "ButtonPress"
        assert roots[0]["children"][0]["name"] == "set"

    def test_format_tree_header_and_indent(self, tracer):
        outer = tracer.begin("eval", "doClick")
        inner = tracer.begin("cmd", ".b", widget=".b")
        trace_mod.record_request("draw_string")
        tracer.finish(inner)
        tracer.finish(outer)
        text = tracer.format_tree()
        lines = text.splitlines()
        assert lines[0].startswith("TRACE: 2 spans, 1 x11 requests")
        assert "  eval doClick" in text
        assert "    cmd .b [.b]" in text
        assert "draw_string=1" in text

    def test_to_dict_shape(self, tracer):
        span = tracer.begin("send", "peer")
        tracer.finish(span)
        data = tracer.to_dict()
        assert data["spans"][0]["kind"] == "send"
        assert data["wire"] == []

    def test_clear_resets(self, tracer):
        tracer.finish(tracer.begin("cmd", "set"))
        tracer.clear()
        assert len(tracer.spans) == 0
        first = tracer.begin("cmd", "set")
        assert first.id == 1
        tracer.finish(first)


class TestEvictionRerooting:
    def test_evicted_parent_rerooted_not_dropped(self, clock):
        # Simulate a wrapped ring: the parent span has fallen off the
        # bounded deque, its children survive.  tree() must re-root
        # them (marked), not silently drop them.
        from repro.obs.trace import Span
        tracer = Tracer(clock, max_spans=4)
        child = Span(7, "cmd", "survivor", None, parent_id=3, start=5)
        tracer.spans.append(child)
        (node,) = tracer.tree()
        assert node["name"] == "survivor"
        assert node["orphaned"] is True

    def test_stop_inside_handler_orphans_recorded_children(self, clock):
        # A realizable orphan: "obs trace stop" runs inside a traced
        # handler, so the parent's finish is dropped while its already
        # -recorded children stay in the ring.
        tracer = Tracer(clock)
        tracer.start()
        outer = tracer.begin("eval", "handler")
        tracer.finish(tracer.begin("cmd", "recorded"))
        tracer.stop()                 # abandons the open parent
        tracer.finish(outer)          # dropped: tracer not collecting
        (node,) = tracer.tree()
        assert node["name"] == "recorded"
        assert node["orphaned"] is True

    def test_true_roots_not_marked_orphaned(self, tracer):
        root = tracer.begin("eval", "root")
        tracer.finish(tracer.begin("cmd", "child"))
        tracer.finish(root)
        (node,) = tracer.tree()
        assert "orphaned" not in node
        assert "orphaned" not in node["children"][0]

    def test_roots_in_start_order(self, tracer, clock):
        # Nested spans finish child-first; the deque is finish-ordered
        # but the tree must present roots in start order.
        first = tracer.begin("eval", "first")
        clock.now += 1
        tracer.finish(tracer.begin("cmd", "inner"))
        tracer.finish(first)
        second = tracer.begin("eval", "second")
        tracer.finish(second)
        assert [node["name"] for node in tracer.tree()] == \
            ["first", "second"]

    def test_format_tree_flags_orphans(self, clock):
        tracer = Tracer(clock)
        tracer.start()
        outer = tracer.begin("eval", "handler")
        tracer.finish(tracer.begin("cmd", "recorded"))
        tracer.stop()
        tracer.finish(outer)
        text = tracer.format_tree()
        assert "(orphaned: parent span evicted)" in text


class TestEvictionMetrics:
    def test_span_ring_evictions_counted(self, clock):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        tracer = Tracer(clock, max_spans=4)
        tracer.bind_metrics(registry)
        tracer.start()
        for index in range(10):
            tracer.finish(tracer.begin("event", "e%d" % index))
        tracer.stop()
        assert tracer.evicted_spans == 6
        assert registry.value("obs.trace.evicted", ring="spans") == 6
        assert registry.value("obs.trace.evicted", ring="wire") == 0

    def test_wire_ring_evictions_counted(self, clock):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        tracer = Tracer(clock, max_wire=3)
        tracer.bind_metrics(registry)
        tracer.start(wire=True)
        for index in range(8):
            tracer.record_request("intern_atom")
        tracer.stop()
        assert registry.value("obs.trace.evicted", ring="wire") == 5

    def test_bind_seeds_from_prior_evictions(self, clock):
        from repro.obs import MetricsRegistry
        tracer = Tracer(clock, max_spans=2)
        tracer.start()
        for index in range(5):
            tracer.finish(tracer.begin("event", "e%d" % index))
        tracer.stop()
        registry = MetricsRegistry()
        tracer.bind_metrics(registry)
        assert registry.value("obs.trace.evicted", ring="spans") == 3

    def test_app_tracer_bound_to_app_registry(self):
        import io

        from repro.tk import TkApp
        from repro.x11 import XServer
        app = TkApp(XServer(), name="evict")
        app.interp.stdout = io.StringIO()
        assert app.obs.tracer._m_evicted_spans is not None
        assert app.obs.metrics.value("obs.trace.evicted",
                                     ring="spans") == 0
